"""The mapping lifecycle algebra: compose, invert, containment.

Discovered mappings stop being terminal artifacts here. Three operations
turn one-shot discovery into continuous mapping maintenance:

* :func:`compose` — collapse a schema-evolution chain S→T→U into a
  direct S→U mapping by unfolding the second mapping's premise through
  the Skolemized conclusions of the first (the classical inverse-rules
  construction; cf. Arenas/Pérez/Reutter/Riveros on mapping composition
  and evolution, PAPERS.md). Skolem functions use exactly the naming of
  :func:`repro.mappings.exchange.skolem_function`, so a composed
  mapping's provenance matches the labeled nulls exchange would create.
* :func:`invert` — a quasi-inverse in Fagin's sense where the tgds
  permit one, with a structured :class:`InversionReport` of what is
  lost (non-exported source attributes, null-joined positions) where
  they do not.
* :func:`implies` / :func:`contains` / :func:`equivalent` — logical
  containment between mappings (Calì–Torlone), decided by the chase:
  freeze the premise of the candidate to be derived into a canonical
  instance, chase it with the other mapping, and look for the frozen
  conclusion among the chased facts via the CQ homomorphism machinery
  of :mod:`repro.queries.homomorphism`. Because the tgds here are
  source-to-target (premises over source tables only), a single chase
  round is complete.

All entry points accept a :class:`~repro.mappings.expression.MappingSet`,
a bare :class:`~repro.mappings.expression.MappingCandidate`, or any
iterable of candidates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.correspondences import Correspondence
from repro.exceptions import QueryError
from repro.mappings.exchange import skolem_function
from repro.mappings.expression import (
    MappingCandidate,
    MappingSet,
    candidates_of,
)
from repro.mappings.tgd import SourceToTargetTGD
from repro.queries.conjunctive import (
    Atom,
    ConjunctiveQuery,
    Constant,
    SkolemTerm,
    Term,
    Variable,
    substitute_atom,
    substitute_term,
    unify_atoms_inplace,
)
from repro.queries.homomorphism import (
    _bucket_atoms,
    _find_homomorphism,
    _homomorphisms,
    _profile,
    minimize,
)

MappingLike = "MappingSet | MappingCandidate | list[MappingCandidate]"


# ---------------------------------------------------------------------------
# Containment and equivalence (chase-based implication)
# ---------------------------------------------------------------------------


def _frozen_constant(variable: Variable) -> Constant:
    """The canonical-instance constant standing for ``variable``."""
    return Constant(("⊥frozen", variable.name))


def _aligned_tgd(candidate: MappingCandidate, name: str) -> SourceToTargetTGD | None:
    try:
        return candidate.to_tgd(name)
    except QueryError:
        return None


def _symbolic_chase(
    tgds: list[SourceToTargetTGD], source_facts: tuple[Atom, ...]
) -> tuple[Atom, ...]:
    """One chase round of s-t tgds over ground source facts.

    Mirrors :func:`repro.mappings.exchange.exchange` symbolically: every
    homomorphism of a tgd's premise into the source facts fires the
    conclusion, with existential variables instantiated as
    :class:`SkolemTerm` applications of the shared
    :func:`~repro.mappings.exchange.skolem_function` symbols over the
    exported terms. Source and target facts are kept in separate sets so
    same-named tables on both sides of an evolution hop cannot feed a
    premise with chased facts — which also makes the single round
    complete.
    """
    produced: dict[Atom, None] = {}
    for tgd in tgds:
        exported_map = list(
            zip(tgd.source.head_terms, tgd.target.head_terms)
        )
        existentials = tgd.existential_variables()
        ordered = _profile(tgd.source).ordered
        for hom in _homomorphisms(ordered, source_facts, {}):
            binding: dict[Variable, Term] = {}
            export_values: list[Term] = []
            for source_term, target_term in exported_map:
                value = substitute_term(source_term, hom)
                export_values.append(value)
                if isinstance(target_term, Variable):
                    binding[target_term] = value
            for variable in existentials:
                binding[variable] = SkolemTerm(
                    skolem_function(tgd.name, variable),
                    tuple(export_values),
                )
            for atom in tgd.target.body:
                produced.setdefault(substitute_atom(atom, binding))
    return tuple(produced)


def implies(first: MappingLike, second: MappingLike) -> bool:
    """True when ``first`` logically entails ``second``.

    Every instance pair satisfying all of ``first``'s tgds then satisfies
    all of ``second``'s. Decided candidate-by-candidate with the chase:
    freeze the candidate's premise into a canonical source instance,
    chase it with ``first``, and search for a homomorphic image of the
    candidate's conclusion — with the shared (exported) variables pinned
    to their frozen constants — among the chased facts.
    """
    premise_tgds = [
        tgd
        for index, candidate in enumerate(candidates_of(first), 1)
        if (tgd := _aligned_tgd(candidate, f"L{index}")) is not None
    ]
    for candidate in candidates_of(second):
        goal = _aligned_tgd(candidate, "G")
        if goal is None:
            return False
        freeze = {
            variable: _frozen_constant(variable)
            for variable in goal.source.body_variables()
        }
        source_facts = tuple(
            substitute_atom(atom, freeze) for atom in goal.source.body
        )
        chased = _symbolic_chase(premise_tgds, source_facts)
        pinned: dict[Variable, Term] = {
            variable: freeze[variable]
            for variable in goal.target.body_variables()
            if variable in freeze
        }
        if (
            _find_homomorphism(
                tuple(goal.target.body), _bucket_atoms(chased), pinned
            )
            is None
        ):
            return False
    return True


def contains(first: MappingLike, second: MappingLike) -> bool:
    """``second`` is contained in ``first``: ``first`` entails it."""
    return implies(first, second)


def equivalent(first: MappingLike, second: MappingLike) -> bool:
    """Logical equivalence: entailment in both directions."""
    return implies(first, second) and implies(second, first)


def minimize_mapping_set(mapping: MappingLike) -> MappingSet:
    """Drop candidates entailed by the remaining ones.

    The logical minimization of a tgd set: a candidate is redundant when
    the others already imply it. Keeps the earliest (highest-ranked)
    witnesses; the surviving set is equivalent to the input.
    """
    source = MappingSet.of(mapping)
    kept = list(source.candidates)
    index = len(kept) - 1
    while index >= 0:
        rest = kept[:index] + kept[index + 1 :]
        if rest and implies(rest, kept[index]):
            kept = rest
        index -= 1
    return MappingSet(
        candidates=tuple(kept),
        fingerprint=source.fingerprint,
        scenario_id=source.scenario_id,
    )


# ---------------------------------------------------------------------------
# Composition (S→T ∘ T→U = S→U by CQ unfolding)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Instantiation:
    """One Skolemized, renamed-apart firing of a first-hop candidate."""

    candidate_index: int
    source_atoms: tuple[Atom, ...]
    conclusion_atoms: tuple[Atom, ...]


def _instantiate(
    candidate_index: int,
    tgd: SourceToTargetTGD,
    copy_index: int,
) -> _Instantiation:
    """Rename a first-hop tgd apart and Skolemize its existentials.

    The Skolem function symbol depends on the candidate and the original
    variable name only — *not* on the copy index — so two copies whose
    exports unify collapse onto the same Skolem term, exactly as two
    exchange firings agreeing on exports share labeled nulls.
    """
    suffix = f"·{copy_index}"
    renaming = {
        variable: Variable(variable.name + suffix)
        for variable in {
            *tgd.source.variables(),
            *tgd.target.variables(),
        }
    }
    source = tgd.source.substitute(renaming)
    target = tgd.target.substitute(renaming)
    skolems: dict[Variable, Term] = {
        renaming[variable]: SkolemTerm(
            skolem_function(tgd.name, variable), tuple(source.head_terms)
        )
        for variable in tgd.existential_variables()
    }
    return _Instantiation(
        candidate_index=candidate_index,
        source_atoms=tuple(source.body),
        conclusion_atoms=tuple(
            substitute_atom(atom, skolems) for atom in target.body
        ),
    )


def _undo(
    subst: dict[Variable, Term], trail: list[Variable], mark: int
) -> None:
    while len(trail) > mark:
        del subst[trail.pop()]


def _unfold(
    premise_atoms: tuple[Atom, ...],
    first_tgds: list[SourceToTargetTGD],
    max_solutions: int,
) -> list[tuple[list[_Instantiation], dict[Variable, Term]]]:
    """All ways of deriving the premise from Skolemized first-hop firings.

    Each premise atom is unified against a conclusion atom of a *fresh*
    renamed-apart instantiation; sharing between firings is not guessed
    but forced by Skolem unification (same function symbol ⇒ unified
    exports), after which duplicate firings fold away under
    :func:`~repro.queries.homomorphism.minimize`. The enumeration order
    is deterministic, so truncation at ``max_solutions`` is stable.
    """
    solutions: list[tuple[list[_Instantiation], dict[Variable, Term]]] = []
    subst: dict[Variable, Term] = {}
    trail: list[Variable] = []
    used: list[_Instantiation] = []

    def search(position: int, copy_counter: list[int]) -> None:
        if len(solutions) >= max_solutions:
            return
        if position == len(premise_atoms):
            solutions.append((list(used), dict(subst)))
            return
        atom = premise_atoms[position]
        for candidate_index, tgd in enumerate(first_tgds):
            copy_counter[0] += 1
            instantiation = _instantiate(
                candidate_index, tgd, copy_counter[0]
            )
            used.append(instantiation)
            for conclusion in instantiation.conclusion_atoms:
                mark = len(trail)
                if unify_atoms_inplace(atom, conclusion, subst, trail):
                    search(position + 1, copy_counter)
                _undo(subst, trail, mark)
                if len(solutions) >= max_solutions:
                    break
            used.pop()

    search(0, [0])
    return solutions


def _normalize_names(
    source_query: ConjunctiveQuery, target_query: ConjunctiveQuery
) -> tuple[ConjunctiveQuery, ConjunctiveQuery]:
    """Strip renaming suffixes (``x·3`` → ``x``) where unambiguous.

    The unfolding renames every instantiation apart; once a solution is
    extracted most of those suffixes are noise. Shared variables keep
    one consistent name across both queries; clashes fall back to
    numbered names deterministically.
    """
    variables: dict[Variable, None] = {}
    for query in (source_query, target_query):
        for variable in query.variables():
            variables.setdefault(variable)
    renaming: dict[Variable, Variable] = {}
    taken: set[str] = set()
    for variable in variables:
        base = variable.name.split("·", 1)[0]
        name = base
        counter = 1
        while name in taken:
            counter += 1
            name = f"{base}_{counter}"
        taken.add(name)
        renaming[variable] = Variable(name)
    return source_query.substitute(renaming), target_query.substitute(
        renaming
    )


def _replace_skolems(
    atoms: tuple[Atom, ...], replacements: dict[Term, Variable]
) -> tuple[Atom, ...]:
    rebuilt = []
    for atom in atoms:
        rebuilt.append(
            Atom(
                atom.predicate,
                [replacements.get(term, term) for term in atom.terms],
            )
        )
    return tuple(rebuilt)


def _compose_pair(
    first_candidates: tuple[MappingCandidate, ...],
    first_tgds: list[SourceToTargetTGD],
    second: MappingCandidate,
    second_index: int,
    max_solutions: int,
) -> list[MappingCandidate]:
    tgd = _aligned_tgd(second, f"R{second_index}")
    if tgd is None:
        return []
    renaming = {
        variable: Variable(variable.name + "·r")
        for variable in {*tgd.source.variables(), *tgd.target.variables()}
    }
    premise = tgd.source.substitute(renaming)
    conclusion = tgd.target.substitute(renaming)

    composed: list[MappingCandidate] = []
    for used, theta in _unfold(
        tuple(premise.body), first_tgds, max_solutions
    ):
        source_body = tuple(
            substitute_atom(atom, theta)
            for instantiation in used
            for atom in instantiation.source_atoms
        )
        target_body = tuple(
            substitute_atom(atom, theta) for atom in conclusion.body
        )
        exports = [
            substitute_term(term, theta) for term in premise.head_terms
        ]
        # Surviving Skolem terms are values no source attribute
        # determines: they become existentials of the composed tgd, and
        # any export position carrying one is dropped from the head.
        taken = {
            variable.name
            for atom in (*source_body, *target_body)
            for variable in atom.variables()
        }
        fresh: dict[Term, Variable] = {}
        counter = 0
        for atom in target_body:
            for term in atom.terms:
                if isinstance(term, SkolemTerm) and term not in fresh:
                    counter += 1
                    name = f"e{counter}"
                    while name in taken:
                        counter += 1
                        name = f"e{counter}"
                    taken.add(name)
                    fresh[term] = Variable(name)
        target_body = _replace_skolems(target_body, fresh)
        source_head = []
        target_head = []
        dropped = 0
        for term in exports:
            if isinstance(term, SkolemTerm):
                dropped += 1
                continue
            source_head.append(term)
            target_head.append(term)
        try:
            source_query = minimize(
                ConjunctiveQuery(source_head, source_body)
            )
            target_query = minimize(
                ConjunctiveQuery(target_head, target_body)
            )
            source_query, target_query = _normalize_names(
                source_query, target_query
            )
        except QueryError:
            continue
        used_indices = sorted(
            {instantiation.candidate_index for instantiation in used}
        )
        covered = _join_covered(
            [first_candidates[index] for index in used_indices], second
        )
        notes = (
            "composed "
            + "+".join(f"M{index + 1}" for index in used_indices)
            + f"∘R{second_index}"
        )
        if dropped:
            notes += f" ({dropped} export(s) lost to nulls)"
        composed.append(
            MappingCandidate(
                source_query=source_query,
                target_query=target_query,
                covered=covered,
                method="composed",
                notes=notes,
                source_optional_tables=frozenset().union(
                    *(
                        first_candidates[index].source_optional_tables
                        for index in used_indices
                    )
                ),
            )
        )
    return composed


def _join_covered(
    firsts: list[MappingCandidate], second: MappingCandidate
) -> tuple[Correspondence, ...]:
    """Relational join of covered correspondences on the middle schema."""
    joined: dict[Correspondence, None] = {}
    for first in firsts:
        for left in first.covered:
            for right in second.covered:
                if left.target == right.source:
                    joined.setdefault(
                        Correspondence(left.source, right.target)
                    )
    return tuple(sorted(joined))


def compose(
    first: MappingLike,
    second: MappingLike,
    *,
    max_solutions_per_candidate: int = 32,
    prune: bool = True,
) -> MappingSet:
    """Compose an S→T mapping with a T→U mapping into a direct S→U one.

    For every candidate of ``second``, its premise (a CQ over the middle
    schema T) is unfolded through the Skolemized conclusions of
    ``first``'s candidates; each complete unfolding yields one composed
    candidate whose premise is over S and conclusion over U. Exported
    values that only a labeled null would carry through T become
    existentials of the composed tgd (noted on the candidate), matching
    what :func:`~repro.mappings.exchange.exchange` run twice would
    preserve. With ``prune`` (default), the result is semantically
    deduplicated and logically minimized via :func:`minimize_mapping_set`.
    """
    first_candidates = candidates_of(first)
    second_candidates = candidates_of(second)
    first_tgds = [
        tgd
        for index, candidate in enumerate(first_candidates, 1)
        if (tgd := _aligned_tgd(candidate, f"M{index}")) is not None
    ]
    composed: list[MappingCandidate] = []
    for index, candidate in enumerate(second_candidates, 1):
        composed.extend(
            _compose_pair(
                first_candidates,
                first_tgds,
                candidate,
                index,
                max_solutions_per_candidate,
            )
        )
    result = MappingSet.of(composed)
    if prune:
        result = minimize_mapping_set(result.dedup())
    return result


# ---------------------------------------------------------------------------
# Inversion (quasi-inverse with a loss report)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class InversionReport:
    """What inverting one candidate preserves — and what it cannot.

    ``exact`` holds when the candidate is lossless: every source
    attribute is exported and the target side introduces no
    existentials, so inverse∘mapping is the identity on the exported
    columns. Otherwise ``lost_source_variables`` lists premise variables
    the target never sees (the inverse reconstructs them as labeled
    nulls) and ``null_joined_variables`` lists original target
    existentials, which the inverse's premise must join on even though
    exchange only ever fills them with nulls.
    """

    inverse: MappingCandidate | None
    exact: bool
    lost_source_variables: tuple[str, ...] = ()
    null_joined_variables: tuple[str, ...] = ()
    reason: str = ""

    def render(self) -> str:
        if self.inverse is None:
            return f"not invertible: {self.reason}"
        lines = ["exact inverse" if self.exact else "quasi-inverse"]
        if self.lost_source_variables:
            lines.append(
                "  lost source attributes (restored as nulls): "
                + ", ".join(self.lost_source_variables)
            )
        if self.null_joined_variables:
            lines.append(
                "  null-joined positions (were target existentials): "
                + ", ".join(self.null_joined_variables)
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class InversionResult:
    """The outcome of :func:`invert` over a whole mapping."""

    reports: tuple[InversionReport, ...]

    @property
    def mappings(self) -> MappingSet:
        """The invertible part, as a target→source :class:`MappingSet`."""
        return MappingSet.of(
            report.inverse
            for report in self.reports
            if report.inverse is not None
        )

    @property
    def exact(self) -> bool:
        """True when every candidate inverted losslessly."""
        return bool(self.reports) and all(
            report.exact and report.inverse is not None
            for report in self.reports
        )

    def __iter__(self):
        return iter(self.reports)

    def __len__(self) -> int:
        return len(self.reports)

    def render(self) -> str:
        return "\n".join(
            f"[{index}] {report.render()}"
            for index, report in enumerate(self.reports, 1)
        )


def invert(mapping: MappingLike) -> InversionResult:
    """A (quasi-)inverse of the mapping, with a structured loss report.

    Each candidate ⟨E₁, E₂, 𝓛⟩ flips to ⟨E₂, E₁, 𝓛⁻¹⟩: the target query
    becomes the premise, the source query the conclusion, and every
    covered correspondence reverses. Where the original tgd was lossy —
    non-exported premise variables, or target existentials — the report
    says exactly which attributes come back as nulls rather than
    silently pretending a Fagin-style exact inverse exists.
    """
    reports: list[InversionReport] = []
    for index, candidate in enumerate(candidates_of(mapping), 1):
        tgd = _aligned_tgd(candidate, f"M{index}")
        if tgd is None:
            reports.append(
                InversionReport(
                    inverse=None,
                    exact=False,
                    reason="source and target export different arities",
                )
            )
            continue
        if not tgd.source.head_terms:
            reports.append(
                InversionReport(
                    inverse=None,
                    exact=False,
                    reason="mapping exports nothing; no attribute flows "
                    "back from the target",
                )
            )
            continue
        lost = tuple(
            sorted(
                variable.name
                for variable in tgd.source.existential_variables()
            )
        )
        null_joined = tuple(
            sorted(
                variable.name for variable in tgd.existential_variables()
            )
        )
        inverse = MappingCandidate(
            source_query=candidate.target_query,
            target_query=candidate.source_query,
            covered=tuple(
                sorted(
                    Correspondence(corr.target, corr.source)
                    for corr in candidate.covered
                )
            ),
            method="inverted",
            notes=f"inverse of M{index}"
            + ("" if not (lost or null_joined) else " (quasi)"),
        )
        reports.append(
            InversionReport(
                inverse=inverse,
                exact=not lost and not null_joined,
                lost_source_variables=lost,
                null_joined_variables=null_joined,
            )
        )
    return InversionResult(reports=tuple(reports))
