"""Target-coverage analysis for mapping sets.

Before running an exchange, a DBA wants to know which target columns the
accepted mappings will actually populate and which will fill with
Skolem nulls or stay empty. :func:`target_coverage` answers that from
the tgds alone (no data needed).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.mappings.tgd import SourceToTargetTGD
from repro.queries.conjunctive import Variable
from repro.relational.schema import RelationalSchema


class ColumnStatus(enum.Enum):
    """How a target column fares under a mapping set."""

    #: Some tgd exports a source value into the column.
    EXPORTED = "exported"
    #: The column is only ever filled with invented (Skolem) values.
    SKOLEM_ONLY = "skolem-only"
    #: No tgd writes the table at all.
    UNTOUCHED = "untouched"


@dataclass(frozen=True)
class ColumnCoverage:
    """Coverage verdict for one target column."""

    table: str
    column: str
    status: ColumnStatus
    writers: tuple[str, ...]

    def __str__(self) -> str:
        writers = ", ".join(self.writers) if self.writers else "—"
        return f"{self.table}.{self.column}: {self.status.value} ({writers})"


def target_coverage(
    tgds: Sequence[SourceToTargetTGD],
    target_schema: RelationalSchema,
) -> tuple[ColumnCoverage, ...]:
    """Per-column coverage of ``target_schema`` under ``tgds``.

    A column counts as *exported* when at least one tgd places an
    exported (head) variable there; as *skolem-only* when tgds write the
    table but only ever put existential variables in that position.
    """
    exported_writers: dict[tuple[str, str], set[str]] = {}
    skolem_writers: dict[tuple[str, str], set[str]] = {}
    for tgd in tgds:
        exported_vars = {
            term for term in tgd.target.head_terms if isinstance(term, Variable)
        }
        for atom in tgd.target.body:
            if not atom.is_db_atom:
                continue
            table_name = atom.bare_predicate
            if not target_schema.has_table(table_name):
                continue
            table = target_schema.table(table_name)
            for column, term in zip(table.columns, atom.terms):
                key = (table_name, column)
                if isinstance(term, Variable) and term in exported_vars:
                    exported_writers.setdefault(key, set()).add(tgd.name)
                else:
                    skolem_writers.setdefault(key, set()).add(tgd.name)
    results = []
    for table in target_schema:
        for column in table.columns:
            key = (table.name, column)
            if key in exported_writers:
                status = ColumnStatus.EXPORTED
                writers = exported_writers[key]
            elif key in skolem_writers:
                status = ColumnStatus.SKOLEM_ONLY
                writers = skolem_writers[key]
            else:
                status = ColumnStatus.UNTOUCHED
                writers = set()
            results.append(
                ColumnCoverage(
                    table.name, column, status, tuple(sorted(writers))
                )
            )
    return tuple(results)


def coverage_summary(
    coverage: Iterable[ColumnCoverage],
) -> dict[ColumnStatus, int]:
    """Counts per status, for quick reporting."""
    summary = {status: 0 for status in ColumnStatus}
    for entry in coverage:
        summary[entry.status] += 1
    return summary
