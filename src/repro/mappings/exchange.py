"""Data exchange: executing GLAV mappings on source instances.

Given a set of s-t tgds and a source instance, :func:`exchange` computes a
*canonical universal solution* the standard way: evaluate each tgd's
source query, and for every satisfying binding insert the target body's
atoms, instantiating target-existential variables with labeled nulls built
from Skolem terms over the exported values (Section 1's observation that
"Skolem functions are generally used to represent existentially
quantified variables").
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.exceptions import QueryError
from repro.mappings.tgd import SourceToTargetTGD
from repro.queries.conjunctive import (
    Atom,
    Constant,
    Term,
    Variable,
)
from repro.queries.datalog import evaluate_bindings
from repro.relational.instance import Instance, LabeledNull
from repro.relational.schema import RelationalSchema


def _skolem_null(
    tgd_name: str, variable: Variable, exported: tuple[Hashable, ...]
) -> LabeledNull:
    values = ",".join(repr(value) for value in exported)
    return LabeledNull(f"{tgd_name}:{variable.name}({values})")


def exchange(
    tgds: Sequence[SourceToTargetTGD],
    source_instance: Instance,
    target_schema: RelationalSchema,
) -> Instance:
    """Chase the source instance with the tgds into a target instance.

    Labeled nulls are deterministic functions of (tgd, variable, exported
    values), so repeated runs produce identical instances and two tgd
    firings agreeing on exports share nulls.
    """
    target = Instance(target_schema)
    for tgd in tgds:
        _fire(tgd, source_instance, target)
    return target


def _fire(
    tgd: SourceToTargetTGD, source_instance: Instance, target: Instance
) -> None:
    aligned = tgd  # queries already share exported variables by contract
    for binding in evaluate_bindings(aligned.source, source_instance):
        exported: dict[Variable, Hashable] = {}
        export_values = []
        for source_term, target_term in zip(
            aligned.source.head_terms, aligned.target.head_terms
        ):
            value = _term_value(source_term, binding, {})
            export_values.append(value)
            if isinstance(target_term, Variable):
                exported[target_term] = value
        null_cache: dict[Variable, LabeledNull] = {}
        for atom in aligned.target.body:
            if not atom.is_db_atom:
                raise QueryError(
                    f"target body must use T: atoms, got {atom.predicate!r}"
                )
            row = []
            for term in atom.terms:
                if isinstance(term, Variable) and term not in exported:
                    if term not in null_cache:
                        null_cache[term] = _skolem_null(
                            aligned.name, term, tuple(export_values)
                        )
                    row.append(null_cache[term])
                else:
                    row.append(_term_value(term, binding, exported))
            target.add(atom.bare_predicate, row)


def _term_value(
    term: Term,
    binding: dict[Variable, Hashable],
    exported: dict[Variable, Hashable],
) -> Hashable:
    if isinstance(term, Variable):
        if term in exported:
            return exported[term]
        if term in binding:
            return binding[term]
        raise QueryError(f"unbound variable {term} during exchange")
    if isinstance(term, Constant):
        return term.value
    raise QueryError(f"cannot exchange Skolem term {term}")


def certain_rows(instance: Instance, table_name: str) -> tuple[tuple, ...]:
    """Rows of a table containing no labeled nulls (certain answers)."""
    return tuple(
        row
        for row in instance.rows(table_name)
        if not any(isinstance(value, LabeledNull) for value in row)
    )
