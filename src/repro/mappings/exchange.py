"""Data exchange: executing GLAV mappings on source instances.

Given a set of s-t tgds and a source instance, :func:`exchange` computes a
*canonical universal solution* the standard way: evaluate each tgd's
source query, and for every satisfying binding insert the target body's
atoms, instantiating target-existential variables with labeled nulls built
from Skolem terms over the exported values (Section 1's observation that
"Skolem functions are generally used to represent existentially
quantified variables").
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.exceptions import QueryError
from repro.mappings.tgd import SourceToTargetTGD
from repro.queries.conjunctive import (
    Atom,
    Constant,
    Term,
    Variable,
)
from repro.queries.datalog import evaluate_bindings
from repro.relational.instance import Instance, LabeledNull
from repro.relational.schema import RelationalSchema


def skolem_function(tgd_name: str, variable: Variable) -> str:
    """The Skolem-function symbol for one tgd existential.

    One naming convention shared by the whole lifecycle: data exchange
    builds labeled nulls as applications of this symbol to the exported
    values, and :mod:`repro.mappings.algebra` builds symbolic
    :class:`~repro.queries.conjunctive.SkolemTerm` applications of the
    *same* symbol when unfolding or chasing mappings — so a composed
    mapping's provenance reads like the exchange nulls it stands for.
    """
    return f"{tgd_name}:{variable.name}"


def _skolem_null(
    tgd_name: str, variable: Variable, exported: tuple[Hashable, ...]
) -> LabeledNull:
    values = ",".join(repr(value) for value in exported)
    return LabeledNull(f"{skolem_function(tgd_name, variable)}({values})")


def exchange(
    tgds: Sequence[SourceToTargetTGD],
    source_instance: Instance,
    target_schema: RelationalSchema,
) -> Instance:
    """Chase the source instance with the tgds into a target instance.

    Labeled nulls are deterministic functions of (tgd, variable, exported
    values), so repeated runs produce identical instances and two tgd
    firings agreeing on exports share nulls.
    """
    target = Instance(target_schema)
    for tgd in tgds:
        _fire(tgd, source_instance, target)
    return target


def _fire(
    tgd: SourceToTargetTGD, source_instance: Instance, target: Instance
) -> None:
    aligned = tgd  # queries already share exported variables by contract
    for binding in evaluate_bindings(aligned.source, source_instance):
        exported: dict[Variable, Hashable] = {}
        export_values = []
        for source_term, target_term in zip(
            aligned.source.head_terms, aligned.target.head_terms
        ):
            value = _term_value(source_term, binding, {})
            export_values.append(value)
            if isinstance(target_term, Variable):
                exported[target_term] = value
        null_cache: dict[Variable, LabeledNull] = {}
        for atom in aligned.target.body:
            if not atom.is_db_atom:
                raise QueryError(
                    f"target body must use T: atoms, got {atom.predicate!r}"
                )
            row = []
            for term in atom.terms:
                if isinstance(term, Variable) and term not in exported:
                    if term not in null_cache:
                        null_cache[term] = _skolem_null(
                            aligned.name, term, tuple(export_values)
                        )
                    row.append(null_cache[term])
                else:
                    row.append(_term_value(term, binding, exported))
            target.add(atom.bare_predicate, row)


def _term_value(
    term: Term,
    binding: dict[Variable, Hashable],
    exported: dict[Variable, Hashable],
) -> Hashable:
    if isinstance(term, Variable):
        if term in exported:
            return exported[term]
        if term in binding:
            return binding[term]
        raise QueryError(f"unbound variable {term} during exchange")
    if isinstance(term, Constant):
        return term.value
    raise QueryError(f"cannot exchange Skolem term {term}")


def certain_rows(instance: Instance, table_name: str) -> tuple[tuple, ...]:
    """Rows of a table containing no labeled nulls (certain answers)."""
    return tuple(
        row
        for row in instance.rows(table_name)
        if not any(isinstance(value, LabeledNull) for value in row)
    )


def isomorphic_instances(first: Instance, second: Instance) -> bool:
    """True when the instances agree up to a renaming of labeled nulls.

    Constants must match exactly; labeled nulls may differ in label as
    long as some bijection between the two null sets maps the first
    instance's rows onto the second's, table by table.  This is the
    equivalence that matters for canonical universal solutions: two
    exchange runs are "the same solution" iff they are null-isomorphic.
    """
    tables_first = sorted(first.schema.tables)
    tables_second = sorted(second.schema.tables)
    if tables_first != tables_second:
        return False
    todo: list[tuple[tuple, int, tuple[tuple, ...]]] = []
    for table_index, name in enumerate(tables_first):
        rows_a = tuple(first.rows(name))
        rows_b = tuple(second.rows(name))
        if len(rows_a) != len(rows_b):
            return False
        todo.extend((row, table_index, rows_b) for row in rows_a)
    return _match_rows(todo, 0, {}, {}, set())


def _match_rows(
    todo: Sequence[tuple[tuple, int, tuple[tuple, ...]]],
    position: int,
    forward: dict[LabeledNull, LabeledNull],
    backward: dict[LabeledNull, LabeledNull],
    used: set[tuple[int, int]],
) -> bool:
    """Backtracking search for a null bijection matching rows onto rows."""
    if position == len(todo):
        return True
    row, table_index, rows_b = todo[position]
    for candidate_index, candidate in enumerate(rows_b):
        if (table_index, candidate_index) in used:
            continue
        trail: list[LabeledNull] = []
        if _rows_unify(row, candidate, forward, backward, trail):
            used.add((table_index, candidate_index))
            if _match_rows(todo, position + 1, forward, backward, used):
                return True
            used.discard((table_index, candidate_index))
        for null in trail:
            backward.pop(forward.pop(null), None)
    return False


def _rows_unify(row_a, row_b, forward, backward, trail) -> bool:
    if len(row_a) != len(row_b):
        return False
    for value_a, value_b in zip(row_a, row_b):
        null_a = isinstance(value_a, LabeledNull)
        null_b = isinstance(value_b, LabeledNull)
        if null_a != null_b:
            return False
        if not null_a:
            if value_a != value_b:
                return False
            continue
        if value_a in forward:
            if forward[value_a] != value_b:
                return False
            continue
        if value_b in backward:
            return False
        forward[value_a] = value_b
        backward[value_b] = value_a
        trail.append(value_a)
    return True
