"""JSON (de)serialization of mapping sets in the ``repro-mappings/1`` format.

Discovered mappings are artifacts users keep: this module round-trips a
:class:`~repro.mappings.expression.MappingSet` through a stable,
human-diffable JSON shape, so mapping sets can be versioned next to the
schemas they map. The set's provenance (scenario fingerprint and id) is
carried as optional top-level keys — documents written before the
:class:`MappingSet` API, and sets without provenance, serialize
byte-identically to the original candidate-list format.

Only table-level candidates serialize (variables and constants in the
queries); Skolem terms never appear in finished candidates.

``dump_candidates``/``load_candidates`` remain as deprecated shims over
the set-level entry points.
"""

from __future__ import annotations

import json
import warnings
from typing import Any, Sequence

from repro.correspondences import Correspondence
from repro.exceptions import QueryError
from repro.mappings.expression import MappingCandidate, MappingSet
from repro.queries.conjunctive import (
    Atom,
    ConjunctiveQuery,
    Constant,
    Term,
    Variable,
)

#: Format marker written into every document.
FORMAT = "repro-mappings/1"


def _term_to_json(term: Term) -> Any:
    if isinstance(term, Variable):
        return {"var": term.name}
    if isinstance(term, Constant):
        return {"const": term.value}
    raise QueryError(f"cannot serialize term {term}")


def _term_from_json(data: Any) -> Term:
    if "var" in data:
        return Variable(data["var"])
    if "const" in data:
        return Constant(data["const"])
    raise QueryError(f"cannot deserialize term {data!r}")


def _query_to_json(query: ConjunctiveQuery) -> dict:
    return {
        "name": query.name,
        "head": [_term_to_json(t) for t in query.head_terms],
        "body": [
            {
                "predicate": atom.predicate,
                "terms": [_term_to_json(t) for t in atom.terms],
            }
            for atom in query.body
        ],
    }


def _query_from_json(data: dict) -> ConjunctiveQuery:
    return ConjunctiveQuery(
        [_term_from_json(t) for t in data["head"]],
        [
            Atom(
                atom["predicate"],
                [_term_from_json(t) for t in atom["terms"]],
            )
            for atom in data["body"]
        ],
        data.get("name", "ans"),
    )


def candidate_to_dict(candidate: MappingCandidate) -> dict:
    """One candidate as a JSON-ready dictionary."""
    return {
        "source": _query_to_json(candidate.source_query),
        "target": _query_to_json(candidate.target_query),
        "covered": [str(c) for c in candidate.covered],
        "method": candidate.method,
        "notes": candidate.notes,
        "source_optional_tables": sorted(candidate.source_optional_tables),
    }


def candidate_from_dict(data: dict) -> MappingCandidate:
    return MappingCandidate(
        source_query=_query_from_json(data["source"]),
        target_query=_query_from_json(data["target"]),
        covered=tuple(
            Correspondence.parse(text) for text in data["covered"]
        ),
        method=data.get("method", "semantic"),
        notes=data.get("notes", ""),
        source_optional_tables=frozenset(
            data.get("source_optional_tables", ())
        ),
    )


def mapping_set_to_dict(mapping: MappingSet) -> dict:
    """A :class:`MappingSet` as a JSON-ready ``repro-mappings/1`` document.

    Provenance keys are omitted when unset, so a bare set of candidates
    produces exactly the pre-``MappingSet`` document shape (and bytes).
    """
    document: dict = {
        "format": FORMAT,
        "candidates": [candidate_to_dict(c) for c in mapping.candidates],
    }
    if mapping.fingerprint is not None:
        document["fingerprint"] = mapping.fingerprint
    if mapping.scenario_id is not None:
        document["scenario_id"] = mapping.scenario_id
    return document


def mapping_set_from_dict(document: dict) -> MappingSet:
    """Parse a ``repro-mappings/1`` document dictionary."""
    if document.get("format") != FORMAT:
        raise QueryError(
            f"unsupported mapping document format: {document.get('format')!r}"
        )
    return MappingSet(
        candidates=tuple(
            candidate_from_dict(entry) for entry in document["candidates"]
        ),
        fingerprint=document.get("fingerprint"),
        scenario_id=document.get("scenario_id"),
    )


def dump_mapping_set(
    mapping: MappingSet | Sequence[MappingCandidate],
    indent: int | None = 2,
) -> str:
    """Serialize a mapping set to JSON text."""
    return json.dumps(
        mapping_set_to_dict(MappingSet.of(mapping)),
        indent=indent,
        sort_keys=True,
    )


def load_mapping_set(text: str) -> MappingSet:
    """Parse JSON text produced by :func:`dump_mapping_set`."""
    return mapping_set_from_dict(json.loads(text))


def dump_candidates(
    candidates: Sequence[MappingCandidate], indent: int = 2
) -> str:
    """Deprecated: use :func:`dump_mapping_set` (same document shape)."""
    warnings.warn(
        "dump_candidates is deprecated; use dump_mapping_set (or "
        "MappingSet.dumps) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return dump_mapping_set(MappingSet.of(candidates), indent=indent)


def load_candidates(text: str) -> list[MappingCandidate]:
    """Deprecated: use :func:`load_mapping_set` (returns a MappingSet)."""
    warnings.warn(
        "load_candidates is deprecated; use load_mapping_set (or "
        "MappingSet.loads) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return list(load_mapping_set(text).candidates)
