"""JSON (de)serialization of mapping candidates and result sets.

Discovered mappings are artifacts users keep: this module round-trips
:class:`MappingCandidate` lists through a stable, human-diffable JSON
shape, so mapping sets can be versioned next to the schemas they map.

Only table-level candidates serialize (variables and constants in the
queries); Skolem terms never appear in finished candidates.
"""

from __future__ import annotations

import json
from typing import Any, Sequence

from repro.correspondences import Correspondence
from repro.exceptions import QueryError
from repro.mappings.expression import MappingCandidate
from repro.queries.conjunctive import (
    Atom,
    ConjunctiveQuery,
    Constant,
    Term,
    Variable,
)

#: Format marker written into every document.
FORMAT = "repro-mappings/1"


def _term_to_json(term: Term) -> Any:
    if isinstance(term, Variable):
        return {"var": term.name}
    if isinstance(term, Constant):
        return {"const": term.value}
    raise QueryError(f"cannot serialize term {term}")


def _term_from_json(data: Any) -> Term:
    if "var" in data:
        return Variable(data["var"])
    if "const" in data:
        return Constant(data["const"])
    raise QueryError(f"cannot deserialize term {data!r}")


def _query_to_json(query: ConjunctiveQuery) -> dict:
    return {
        "name": query.name,
        "head": [_term_to_json(t) for t in query.head_terms],
        "body": [
            {
                "predicate": atom.predicate,
                "terms": [_term_to_json(t) for t in atom.terms],
            }
            for atom in query.body
        ],
    }


def _query_from_json(data: dict) -> ConjunctiveQuery:
    return ConjunctiveQuery(
        [_term_from_json(t) for t in data["head"]],
        [
            Atom(
                atom["predicate"],
                [_term_from_json(t) for t in atom["terms"]],
            )
            for atom in data["body"]
        ],
        data.get("name", "ans"),
    )


def candidate_to_dict(candidate: MappingCandidate) -> dict:
    """One candidate as a JSON-ready dictionary."""
    return {
        "source": _query_to_json(candidate.source_query),
        "target": _query_to_json(candidate.target_query),
        "covered": [str(c) for c in candidate.covered],
        "method": candidate.method,
        "notes": candidate.notes,
        "source_optional_tables": sorted(candidate.source_optional_tables),
    }


def candidate_from_dict(data: dict) -> MappingCandidate:
    return MappingCandidate(
        source_query=_query_from_json(data["source"]),
        target_query=_query_from_json(data["target"]),
        covered=tuple(
            Correspondence.parse(text) for text in data["covered"]
        ),
        method=data.get("method", "semantic"),
        notes=data.get("notes", ""),
        source_optional_tables=frozenset(
            data.get("source_optional_tables", ())
        ),
    )


def dump_candidates(
    candidates: Sequence[MappingCandidate], indent: int = 2
) -> str:
    """Serialize a candidate list to JSON text."""
    document = {
        "format": FORMAT,
        "candidates": [candidate_to_dict(c) for c in candidates],
    }
    return json.dumps(document, indent=indent, sort_keys=True)


def load_candidates(text: str) -> list[MappingCandidate]:
    """Parse JSON text produced by :func:`dump_candidates`."""
    document = json.loads(text)
    if document.get("format") != FORMAT:
        raise QueryError(
            f"unsupported mapping document format: {document.get('format')!r}"
        )
    return [
        candidate_from_dict(entry) for entry in document["candidates"]
    ]
