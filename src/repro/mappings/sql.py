"""SQL generation for discovered mappings.

Turns table-level conjunctive queries into executable ``SELECT``
statements (alias-per-atom, equality joins in ``WHERE``) and s-t tgds
into ``INSERT INTO ... SELECT`` transformation scripts — the form a DBA
would actually deploy a discovered mapping in. Existential target
positions render as Skolem-style string expressions so the scripts run
as-is on SQLite (see ``tests/mappings/test_sql.py``, which executes them
with the standard-library ``sqlite3`` and cross-checks the answers
against this library's own evaluator).
"""

from __future__ import annotations

from repro.exceptions import QueryError
from repro.mappings.tgd import SourceToTargetTGD
from repro.queries.conjunctive import (
    ConjunctiveQuery,
    Constant,
    Term,
    Variable,
)
from repro.relational.schema import RelationalSchema


def _quote(value: object) -> str:
    if isinstance(value, (int, float)):
        return str(value)
    text = str(value).replace("'", "''")
    return f"'{text}'"


def select_sql(
    query: ConjunctiveQuery, schema: RelationalSchema
) -> str:
    """A ``SELECT`` statement computing ``query`` over ``schema``.

    Each body atom becomes an aliased table in ``FROM``; shared variables
    become equality predicates; constants become equality-to-literal
    predicates; the head projects one expression per head term.
    """
    if not query.body:
        raise QueryError("cannot render an empty query as SQL")
    aliases: list[tuple[str, str]] = []
    first_site: dict[Variable, str] = {}
    conditions: list[str] = []
    for index, atom in enumerate(query.body):
        if not atom.is_db_atom:
            raise QueryError(f"SQL rendering needs table atoms, got {atom}")
        table = schema.table(atom.bare_predicate)
        if table.arity != atom.arity:
            raise QueryError(
                f"atom {atom} does not match table {table.name} arity"
            )
        alias = f"t{index}"
        aliases.append((table.name, alias))
        for column, term in zip(table.columns, atom.terms):
            site = f"{alias}.{column}"
            if isinstance(term, Variable):
                if term in first_site:
                    conditions.append(f"{site} = {first_site[term]}")
                else:
                    first_site[term] = site
            elif isinstance(term, Constant):
                conditions.append(f"{site} = {_quote(term.value)}")
            else:
                raise QueryError(f"cannot render Skolem term {term} in SQL")
    select_items = []
    for position, term in enumerate(query.head_terms, start=1):
        if isinstance(term, Variable):
            if term not in first_site:
                raise QueryError(f"unsafe head variable {term}")
            select_items.append(f"{first_site[term]} AS c{position}")
        elif isinstance(term, Constant):
            select_items.append(f"{_quote(term.value)} AS c{position}")
        else:
            raise QueryError(f"cannot render head term {term}")
    lines = [
        "SELECT DISTINCT " + ", ".join(select_items),
        "FROM " + ", ".join(f"{name} AS {alias}" for name, alias in aliases),
    ]
    if conditions:
        lines.append("WHERE " + "\n  AND ".join(conditions))
    return "\n".join(lines)


def _skolem_expression(
    tgd_name: str, variable: Variable, exported: dict[Variable, str]
) -> str:
    """A SQLite expression building a labeled-null-style string."""
    prefix = _quote(f"_sk:{tgd_name}:{variable.name}:")
    if not exported:
        return prefix
    parts = " || ':' || ".join(site for site in exported.values())
    return f"{prefix} || {parts}"


def insert_sql(
    tgd: SourceToTargetTGD,
    source_schema: RelationalSchema,
    target_schema: RelationalSchema,
) -> str:
    """``INSERT INTO ... SELECT`` statements executing ``tgd``.

    One statement per target atom; exported variables come from the
    source ``SELECT``, target-existential variables become deterministic
    Skolem strings over the exported values (the SQL analogue of the
    labeled nulls in :func:`repro.mappings.exchange.exchange`).
    """
    source_select = select_sql(tgd.source, source_schema)
    # Map each exported target variable to its SELECT output column.
    exported: dict[Variable, str] = {}
    for position, (source_term, target_term) in enumerate(
        zip(tgd.source.head_terms, tgd.target.head_terms), start=1
    ):
        if isinstance(target_term, Variable):
            exported[target_term] = f"src.c{position}"
    statements = []
    for atom in tgd.target.body:
        if not atom.is_db_atom:
            raise QueryError(f"target atom must be a table atom: {atom}")
        table = target_schema.table(atom.bare_predicate)
        select_items = []
        for term in atom.terms:
            if isinstance(term, Variable) and term in exported:
                select_items.append(exported[term])
            elif isinstance(term, Variable):
                select_items.append(
                    _skolem_expression(tgd.name, term, exported)
                )
            elif isinstance(term, Constant):
                select_items.append(_quote(term.value))
            else:
                raise QueryError(f"cannot render term {term}")
        statements.append(
            f"INSERT OR IGNORE INTO {table.name} "
            f"({', '.join(table.columns)})\n"
            f"SELECT {', '.join(select_items)}\n"
            f"FROM (\n{_indent(source_select)}\n) AS src;"
        )
    return "\n\n".join(statements)


def _indent(text: str, prefix: str = "  ") -> str:
    return "\n".join(prefix + line for line in text.splitlines())
