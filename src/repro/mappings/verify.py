"""Verifying mappings against concrete instances (mapping debugging).

The paper's workflow ends with candidates "presented to the user for
further examination and debugging". This module provides the data-level
half of that: given a tgd and a pair of instances, report exactly which
source answers the target fails to justify — the witnesses a user would
inspect to accept or reject a candidate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mappings.tgd import SourceToTargetTGD
from repro.queries.datalog import evaluate_query
from repro.relational.instance import Instance


@dataclass(frozen=True)
class Violation:
    """One source answer with no matching target answer."""

    tgd_name: str
    exported: tuple

    def __str__(self) -> str:
        return f"{self.tgd_name}: no target tuple justifies {self.exported!r}"


def tgd_violations(
    tgd: SourceToTargetTGD,
    source_instance: Instance,
    target_instance: Instance,
    limit: int = 100,
) -> list[Violation]:
    """Source answers of ``tgd`` absent from the target's answers.

    Empty list ⇔ the instance pair satisfies the tgd. ``limit`` caps the
    number of reported witnesses.
    """
    source_answers = evaluate_query(tgd.source, source_instance)
    target_answers = evaluate_query(tgd.target, target_instance)
    violations = []
    for answer in sorted(source_answers - target_answers, key=repr):
        violations.append(Violation(tgd.name, answer))
        if len(violations) >= limit:
            break
    return violations


def satisfies(
    tgd: SourceToTargetTGD,
    source_instance: Instance,
    target_instance: Instance,
) -> bool:
    """Whether the instance pair satisfies the tgd."""
    return not tgd_violations(tgd, source_instance, target_instance, limit=1)


@dataclass(frozen=True)
class VerificationReport:
    """Satisfaction summary for a set of tgds over one instance pair."""

    satisfied: tuple[str, ...]
    violated: tuple[Violation, ...]

    @property
    def ok(self) -> bool:
        return not self.violated

    def __str__(self) -> str:
        lines = [
            f"{len(self.satisfied)} tgd(s) satisfied, "
            f"{len(self.violated)} violation(s)"
        ]
        lines.extend(f"  {violation}" for violation in self.violated[:10])
        return "\n".join(lines)


def verify_mappings(
    tgds,
    source_instance: Instance,
    target_instance: Instance,
    per_tgd_limit: int = 10,
) -> VerificationReport:
    """Check every tgd, collecting violations across the set."""
    satisfied: list[str] = []
    violated: list[Violation] = []
    for tgd in tgds:
        found = tgd_violations(
            tgd, source_instance, target_instance, per_tgd_limit
        )
        if found:
            violated.extend(found)
        else:
            satisfied.append(tgd.name)
    return VerificationReport(tuple(satisfied), tuple(violated))
