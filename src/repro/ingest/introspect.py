"""Database introspection: a catalog backend → :class:`RelationalSchema`.

This is the front half of the ingestion pipeline (``docs/ingestion.md``).
A :class:`~repro.ingest.backends.CatalogBackend` answers the dialect's
catalog questions — tables, columns, primary keys, foreign keys, unique
indexes — and the :class:`CatalogIntrospector` here assembles them,
identically for every backend, into the same
:class:`~repro.relational.schema.RelationalSchema` the rest of the
library consumes. Two backends ship: live SQLite databases
(:mod:`repro.ingest.backends.sqlite`) and parsed ``pg_dump`` /
``mysqldump`` SQL text (:mod:`repro.ingest.backends.pgdump`).

Everything the introspector *notices* but does not *decide* is surfaced
as a structured :class:`IngestDiagnostic`, never a guess baked into the
schema (the virt-graph ontology-discovery convention): two foreign keys
into the same table suggest an edge/relationship table, an ``_id``
suffix on an unconstrained column suggests an undeclared foreign key,
a unique non-key index is a natural-key candidate, a missing primary
key is worth a warning. Downstream consumers (the CLI report, the
``POST /introspect`` response) render these for human review.

Untrusted SQL (the service accepts schema dumps over the wire) is
either *parsed* without execution (the pgdump backend) or executed
through :func:`connect_memory_from_sql`, which pins the database in
memory and denies ``ATTACH`` via an authorizer so a dump cannot touch
the server's filesystem.
"""

from __future__ import annotations

import re
import sqlite3
from dataclasses import dataclass, field
from typing import Mapping

from repro.ingest.backends import (
    CatalogBackend,
    SQLiteBackend,
    connect_memory_from_sql,
    open_database,
)
from repro.relational.constraints import ReferentialConstraint
from repro.relational.schema import RelationalSchema, Table

__all__ = [
    "CatalogIntrospector",
    "IngestDiagnostic",
    "IntrospectionResult",
    "connect_memory_from_sql",
    "introspect_backend",
    "introspect_sqlite",
    "open_database",
]

#: Diagnostic severities, mild to fatal (mirrors :mod:`repro.validation`).
INFO = "info"
WARNING = "warning"
ERROR = "error"

_IDENTIFIER_FIX_RE = re.compile(r"[\s.]+")
_ID_SUFFIX_RE = re.compile(r"(.+?)_?id$", re.IGNORECASE)


@dataclass(frozen=True)
class IngestDiagnostic:
    """One structured introspection finding.

    ``code`` is a stable dotted identifier (``"pattern.edge-table"``,
    ``"table.no-primary-key"``, ...) for programmatic filtering;
    ``location`` is ``"table"`` or ``"table.column"``.
    """

    severity: str
    code: str
    message: str
    location: str = ""

    def __str__(self) -> str:
        where = f" [{self.location}]" if self.location else ""
        return f"{self.severity}: {self.code}{where}: {self.message}"

    def to_wire(self) -> dict[str, str]:
        return {
            "severity": self.severity,
            "code": self.code,
            "message": self.message,
            "location": self.location,
        }


@dataclass
class IntrospectionResult:
    """A database catalog read back as a schema plus structured findings."""

    schema: RelationalSchema
    diagnostics: tuple[IngestDiagnostic, ...] = ()
    #: Declared column types, ``{table: {column: type text}}`` (may be "").
    column_types: dict[str, dict[str, str]] = field(default_factory=dict)
    #: Unique non-primary-key indexes: ``{table: ((col, ...), ...)}``.
    natural_keys: dict[str, tuple[tuple[str, ...], ...]] = field(
        default_factory=dict
    )
    #: Sanitized table name → the database's original table name.
    original_tables: dict[str, str] = field(default_factory=dict)
    #: Sanitized column → original column name, per sanitized table.
    original_columns: dict[str, dict[str, str]] = field(
        default_factory=dict
    )
    #: Which backend produced this result (``"sqlite"``, ``"pgdump"``).
    backend: str = "sqlite"
    #: Backend type categories, ``{table: {column: category}}`` — the
    #: dialect's declared types mapped into the shared lattice the
    #: correspondence matcher's type penalty compares.
    type_categories: dict[str, dict[str, str]] = field(
        default_factory=dict
    )
    #: Per-table catalog fingerprints (sanitized table name → hash);
    #: drives :mod:`repro.ingest.reingest` change detection.
    table_fingerprints: dict[str, str] = field(default_factory=dict)
    #: Fingerprint of the whole catalog (order-independent).
    catalog_fingerprint: str = ""

    @property
    def errors(self) -> tuple[IngestDiagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == ERROR)

    @property
    def warnings(self) -> tuple[IngestDiagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == WARNING)

    def findings(self, code_prefix: str) -> tuple[IngestDiagnostic, ...]:
        """Diagnostics whose code starts with ``code_prefix``."""
        return tuple(
            d for d in self.diagnostics if d.code.startswith(code_prefix)
        )

    def describe(self) -> str:
        """Human-readable report: the schema, then every finding."""
        lines = [self.schema.describe()]
        for diagnostic in self.diagnostics:
            lines.append(f"  {diagnostic}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# The introspector
# ---------------------------------------------------------------------------
class CatalogIntrospector:
    """Reads one catalog backend into an :class:`IntrospectionResult`.

    Dialect-agnostic: every catalog question goes through the
    :class:`~repro.ingest.backends.CatalogBackend` protocol, so the
    sanitization, diagnostic, and pattern-recognition behavior is
    byte-identical across backends reading equivalent catalogs.
    """

    def __init__(
        self, backend: CatalogBackend, schema_name: str = "db"
    ) -> None:
        self.backend = backend
        self.schema_name = schema_name
        self.diagnostics: list[IngestDiagnostic] = []
        #: original name → sanitized name, per table.
        self._renames: dict[str, dict[str, str]] = {}
        self._original_tables: dict[str, str] = {}
        self._original_columns: dict[str, dict[str, str]] = {}

    # -- diagnostics -----------------------------------------------------
    def _diag(
        self, severity: str, code: str, message: str, location: str = ""
    ) -> None:
        self.diagnostics.append(
            IngestDiagnostic(severity, code, message, location)
        )

    # -- identifiers -----------------------------------------------------
    def _sanitize(self, name: str, kind: str, location: str) -> str | None:
        """A library-legal identifier for ``name``, or ``None``.

        Quoted catalog identifiers may contain whitespace and dots,
        which :class:`RelationalSchema` forbids; such names are
        rewritten with underscores and reported, never silently altered.
        """
        fixed = _IDENTIFIER_FIX_RE.sub("_", name.strip())
        if not fixed:
            self._diag(
                ERROR,
                "identifier.unusable",
                f"{kind} name {name!r} cannot be made a legal identifier",
                location,
            )
            return None
        if fixed != name:
            self._diag(
                WARNING,
                "identifier.renamed",
                f"{kind} {name!r} introspected as {fixed!r} "
                f"(whitespace/dots are not legal identifier characters)",
                location,
            )
        return fixed

    # -- entry point -----------------------------------------------------
    def introspect(self) -> IntrospectionResult:
        schema = RelationalSchema(self.schema_name)
        column_types: dict[str, dict[str, str]] = {}
        natural_keys: dict[str, tuple[tuple[str, ...], ...]] = {}
        for severity, code, message, location in self.backend.diagnostics():
            self._diag(severity, code, message, location)
        table_names = list(self.backend.list_tables())
        if not table_names:
            self._diag(
                ERROR,
                "database.empty",
                "the database contains no user tables: nothing to "
                "introspect",
                self.schema_name,
            )
        for original in table_names:
            self._read_table(original, schema, column_types, natural_keys)
        for original in table_names:
            self._read_foreign_keys(original, schema)
        self._recognize_patterns(schema, column_types)
        type_categories = {
            table: {
                column: self.backend.type_category(declared)
                for column, declared in types.items()
            }
            for table, types in column_types.items()
        }
        table_fingerprints = {
            self._renames_key(original): self.backend.catalog_fingerprint(
                original
            )
            for original in table_names
            if self._renames_key(original) is not None
        }
        return IntrospectionResult(
            schema,
            tuple(self.diagnostics),
            column_types,
            natural_keys,
            dict(self._original_tables),
            dict(self._original_columns),
            self.backend.name,
            type_categories,
            table_fingerprints,
            self.backend.catalog_fingerprint(),
        )

    def _renames_key(self, original: str) -> str | None:
        """The sanitized name of an introspected table, else ``None``."""
        if original not in self._renames:
            return None
        return _IDENTIFIER_FIX_RE.sub("_", original.strip())

    # -- tables ----------------------------------------------------------
    def _read_table(
        self,
        original: str,
        schema: RelationalSchema,
        column_types: dict[str, dict[str, str]],
        natural_keys: dict[str, tuple[tuple[str, ...], ...]],
    ) -> None:
        table_name = self._sanitize(original, "table", original)
        if table_name is None or schema.has_table(table_name):
            if table_name is not None:
                self._diag(
                    ERROR,
                    "table.duplicate",
                    f"sanitized name {table_name!r} collides with an "
                    f"already-introspected table; {original!r} skipped",
                    original,
                )
            return
        renames: dict[str, str] = {}
        columns: list[str] = []
        types: dict[str, str] = {}
        pk_positions: list[tuple[int, str]] = []
        for column_def in self.backend.columns(original):
            column = column_def.name
            fixed = self._sanitize(
                column, "column", f"{original}.{column}"
            )
            if fixed is None or fixed in columns:
                if fixed is not None:
                    self._diag(
                        ERROR,
                        "column.duplicate",
                        f"sanitized column {fixed!r} collides inside "
                        f"{original!r}; column {column!r} dropped",
                        f"{original}.{column}",
                    )
                continue
            renames[column] = fixed
            columns.append(fixed)
            types[fixed] = column_def.declared_type
            if column_def.pk_ordinal:
                pk_positions.append((column_def.pk_ordinal, fixed))
        if not columns:
            self._diag(
                ERROR,
                "table.empty",
                f"table {original!r} has no usable columns; skipped",
                original,
            )
            return
        primary_key = [column for _, column in sorted(pk_positions)]
        if not primary_key:
            self._diag(
                WARNING,
                "table.no-primary-key",
                f"table {original!r} declares no primary key (a rowid "
                f"table); keys treated as unknown",
                original,
            )
        schema.add_table(Table(table_name, columns, primary_key))
        column_types[table_name] = types
        self._renames[original] = renames
        self._original_tables[table_name] = original
        self._original_columns[table_name] = {
            fixed: source for source, fixed in renames.items()
        }
        uniques = []
        for index_columns in self.backend.unique_indexes(original):
            mapped = tuple(
                renames.get(column, column) for column in index_columns
            )
            if all(column in columns for column in mapped):
                uniques.append(mapped)
                self._diag(
                    INFO,
                    "pattern.natural-key",
                    f"unique index on ({', '.join(mapped)}) is a "
                    f"natural-key candidate",
                    table_name,
                )
        if uniques:
            natural_keys[table_name] = tuple(uniques)

    # -- foreign keys ----------------------------------------------------
    def _read_foreign_keys(
        self, original: str, schema: RelationalSchema
    ) -> None:
        if original not in self._renames:
            return  # table was skipped
        table_name = _IDENTIFIER_FIX_RE.sub("_", original.strip())
        renames = self._renames[original]
        for foreign_key in self.backend.foreign_keys(original):
            parent_original = foreign_key.parent_table
            column_pairs = foreign_key.column_pairs
            parent_name = _IDENTIFIER_FIX_RE.sub(
                "_", parent_original.strip()
            )
            if not schema.has_table(parent_name):
                self._diag(
                    WARNING,
                    "constraint.dangling",
                    f"foreign key of {original!r} references missing "
                    f"table {parent_original!r}; constraint dropped",
                    original,
                )
                continue
            parent_table = schema.table(parent_name)
            parent_renames = self._renames.get(parent_original, {})
            child_columns = [
                renames.get(child, child) for child, _ in column_pairs
            ]
            if any(parent is None for _, parent in column_pairs):
                # References the parent's implicit PRIMARY KEY.
                if len(parent_table.primary_key) != len(column_pairs):
                    self._diag(
                        WARNING,
                        "constraint.unresolvable",
                        f"foreign key of {original!r} references the "
                        f"implicit key of {parent_original!r}, which has "
                        f"{len(parent_table.primary_key)} column(s) for "
                        f"{len(column_pairs)} referencing column(s); "
                        f"constraint dropped",
                        original,
                    )
                    continue
                parent_columns = list(parent_table.primary_key)
            else:
                parent_columns = [
                    parent_renames.get(parent, parent)
                    for _, parent in column_pairs
                ]
            missing = [
                column
                for column in parent_columns
                if column not in parent_table.columns
            ]
            if missing:
                self._diag(
                    WARNING,
                    "constraint.dangling",
                    f"foreign key of {original!r} references unknown "
                    f"column(s) {missing} of {parent_original!r}; "
                    f"constraint dropped",
                    original,
                )
                continue
            schema.add_ric(
                ReferentialConstraint(
                    table_name, child_columns, parent_name, parent_columns
                )
            )

    # -- pattern recognition --------------------------------------------
    def _recognize_patterns(
        self,
        schema: RelationalSchema,
        column_types: Mapping[str, Mapping[str, str]],
    ) -> None:
        table_by_norm = {
            _pattern_norm(name): name for name in schema.table_names()
        }
        for table in schema:
            rics = schema.rics_from(table.name)
            fk_columns = {
                column for ric in rics for column in ric.child_columns
            }
            parents = [ric.parent_table for ric in rics]
            for parent in sorted(
                {p for p in parents if parents.count(p) >= 2}
            ):
                kind = (
                    "a self-referential edge"
                    if parent == table.name
                    else "an edge/relationship"
                )
                self._diag(
                    INFO,
                    "pattern.edge-table",
                    f"{parents.count(parent)} foreign keys into "
                    f"{parent!r} suggest {kind} table",
                    table.name,
                )
            if len(parents) >= 2 and set(table.columns) == fk_columns:
                self._diag(
                    INFO,
                    "pattern.pure-join-table",
                    f"every column belongs to a foreign key "
                    f"({', '.join(sorted(set(parents)))}); the table "
                    f"carries no attributes of its own",
                    table.name,
                )
            for column in table.columns:
                if column in fk_columns or column in table.primary_key:
                    continue
                match = _ID_SUFFIX_RE.match(column)
                if match is None or not match.group(1):
                    continue
                stem = _pattern_norm(match.group(1))
                guess = table_by_norm.get(stem) or table_by_norm.get(
                    stem + "s"
                )
                hint = (
                    f"; {guess!r} looks like the referenced table"
                    if guess is not None and guess != table.name
                    else ""
                )
                self._diag(
                    INFO,
                    "pattern.fk-hint",
                    f"column {column!r} has an id suffix but no declared "
                    f"foreign key{hint}",
                    f"{table.name}.{column}",
                )
            for column in table.columns:
                if _pattern_norm(column) in ("deletedat", "isdeleted"):
                    self._diag(
                        INFO,
                        "pattern.soft-delete",
                        f"column {column!r} suggests soft-deleted rows; "
                        f"sampled data may include tombstones",
                        f"{table.name}.{column}",
                    )


def _pattern_norm(name: str) -> str:
    return re.sub(r"[^a-z0-9]+", "", name.lower())


def introspect_backend(
    backend: CatalogBackend, schema_name: str = "db"
) -> IntrospectionResult:
    """Introspect any catalog backend into an :class:`IntrospectionResult`."""
    return CatalogIntrospector(backend, schema_name).introspect()


def introspect_sqlite(
    database: str | sqlite3.Connection, schema_name: str = "db"
) -> IntrospectionResult:
    """Introspect a SQLite database (path or open connection).

    >>> import sqlite3
    >>> conn = sqlite3.connect(":memory:")
    >>> _ = conn.executescript(
    ...     "CREATE TABLE person (pname TEXT PRIMARY KEY);"
    ...     "CREATE TABLE writes (pname TEXT, bid TEXT,"
    ...     " PRIMARY KEY (pname, bid),"
    ...     " FOREIGN KEY (pname) REFERENCES person (pname));"
    ... )
    >>> result = introspect_sqlite(conn, "src")
    >>> sorted(result.schema.table_names())
    ['person', 'writes']
    >>> [str(ric) for ric in result.schema.rics]
    ['writes.pname -> person.pname']
    """
    connection, owned = open_database(database)
    try:
        return introspect_backend(SQLiteBackend(connection), schema_name)
    finally:
        if owned:
            connection.close()
