"""Forward-engineer library schemas into live databases or dumps.

The inverse of :mod:`repro.ingest.introspect`, used to build test and
benchmark fixtures: take a :class:`RelationalSchema` (hand-authored, or
produced by ``er2rel`` from a CM) plus an optional
:class:`~repro.relational.instance.Instance`, and materialize either a
real SQLite database or a Postgres-style SQL dump
(:func:`pgdump_ddl`). Introspecting the result back — through the
matching backend — must reproduce the schema: the round-trip property
the ingestion tests and the CI ``introspect-smoke``/``pgdump-smoke``
jobs assert.

Unlike :func:`repro.relational.ddl.emit_ddl` (which targets the
library's own portable ``.sql`` dialect), the DDL emitted here is
dialect-specific: every identifier is double-quoted so names that are
SQL keywords survive, and foreign keys always list explicit parent
columns so both ``PRAGMA foreign_key_list`` and the dump parser report
them unambiguously.
"""

from __future__ import annotations

import sqlite3
from typing import Mapping

from repro.exceptions import IngestError
from repro.relational.instance import Instance, LabeledNull
from repro.relational.schema import RelationalSchema, Table


def _quote(name: str) -> str:
    return '"' + name.replace('"', '""') + '"'


def sqlite_table_ddl(
    table: Table,
    schema: RelationalSchema,
    column_types: Mapping[str, str] | None = None,
) -> str:
    """SQLite ``CREATE TABLE`` text for one table.

    ``column_types`` optionally maps column names to declared types
    (defaulting to ``TEXT`` — the discovery algorithms are
    type-agnostic, but fixtures may want realistic affinities).
    """
    types = column_types or {}
    body = [
        f"    {_quote(column)} {types.get(column, 'TEXT')}"
        for column in table.columns
    ]
    if table.primary_key:
        quoted = ", ".join(_quote(c) for c in table.primary_key)
        body.append(f"    PRIMARY KEY ({quoted})")
    for ric in schema.rics_from(table.name):
        child = ", ".join(_quote(c) for c in ric.child_columns)
        parent = ", ".join(_quote(c) for c in ric.parent_columns)
        body.append(
            f"    FOREIGN KEY ({child}) "
            f"REFERENCES {_quote(ric.parent_table)} ({parent})"
        )
    return (
        f"CREATE TABLE {_quote(table.name)} (\n"
        + ",\n".join(body)
        + "\n);"
    )


def sqlite_ddl(
    schema: RelationalSchema,
    column_types: Mapping[str, Mapping[str, str]] | None = None,
) -> str:
    """The whole schema as SQLite DDL, tables in declaration order.

    Tables are emitted in schema declaration order; SQLite does not
    require parents before children (foreign keys are not enforced
    unless ``PRAGMA foreign_keys = ON``), so no topological sort is
    needed for the DDL to execute.
    """
    per_table = column_types or {}
    statements = [
        sqlite_table_ddl(table, schema, per_table.get(table.name))
        for table in schema
    ]
    return "\n\n".join(statements) + "\n"


def _pg_literal(value: object) -> str:
    """A Postgres SQL literal for one sampled value."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, LabeledNull):
        value = value.label
    return "'" + str(value).replace("'", "''") + "'"


def pgdump_ddl(
    schema: RelationalSchema,
    instance: Instance | None = None,
    column_types: Mapping[str, Mapping[str, str]] | None = None,
    schema_qualifier: str = "public",
) -> str:
    """The schema (and optional rows) as a ``pg_dump``-style SQL dump.

    Mimics the shape real ``pg_dump`` output takes: a ``SET`` preamble,
    schema-qualified ``CREATE TABLE`` statements carrying only column
    definitions, ``INSERT`` data, and every key declared afterwards via
    ``ALTER TABLE ONLY ... ADD CONSTRAINT``. Feeding the result to the
    ``pgdump`` backend must introspect back to ``schema`` — the
    round-trip the ``pgdump-smoke`` CI job and the backend-matrix
    benchmark assert. Column types default to ``text``.
    """
    per_table = column_types or {}
    qualify = (
        (lambda name: f"{schema_qualifier}.{_quote(name)}")
        if schema_qualifier
        else _quote
    )
    statements = [
        "SET statement_timeout = 0;",
        "SET client_encoding = 'UTF8';",
    ]
    for table in schema:
        types = per_table.get(table.name, {})
        body = ",\n".join(
            f"    {_quote(column)} {types.get(column, 'text')}"
            for column in table.columns
        )
        statements.append(
            f"CREATE TABLE {qualify(table.name)} (\n{body}\n);"
        )
    if instance is not None:
        for table in schema:
            for row in instance.rows(table.name):
                values = ", ".join(_pg_literal(value) for value in row)
                statements.append(
                    f"INSERT INTO {qualify(table.name)} "
                    f"VALUES ({values});"
                )
    for table in schema:
        if table.primary_key:
            quoted = ", ".join(_quote(c) for c in table.primary_key)
            statements.append(
                f"ALTER TABLE ONLY {qualify(table.name)}\n"
                f"    ADD CONSTRAINT {_quote(table.name + '_pkey')} "
                f"PRIMARY KEY ({quoted});"
            )
    for table in schema:
        for number, ric in enumerate(schema.rics_from(table.name), 1):
            child = ", ".join(_quote(c) for c in ric.child_columns)
            parent = ", ".join(_quote(c) for c in ric.parent_columns)
            statements.append(
                f"ALTER TABLE ONLY {qualify(table.name)}\n"
                f"    ADD CONSTRAINT "
                f"{_quote(f'{table.name}_fkey{number}')} "
                f"FOREIGN KEY ({child}) REFERENCES "
                f"{qualify(ric.parent_table)} ({parent});"
            )
    return "\n\n".join(statements) + "\n"


def materialize_sqlite(
    schema: RelationalSchema,
    database: str | sqlite3.Connection = ":memory:",
    instance: Instance | None = None,
    column_types: Mapping[str, Mapping[str, str]] | None = None,
) -> sqlite3.Connection:
    """Create the schema (and optionally its rows) in a SQLite database.

    ``database`` may be a filesystem path, ``":memory:"``, or an
    already-open connection (left open either way — the caller owns it).
    Labeled nulls in ``instance`` rows are stored as their label text so
    the materialized data stays self-describing.

    >>> schema = RelationalSchema(
    ...     "s", [Table("person", ["pname"], ["pname"])]
    ... )
    >>> conn = materialize_sqlite(schema)
    >>> conn.execute(
    ...     "SELECT name FROM sqlite_master WHERE type='table'"
    ... ).fetchall()
    [('person',)]
    """
    if isinstance(database, sqlite3.Connection):
        connection = database
    else:
        try:
            connection = sqlite3.connect(database)
        except sqlite3.Error as error:
            raise IngestError(
                f"cannot create SQLite database {database!r}: {error}"
            ) from error
    try:
        connection.executescript(sqlite_ddl(schema, column_types))
        if instance is not None:
            _insert_rows(connection, schema, instance)
        connection.commit()
    except sqlite3.Error as error:
        raise IngestError(
            f"materializing schema {schema.name!r} failed: {error}"
        ) from error
    return connection


def _insert_rows(
    connection: sqlite3.Connection,
    schema: RelationalSchema,
    instance: Instance,
) -> None:
    for table in schema:
        rows = instance.rows(table.name)
        if not rows:
            continue
        placeholders = ", ".join("?" for _ in table.columns)
        statement = (
            f"INSERT INTO {_quote(table.name)} VALUES ({placeholders})"
        )
        connection.executemany(
            statement,
            [
                tuple(
                    value.label if isinstance(value, LabeledNull) else value
                    for value in row
                )
                for row in rows
            ],
        )
