"""``repro.ingest``: live-database ingestion — SQLite in, scenarios out.

The paper assumes every legacy table already carries recovered
semantics; the rest of this library assumed every scenario was
hand-authored in Python. This package closes the gap: point it at a
pair of *real* SQLite databases plus a conceptual model and get back a
ready-to-discover :class:`~repro.discovery.batch.Scenario`:

* :mod:`repro.ingest.introspect` — read ``sqlite_master`` and the
  ``table_info``/``foreign_key_list``/``index_list`` pragmas into a
  :class:`~repro.relational.schema.RelationalSchema`, with virt-graph
  style pattern recognition (edge tables, ``_id`` FK hints, natural-key
  indexes, soft deletes) surfaced as structured
  :class:`~repro.ingest.introspect.IngestDiagnostic` records;
* :mod:`repro.ingest.recover` — run the heuristic semantics recoverer
  against the CM and fold uninterpreted tables/columns into a
  :class:`~repro.validation.ValidationReport` (reported, never dropped);
* :mod:`repro.ingest.correspond` — seed correspondences through the
  shared CM with the baseline matcher plus a SQLite type-affinity
  penalty, or accept an explicit correspondence file;
* :mod:`repro.ingest.scenario` — assemble the content-fingerprinted
  scenario (the persistent stage cache and service result cache apply
  unchanged) and optionally sample live rows for TGD verification;
* :mod:`repro.ingest.fixture` — the inverse direction: forward-engineer
  library schemas into live SQLite databases, used by the round-trip
  tests and the CI ``introspect-smoke`` job.

Front doors: ``python -m repro introspect SOURCE.db TARGET.db --cm NAME``
and the service's ``POST /introspect`` (see ``docs/ingestion.md``).
"""

from repro.ingest.correspond import (
    parse_correspondence_lines,
    seed_correspondences,
    type_affinity,
)
from repro.ingest.fixture import materialize_sqlite, sqlite_ddl
from repro.ingest.introspect import (
    IngestDiagnostic,
    IntrospectionResult,
    connect_memory_from_sql,
    introspect_sqlite,
)
from repro.ingest.recover import RecoveredSide, recover_introspected
from repro.ingest.scenario import (
    IngestedScenario,
    ingest_pair,
    resolve_cm_argument,
    sample_instance,
)

__all__ = [
    "IngestDiagnostic",
    "IntrospectionResult",
    "IngestedScenario",
    "RecoveredSide",
    "connect_memory_from_sql",
    "ingest_pair",
    "introspect_sqlite",
    "materialize_sqlite",
    "parse_correspondence_lines",
    "recover_introspected",
    "resolve_cm_argument",
    "sample_instance",
    "seed_correspondences",
    "sqlite_ddl",
    "type_affinity",
]
