"""``repro.ingest``: database ingestion — real catalogs in, scenarios out.

The paper assumes every legacy table already carries recovered
semantics; the rest of this library assumed every scenario was
hand-authored in Python. This package closes the gap: point it at a
pair of *real* database catalogs plus a conceptual model and get back a
ready-to-discover :class:`~repro.discovery.batch.Scenario`:

* :mod:`repro.ingest.backends` — the dialect layer: a
  :class:`~repro.ingest.backends.CatalogBackend` protocol answering
  every catalog question (tables, columns, keys, samples, type
  categories, per-table fingerprints), implemented for live SQLite
  databases and for parsed (never executed) ``pg_dump``/``mysqldump``
  SQL text;
* :mod:`repro.ingest.introspect` — the dialect-agnostic core: read any
  backend into a :class:`~repro.relational.schema.RelationalSchema`,
  with virt-graph style pattern recognition (edge tables, ``_id`` FK
  hints, natural-key indexes, soft deletes) surfaced as structured
  :class:`~repro.ingest.introspect.IngestDiagnostic` records;
* :mod:`repro.ingest.recover` — run the heuristic semantics recoverer
  against the CM and fold uninterpreted tables/columns into a
  :class:`~repro.validation.ValidationReport` (reported, never dropped);
* :mod:`repro.ingest.correspond` — seed correspondences through the
  shared CM with the baseline matcher plus a backend type-category
  penalty and a value-overlap signal over sampled rows, or accept an
  explicit correspondence file;
* :mod:`repro.ingest.scenario` — assemble the content-fingerprinted
  scenario (the persistent stage cache and service result cache apply
  unchanged) and optionally sample rows for TGD verification;
* :mod:`repro.ingest.reingest` — incremental re-ingestion: per-table
  catalog fingerprints decide which tables to re-recover after drift,
  feeding :func:`~repro.discovery.incremental.rediscover` and a
  semantic mapping diff;
* :mod:`repro.ingest.fixture` — the inverse direction: forward-engineer
  library schemas into live SQLite databases or Postgres-style dumps,
  used by the round-trip tests and the CI smoke jobs.

Front doors: ``python -m repro introspect SOURCE TARGET --cm NAME
--backend {sqlite,pgdump,auto}`` and the service's ``POST /introspect``
(see ``docs/ingestion.md``).
"""

from repro.ingest.backends import (
    BACKEND_CHOICES,
    CatalogBackend,
    ColumnDef,
    DumpBackend,
    ForeignKeyDef,
    SQLiteBackend,
    TYPE_CATEGORIES,
    backend_for,
    detect_backend,
)
from repro.ingest.correspond import (
    parse_correspondence_lines,
    seed_correspondences,
    type_affinity,
    value_jaccard,
)
from repro.ingest.fixture import materialize_sqlite, pgdump_ddl, sqlite_ddl
from repro.ingest.introspect import (
    CatalogIntrospector,
    IngestDiagnostic,
    IntrospectionResult,
    connect_memory_from_sql,
    introspect_backend,
    introspect_sqlite,
)
from repro.ingest.recover import RecoveredSide, recover_introspected
from repro.ingest.reingest import ReingestReport, TableDrift, reingest_pair
from repro.ingest.scenario import (
    IngestedScenario,
    ingest_pair,
    instance_values,
    resolve_cm_argument,
    sample_instance,
    sample_instance_from_backend,
)

__all__ = [
    "BACKEND_CHOICES",
    "CatalogBackend",
    "CatalogIntrospector",
    "ColumnDef",
    "DumpBackend",
    "ForeignKeyDef",
    "IngestDiagnostic",
    "IntrospectionResult",
    "IngestedScenario",
    "RecoveredSide",
    "ReingestReport",
    "SQLiteBackend",
    "TYPE_CATEGORIES",
    "TableDrift",
    "backend_for",
    "connect_memory_from_sql",
    "detect_backend",
    "ingest_pair",
    "instance_values",
    "introspect_backend",
    "introspect_sqlite",
    "materialize_sqlite",
    "parse_correspondence_lines",
    "pgdump_ddl",
    "recover_introspected",
    "reingest_pair",
    "resolve_cm_argument",
    "sample_instance",
    "sample_instance_from_backend",
    "seed_correspondences",
    "sqlite_ddl",
    "type_affinity",
    "value_jaccard",
]
