"""Incremental re-ingestion: continuous mapping maintenance.

A production database drifts — a column gains an index, a table is
added, a type changes. Re-pointing ingestion at the drifted catalog
should not pay for a cold re-derivation of everything: per-table
catalog fingerprints (:meth:`CatalogBackend.catalog_fingerprint`) say
exactly which tables changed, so semantics recovery re-derives only
those (plus their foreign-key dependents, whose trees resolve through
them) and adopts every other table's previous s-tree verbatim. The
re-ingested scenario then feeds the incremental discovery engine
(:func:`repro.discovery.incremental.rediscover`), whose stage cache
replays whatever the drift did not invalidate, and the resulting
candidates are compared against the previous generation with PR 9's
semantic :func:`repro.mappings.diff.diff_candidates` — so one call
answers both "what did ingestion redo?" and "which mappings churned?".
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass
from typing import Any, Mapping

from repro.cm.model import ConceptualModel
from repro.correspondences import CorrespondenceSet
from repro.discovery.incremental import Rediscovery, rediscover
from repro.discovery.mapper import DiscoveryResult
from repro.discovery.options import DiscoveryOptions
from repro.mappings.diff import MappingDiff, diff_candidates
from repro.semantics.stree import SemanticTree

from repro.ingest.backends import backend_for
from repro.ingest.introspect import IntrospectionResult, introspect_backend
from repro.ingest.scenario import IngestedScenario, ingest_pair


@dataclass(frozen=True)
class TableDrift:
    """How one side's catalog moved between two ingestions."""

    #: Tables present in both generations with different fingerprints.
    changed: tuple[str, ...]
    #: Tables the new catalog has and the old one did not.
    added: tuple[str, ...]
    #: Tables the old catalog had and the new one does not.
    removed: tuple[str, ...]
    #: Unchanged tables whose s-tree must still be re-derived because a
    #: foreign key resolves through a drifted table.
    dependents: tuple[str, ...]
    #: Tables whose previous s-tree was adopted verbatim.
    reused: tuple[str, ...]

    @property
    def dirty(self) -> tuple[str, ...]:
        """Every table that had to be re-recovered."""
        return tuple(
            sorted(set(self.changed) | set(self.added) | set(self.dependents))
        )

    def to_wire(self) -> dict[str, Any]:
        return {
            "changed": list(self.changed),
            "added": list(self.added),
            "removed": list(self.removed),
            "dependents": list(self.dependents),
            "reused": list(self.reused),
        }


def _drift(
    old: IntrospectionResult, new: IntrospectionResult
) -> tuple[set[str], TableDrift]:
    """The dirty set and drift report for one side.

    ``dirty`` is which tables must be re-recovered: the changed and
    added tables, plus (one level of) tables whose foreign keys point
    into them — their trees resolve relationship edges through the
    drifted table's anchor, so a changed parent can change the child's
    tree even when the child's own catalog is untouched.
    """
    old_fp = old.table_fingerprints
    new_fp = new.table_fingerprints
    changed = {
        table
        for table, fingerprint in new_fp.items()
        if table in old_fp and old_fp[table] != fingerprint
    }
    added = set(new_fp) - set(old_fp)
    removed = set(old_fp) - set(new_fp)
    dirty = changed | added
    dependents = {
        ric.child_table
        for ric in new.schema.rics
        if ric.parent_table in (dirty | removed)
        and ric.child_table not in dirty
    }
    drift = TableDrift(
        tuple(sorted(changed)),
        tuple(sorted(added)),
        tuple(sorted(removed)),
        tuple(sorted(dependents)),
        (),  # reused is filled in after recovery ran
    )
    return dirty | dependents, drift


def _reuse_offer(
    previous_trees: Mapping[str, SemanticTree],
    new_tables: Mapping[str, str],
    dirty: set[str],
) -> dict[str, SemanticTree]:
    return {
        table: tree
        for table, tree in previous_trees.items()
        if table in new_tables and table not in dirty
    }


@dataclass
class ReingestReport:
    """One incremental re-ingestion: the new scenario plus what it reused.

    ``rediscovery``/``mapping_diff`` are populated when the caller asked
    :func:`reingest_pair` to also re-run discovery (``previous_result``
    given or ``run=True``).
    """

    ingested: IngestedScenario
    source_drift: TableDrift
    target_drift: TableDrift
    rediscovery: Rediscovery | None = None
    mapping_diff: MappingDiff | None = None

    @property
    def reused_tables(self) -> int:
        return len(self.source_drift.reused) + len(self.target_drift.reused)

    @property
    def recovered_tables(self) -> int:
        return len(self.source_drift.dirty) + len(self.target_drift.dirty)

    def to_wire(self) -> dict[str, Any]:
        document: dict[str, Any] = {
            "source": self.source_drift.to_wire(),
            "target": self.target_drift.to_wire(),
            "reused_tables": self.reused_tables,
            "recovered_tables": self.recovered_tables,
        }
        if self.rediscovery is not None:
            document["rediscovery"] = self.rediscovery.report()
        if self.mapping_diff is not None:
            document["mapping_churn"] = {
                "unchanged": len(self.mapping_diff.unchanged),
                "added": len(self.mapping_diff.added),
                "removed": len(self.mapping_diff.removed),
                "summary": self.mapping_diff.summary(),
            }
        return document

    def describe(self) -> str:
        lines = ["incremental re-ingestion:"]
        for label, drift in (
            ("source", self.source_drift),
            ("target", self.target_drift),
        ):
            lines.append(
                f"  {label}: {len(drift.reused)} table(s) reused, "
                f"{len(drift.dirty)} re-recovered "
                f"(changed: {list(drift.changed)}, added: "
                f"{list(drift.added)}, removed: {list(drift.removed)}, "
                f"dependents: {list(drift.dependents)})"
            )
        if self.rediscovery is not None:
            lines.append(
                f"  rediscovery: "
                f"{len(self.rediscovery.unchanged_stages)} stage(s) "
                f"unchanged, {len(self.rediscovery.invalidated_stages)} "
                f"invalidated, {self.rediscovery.unit_cache_hits} "
                f"search unit(s) replayed"
            )
        if self.mapping_diff is not None:
            lines.append(f"  mapping churn: {self.mapping_diff.summary()}")
        return "\n".join(lines)


def reingest_pair(
    previous: IngestedScenario,
    source_db: str | sqlite3.Connection,
    target_db: str | sqlite3.Connection,
    source_model: ConceptualModel,
    target_model: ConceptualModel | None = None,
    *,
    backend: str = "sqlite",
    previous_result: DiscoveryResult | None = None,
    run: bool = False,
    scenario_id: str | None = None,
    correspondences: CorrespondenceSet | None = None,
    synonyms: Mapping[str, str] | None = None,
    threshold: float = 0.75,
    options: DiscoveryOptions | None = None,
    sample_rows: int = 0,
    strict: bool = False,
) -> ReingestReport:
    """Re-ingest a (possibly drifted) database pair against a previous run.

    The drifted catalogs are introspected once to compare per-table
    fingerprints with ``previous``; unchanged tables offer their
    previous s-trees for verbatim adoption, and only drifted tables
    (plus their FK dependents) are re-derived. When ``correspondences``
    is omitted, the previous scenario's correspondences are carried
    forward — re-running the matcher against a drifted catalog is a
    *policy* decision the caller makes by passing fresh ones.

    With ``previous_result`` (or ``run=True``), discovery is re-run
    through :func:`~repro.discovery.incremental.rediscover` — the stage
    cache replays what the drift left intact — and the new candidates
    are diffed against ``previous_result``'s semantically.
    """
    source_probe, source_owned = backend_for(source_db, backend)
    target_probe, target_owned = backend_for(target_db, backend)
    try:
        new_source = introspect_backend(
            source_probe, previous.source.introspection.schema.name
        )
        new_target = introspect_backend(
            target_probe, previous.target.introspection.schema.name
        )
    finally:
        if source_owned is not None:
            source_owned.close()
        if target_owned is not None:
            target_owned.close()
    source_dirty, source_drift = _drift(
        previous.source.introspection, new_source
    )
    target_dirty, target_drift = _drift(
        previous.target.introspection, new_target
    )
    previous_source_trees = {
        table: previous.source.semantics.tree(table)
        for table in previous.source.semantics.tables_with_semantics()
    }
    previous_target_trees = {
        table: previous.target.semantics.tree(table)
        for table in previous.target.semantics.tables_with_semantics()
    }
    source_reuse = _reuse_offer(
        previous_source_trees, new_source.table_fingerprints, source_dirty
    )
    target_reuse = _reuse_offer(
        previous_target_trees, new_target.table_fingerprints, target_dirty
    )
    if correspondences is None:
        correspondences = previous.scenario.correspondences
    ingested = ingest_pair(
        source_db,
        target_db,
        source_model,
        target_model,
        scenario_id=(
            scenario_id
            if scenario_id is not None
            else previous.scenario.scenario_id
        ),
        source_name=previous.source.introspection.schema.name,
        target_name=previous.target.introspection.schema.name,
        correspondences=correspondences,
        synonyms=synonyms,
        threshold=threshold,
        options=options,
        sample_rows=sample_rows,
        strict=strict,
        backend=backend,
        source_reuse=source_reuse,
        target_reuse=target_reuse,
    )
    source_drift = TableDrift(
        source_drift.changed,
        source_drift.added,
        source_drift.removed,
        source_drift.dependents,
        tuple(sorted(ingested.source.recovery.reused_tables)),
    )
    target_drift = TableDrift(
        target_drift.changed,
        target_drift.added,
        target_drift.removed,
        target_drift.dependents,
        tuple(sorted(ingested.target.recovery.reused_tables)),
    )
    report = ReingestReport(ingested, source_drift, target_drift)
    if previous_result is not None or run:
        report.rediscovery = rediscover(previous_result, ingested.scenario)
        if previous_result is not None:
            report.mapping_diff = diff_candidates(
                previous_result.candidates,
                report.rediscovery.result.candidates,
            )
    return report


__all__ = [
    "ReingestReport",
    "TableDrift",
    "reingest_pair",
]
