"""Seed attribute correspondences between two introspected schemas.

The paper treats correspondences as an *input* produced by a matching
tool; ingestion needs them before discovery can run. This module layers
three policies over the library's baseline matcher
(:func:`repro.matching.suggest_correspondences`):

* **Semantic matching through the shared CM.** Both sides were
  recovered against the *same* conceptual model, so rather than only
  comparing raw column names the matcher sees each column's CM
  attribute — ``person.pname`` matches ``hasbooksoldat.aname`` when
  both realize a ``name``-like attribute of the same class family.
* **Type-category penalty.** Each backend maps its dialect's declared
  types into the shared category lattice
  (:data:`repro.ingest.backends.TYPE_CATEGORIES`); suggestions whose
  source and target categories disagree (numeric vs text etc.) are
  penalized — a weak signal, but cheap and real, and comparable across
  dialects (SQLite ``TEXT`` vs Postgres ``character varying`` agree).
* **Value-overlap boost/penalty.** When sampled column values are
  available, the Jaccard overlap of the two columns' distinct values
  scales the score: disjoint value sets are a strong hint the columns
  mean different things even when their names rhyme.

An explicit user-supplied correspondence file (one ``table.col <->
table.col`` per line, ``#`` comments) replaces matcher output entirely
— matcher suggestions are a bootstrap, not an authority.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.correspondences import Correspondence, CorrespondenceSet
from repro.exceptions import IngestError
from repro.ingest.backends import type_affinity
from repro.matching import (
    MatchSuggestion,
    as_correspondence_set,
    suggest_correspondences,
)
from repro.semantics.lav import SchemaSemantics

__all__ = [
    "MIN_VALUE_SAMPLE",
    "TYPE_MISMATCH_PENALTY",
    "VALUE_OVERLAP_WEIGHT",
    "parse_correspondence_lines",
    "seed_correspondences",
    "type_affinity",
    "value_jaccard",
]

#: Score multiplier when the two sides' type categories differ
#: (numeric vs text etc.) — a soft penalty, not a veto.
TYPE_MISMATCH_PENALTY = 0.85

#: How much of the score rides on value overlap when samples exist:
#: the multiplier is ``1 - WEIGHT * (1 - jaccard)``, so fully disjoint
#: value sets cost 30% and identical sets cost nothing.
VALUE_OVERLAP_WEIGHT = 0.3

#: Both columns must have at least this many distinct sampled values
#: before overlap says anything — tiny samples overlap by accident.
MIN_VALUE_SAMPLE = 3


def _category(
    table: str,
    column: str,
    declared: str,
    categories: Mapping[str, Mapping[str, str]],
) -> str:
    """The column's backend type category (affinity when unmapped)."""
    mapped = categories.get(table, {}).get(column)
    return mapped if mapped is not None else type_affinity(declared)


def _apply_type_penalty(
    suggestions: Iterable[MatchSuggestion],
    source_types: Mapping[str, Mapping[str, str]],
    target_types: Mapping[str, Mapping[str, str]],
    source_categories: Mapping[str, Mapping[str, str]],
    target_categories: Mapping[str, Mapping[str, str]],
) -> list[MatchSuggestion]:
    adjusted = []
    for suggestion in suggestions:
        correspondence = suggestion.correspondence
        source_declared = source_types.get(
            correspondence.source.table, {}
        ).get(correspondence.source.name, "")
        target_declared = target_types.get(
            correspondence.target.table, {}
        ).get(correspondence.target.name, "")
        if (
            source_declared
            and target_declared
            and _category(
                correspondence.source.table,
                correspondence.source.name,
                source_declared,
                source_categories,
            )
            != _category(
                correspondence.target.table,
                correspondence.target.name,
                target_declared,
                target_categories,
            )
        ):
            suggestion = MatchSuggestion(
                suggestion.score * TYPE_MISMATCH_PENALTY,
                correspondence,
                f"{suggestion.reason}; type category mismatch "
                f"({source_declared} vs {target_declared})",
            )
        adjusted.append(suggestion)
    return adjusted


def _normalize_value(value: object) -> str:
    """One comparable spelling per value across backends.

    SQLite hands back typed values; the dump backend parses text. An
    integer-valued float and its int (``1.0`` vs ``1``) normalize the
    same way, and text comparison is case-insensitive.
    """
    if isinstance(value, float) and value.is_integer():
        value = int(value)
    return str(value).strip().lower()


def _distinct_values(
    table: str,
    column: str,
    values: Mapping[str, Mapping[str, Sequence[object]]],
) -> frozenset[str]:
    sampled = values.get(table, {}).get(column, ())
    return frozenset(
        _normalize_value(value) for value in sampled if value is not None
    )


def value_jaccard(
    source_values: Iterable[object], target_values: Iterable[object]
) -> float:
    """Jaccard overlap of two columns' distinct non-null values."""
    source_set = frozenset(
        _normalize_value(v) for v in source_values if v is not None
    )
    target_set = frozenset(
        _normalize_value(v) for v in target_values if v is not None
    )
    union = source_set | target_set
    if not union:
        return 0.0
    return len(source_set & target_set) / len(union)


def _apply_value_overlap(
    suggestions: Iterable[MatchSuggestion],
    source_values: Mapping[str, Mapping[str, Sequence[object]]],
    target_values: Mapping[str, Mapping[str, Sequence[object]]],
) -> list[MatchSuggestion]:
    adjusted = []
    for suggestion in suggestions:
        correspondence = suggestion.correspondence
        source_set = _distinct_values(
            correspondence.source.table,
            correspondence.source.name,
            source_values,
        )
        target_set = _distinct_values(
            correspondence.target.table,
            correspondence.target.name,
            target_values,
        )
        if (
            len(source_set) >= MIN_VALUE_SAMPLE
            and len(target_set) >= MIN_VALUE_SAMPLE
        ):
            union = source_set | target_set
            jaccard = len(source_set & target_set) / len(union)
            multiplier = 1.0 - VALUE_OVERLAP_WEIGHT * (1.0 - jaccard)
            suggestion = MatchSuggestion(
                suggestion.score * multiplier,
                correspondence,
                f"{suggestion.reason}; value overlap {jaccard:.2f}",
            )
        adjusted.append(suggestion)
    return adjusted


def seed_correspondences(
    source: SchemaSemantics,
    target: SchemaSemantics,
    source_types: Mapping[str, Mapping[str, str]] | None = None,
    target_types: Mapping[str, Mapping[str, str]] | None = None,
    synonyms: Mapping[str, str] | None = None,
    threshold: float = 0.75,
    *,
    source_categories: Mapping[str, Mapping[str, str]] | None = None,
    target_categories: Mapping[str, Mapping[str, str]] | None = None,
    source_values: Mapping[str, Mapping[str, Sequence[object]]]
    | None = None,
    target_values: Mapping[str, Mapping[str, Sequence[object]]]
    | None = None,
) -> list[MatchSuggestion]:
    """Scored correspondence suggestions between two recovered sides.

    Matching runs over the :class:`SchemaSemantics` (so CM attribute
    names participate); then type-category mismatches are penalized by
    :data:`TYPE_MISMATCH_PENALTY` (categories come from the backends'
    ``type_category`` maps, falling back to SQLite affinity of the
    declared type); then, when ``source_values``/``target_values``
    carry sampled column data, value overlap rescales each score by
    ``1 - VALUE_OVERLAP_WEIGHT * (1 - jaccard)``. The list is re-ranked
    and suggestions falling below ``threshold`` drop out.
    """
    suggestions = suggest_correspondences(
        source, target, synonyms=synonyms, threshold=threshold
    )
    adjusted = _apply_type_penalty(
        suggestions,
        source_types or {},
        target_types or {},
        source_categories or {},
        target_categories or {},
    )
    if source_values or target_values:
        adjusted = _apply_value_overlap(
            adjusted, source_values or {}, target_values or {}
        )
    adjusted.sort(key=lambda s: (-s.score, str(s)))
    return [s for s in adjusted if s.score >= threshold]


def parse_correspondence_lines(
    lines: Iterable[str],
) -> CorrespondenceSet:
    """Parse an explicit correspondence file's lines.

    One ``source_table.col <-> target_table.col`` per line; blank lines
    and ``#`` comments are ignored. Malformed lines raise
    :class:`IngestError` naming the offending line.
    """
    correspondences: list[Correspondence] = []
    for number, raw in enumerate(lines, start=1):
        text = raw.strip()
        if not text or text.startswith("#"):
            continue
        try:
            correspondences.append(Correspondence.parse(text))
        except Exception as error:
            raise IngestError(
                f"correspondence file line {number}: {error}"
            ) from error
    return CorrespondenceSet(correspondences)
