"""Seed attribute correspondences between two introspected schemas.

The paper treats correspondences as an *input* produced by a matching
tool; ingestion needs them before discovery can run. This module layers
two policies over the library's baseline matcher
(:func:`repro.matching.suggest_correspondences`):

* **Semantic matching through the shared CM.** Both sides were
  recovered against the *same* conceptual model, so rather than only
  comparing raw column names the matcher sees each column's CM
  attribute — ``person.pname`` matches ``hasbooksoldat.aname`` when
  both realize a ``name``-like attribute of the same class family.
  Suggestions whose lifted source and target attributes disagree about
  the CM attribute are additionally penalized when SQLite declared
  types disagree in affinity (a weak signal, but cheap and real).
* **Explicit override.** A user-supplied correspondence file (one
  ``table.col <-> table.col`` per line, ``#`` comments) replaces
  matcher output entirely — matcher suggestions are a bootstrap, not an
  authority.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.correspondences import Correspondence, CorrespondenceSet
from repro.exceptions import IngestError
from repro.matching import (
    MatchSuggestion,
    as_correspondence_set,
    suggest_correspondences,
)
from repro.semantics.lav import SchemaSemantics

#: Declared-type → SQLite affinity class, per the SQLite affinity rules
#: (substring match on the declared type, first rule wins).
_AFFINITY_RULES = (
    ("INT", "integer"),
    ("CHAR", "text"),
    ("CLOB", "text"),
    ("TEXT", "text"),
    ("BLOB", "blob"),
    ("REAL", "real"),
    ("FLOA", "real"),
    ("DOUB", "real"),
)

#: Score multiplier when both sides declare types with different
#: affinities (numeric vs text etc.) — a soft penalty, not a veto.
TYPE_MISMATCH_PENALTY = 0.85


def type_affinity(declared: str) -> str:
    """The SQLite type-affinity class of a declared column type."""
    upper = declared.upper()
    for fragment, affinity in _AFFINITY_RULES:
        if fragment in upper:
            return affinity
    return "numeric" if declared.strip() else "blob"


def _apply_type_penalty(
    suggestions: Iterable[MatchSuggestion],
    source_types: Mapping[str, Mapping[str, str]],
    target_types: Mapping[str, Mapping[str, str]],
) -> list[MatchSuggestion]:
    adjusted = []
    for suggestion in suggestions:
        correspondence = suggestion.correspondence
        source_declared = source_types.get(
            correspondence.source.table, {}
        ).get(correspondence.source.name, "")
        target_declared = target_types.get(
            correspondence.target.table, {}
        ).get(correspondence.target.name, "")
        if (
            source_declared
            and target_declared
            and type_affinity(source_declared)
            != type_affinity(target_declared)
        ):
            suggestion = MatchSuggestion(
                suggestion.score * TYPE_MISMATCH_PENALTY,
                correspondence,
                f"{suggestion.reason}; type affinity mismatch "
                f"({source_declared} vs {target_declared})",
            )
        adjusted.append(suggestion)
    return sorted(adjusted, key=lambda s: (-s.score, str(s)))


def seed_correspondences(
    source: SchemaSemantics,
    target: SchemaSemantics,
    source_types: Mapping[str, Mapping[str, str]] | None = None,
    target_types: Mapping[str, Mapping[str, str]] | None = None,
    synonyms: Mapping[str, str] | None = None,
    threshold: float = 0.75,
) -> list[MatchSuggestion]:
    """Scored correspondence suggestions between two recovered sides.

    Matching runs over the :class:`SchemaSemantics` (so CM attribute
    names participate), then declared-type affinity mismatches are
    penalized by :data:`TYPE_MISMATCH_PENALTY` and the list re-ranked.
    Suggestions falling below ``threshold`` after the penalty drop out.
    """
    suggestions = suggest_correspondences(
        source, target, synonyms=synonyms, threshold=threshold
    )
    adjusted = _apply_type_penalty(
        suggestions, source_types or {}, target_types or {}
    )
    return [s for s in adjusted if s.score >= threshold]


def parse_correspondence_lines(
    lines: Iterable[str],
) -> CorrespondenceSet:
    """Parse an explicit correspondence file's lines.

    One ``source_table.col <-> target_table.col`` per line; blank lines
    and ``#`` comments are ignored. Malformed lines raise
    :class:`IngestError` naming the offending line.
    """
    correspondences: list[Correspondence] = []
    for number, raw in enumerate(lines, start=1):
        text = raw.strip()
        if not text or text.startswith("#"):
            continue
        try:
            correspondences.append(Correspondence.parse(text))
        except Exception as error:
            raise IngestError(
                f"correspondence file line {number}: {error}"
            ) from error
    return CorrespondenceSet(correspondences)
