"""Semantics recovery glue for introspected schemas.

Bridges :mod:`repro.ingest.introspect` to
:func:`repro.semantics.recover.recover_semantics`: run the heuristic
recoverer over a live-introspected schema against the shared CM, then
fold everything it could not interpret — skipped tables, unmapped
columns — into a :class:`repro.validation.ValidationReport` alongside
the structural validation of whatever semantics *were* recovered.
Tables without semantics are reported, never silently dropped; whether
they are fatal is the caller's policy (``strict``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.cm.model import ConceptualModel
from repro.exceptions import IngestError
from repro.semantics.lav import SchemaSemantics
from repro.semantics.recover import RecoveryReport, recover_semantics
from repro.semantics.stree import SemanticTree
from repro.validation import ValidationReport, validate_semantics

from repro.ingest.introspect import IntrospectionResult


@dataclass
class RecoveredSide:
    """One side of a scenario: introspected schema + recovered s-trees."""

    introspection: IntrospectionResult
    recovery: RecoveryReport
    validation: ValidationReport

    @property
    def semantics(self) -> SchemaSemantics:
        return self.recovery.semantics

    @property
    def ok(self) -> bool:
        """True when recovery left no errors (warnings tolerated)."""
        return self.validation.ok

    def describe(self) -> str:
        """Human-readable report: coverage, then every diagnostic."""
        schema = self.recovery.semantics.schema
        covered = len(self.recovery.semantics.tables_with_semantics())
        lines = [
            f"schema {schema.name}: {covered}/{len(schema)} tables "
            f"recovered ({self.recovery.coverage():.0%} coverage)"
        ]
        for diagnostic in self.introspection.diagnostics:
            lines.append(f"  {diagnostic}")
        rendered = self.validation.render()
        if rendered:
            lines.extend(f"  {line}" for line in rendered.splitlines())
        return "\n".join(lines)


def recover_introspected(
    introspection: IntrospectionResult,
    model: ConceptualModel,
    strict: bool = False,
    reuse: Mapping[str, SemanticTree] | None = None,
) -> RecoveredSide:
    """Recover s-trees for an introspected schema against ``model``.

    Every table the recoverer skips becomes an ``ingest.recover.
    table-skipped`` diagnostic and every column it could not map an
    ``ingest.recover.column-unmapped`` one — warnings by default, errors
    under ``strict`` (where any uninterpreted table also raises
    :class:`IngestError`). The recovered semantics themselves are run
    through :func:`repro.validation.validate_semantics`, so a recovery
    bug that produced a malformed s-tree surfaces here rather than deep
    inside discovery. ``reuse`` offers unchanged tables' previous
    s-trees (incremental re-ingestion) — adopted verbatim when they
    still fit the schema.
    """
    schema = introspection.schema
    recovery = recover_semantics(schema, model, reuse)
    report = ValidationReport()
    # Error-severity introspection findings (empty database, unusable
    # identifiers, ...) must reach the discovery gate; informational
    # findings stay on ``introspection.diagnostics`` only.
    for diagnostic in introspection.errors:
        report.add(
            diagnostic.severity,
            diagnostic.code,
            diagnostic.message,
            diagnostic.location or schema.name,
        )
    severity = "error" if strict else "warning"
    for skipped in recovery.skipped_tables:
        table_name = skipped.split(":", 1)[0]
        report.add(
            severity,
            "ingest.recover.table-skipped",
            f"no semantics recovered ({skipped.split(':', 1)[-1].strip()}); "
            f"the table cannot participate in discovery",
            f"{schema.name}.{table_name}",
        )
    for qualified in recovery.unmapped_columns:
        report.add(
            severity,
            "ingest.recover.column-unmapped",
            "column not mapped to any CM attribute; correspondences "
            "touching it cannot be lifted",
            f"{schema.name}.{qualified}",
        )
    report.extend(validate_semantics(recovery.semantics))
    side = RecoveredSide(introspection, recovery, report)
    if strict and not report.ok:
        errors = report.errors
        summary = "; ".join(str(d) for d in errors[:3])
        if len(errors) > 3:
            summary += f"; ... ({len(errors) - 3} more)"
        raise IngestError(
            f"semantics recovery for schema {schema.name!r} left "
            f"{len(errors)} error(s): {summary}"
        )
    return side
