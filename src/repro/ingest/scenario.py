"""Assemble introspected databases into ready-to-discover scenarios.

The last stage of ingestion: take two live SQLite databases (paths,
connections, or untrusted SQL dumps) plus conceptual models, and produce
a batch :class:`~repro.discovery.batch.Scenario` — introspect
(:mod:`repro.ingest.introspect`), recover semantics
(:mod:`repro.ingest.recover`), seed or accept correspondences
(:mod:`repro.ingest.correspond`), and optionally sample live rows into
:class:`~repro.relational.instance.Instance` objects so discovered TGDs
can be verified against real data (:mod:`repro.mappings.verify`).

The assembled scenario goes through :meth:`Scenario.create`, so it is
content-fingerprinted exactly like hand-authored ones: the persistent
stage cache and the service result cache apply to ingested scenarios
unchanged.
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass
from typing import Any, Mapping

from repro.cm.model import ConceptualModel
from repro.correspondences import CorrespondenceSet
from repro.discovery.batch import Scenario
from repro.discovery.options import DiscoveryOptions
from repro.exceptions import IngestError
from repro.matching import MatchSuggestion
from repro.relational.instance import Instance
from repro.relational.schema import RelationalSchema
from repro.validation import ValidationReport

from repro.ingest.correspond import (
    as_correspondence_set,
    seed_correspondences,
)
from repro.ingest.introspect import (
    IntrospectionResult,
    introspect_sqlite,
    open_database,
)
from repro.ingest.recover import RecoveredSide, recover_introspected

#: Default number of rows sampled per table by ``sample_rows``.
DEFAULT_SAMPLE_ROWS = 100


def _quote(name: str) -> str:
    return '"' + name.replace('"', '""') + '"'


def sample_instance(
    database: str | sqlite3.Connection,
    introspection: IntrospectionResult,
    rows_per_table: int = DEFAULT_SAMPLE_ROWS,
) -> Instance:
    """Sample up to ``rows_per_table`` live rows per introspected table.

    Rows are read in a deterministic order (the table's introspected
    columns, rows sorted by them) so repeated sampling of the same
    database yields the same instance. Sampling selects the *original*
    column names recorded during introspection, so tables whose
    identifiers were sanitized still read correctly.
    """
    if rows_per_table <= 0:
        raise IngestError(
            f"rows_per_table must be positive, got {rows_per_table}"
        )
    connection, owned = open_database(database)
    schema = introspection.schema
    instance = Instance(schema)
    try:
        for table in schema:
            original_table = introspection.original_tables.get(
                table.name, table.name
            )
            originals = introspection.original_columns.get(table.name, {})
            select_list = ", ".join(
                _quote(originals.get(column, column))
                for column in table.columns
            )
            try:
                rows = connection.execute(
                    f"SELECT {select_list} FROM {_quote(original_table)} "
                    f"ORDER BY {select_list} LIMIT ?",
                    (rows_per_table,),
                ).fetchall()
            except sqlite3.Error as error:
                raise IngestError(
                    f"sampling table {original_table!r} failed: {error}"
                ) from error
            instance.add_all(table.name, [tuple(row) for row in rows])
    finally:
        if owned:
            connection.close()
    return instance


@dataclass
class IngestedScenario:
    """Everything ingestion produced for one database pair.

    ``scenario`` is ready for :meth:`~repro.discovery.batch.Scenario.run`
    (or ``discover_many``, or the service job queue); the rest is the
    provenance a caller needs to audit how it was built.
    """

    scenario: Scenario
    source: RecoveredSide
    target: RecoveredSide
    #: Matcher suggestions behind the correspondences (empty when an
    #: explicit correspondence set was supplied).
    suggestions: tuple[MatchSuggestion, ...] = ()
    source_instance: Instance | None = None
    target_instance: Instance | None = None

    @property
    def correspondences(self) -> CorrespondenceSet:
        return self.scenario.correspondences

    def validation(self) -> ValidationReport:
        """Both sides' ingestion diagnostics in one report."""
        report = ValidationReport()
        report.extend(self.source.validation)
        report.extend(self.target.validation)
        if len(self.scenario.correspondences) == 0:
            report.warning(
                "ingest.correspondences.empty",
                "no correspondences seeded or supplied: discovery has "
                "nothing to interpret (lower the matching threshold or "
                "pass an explicit correspondence file)",
                self.scenario.scenario_id,
            )
        return report

    def to_wire(self) -> dict[str, Any]:
        """The inline scenario spec (``docs/service.md`` wire shape).

        The emitted document is exactly what ``POST /discover`` accepts
        as ``"scenario"`` — so ``--emit-scenario`` output can be
        replayed against a server or stored as a fixture.
        """
        # Imported lazily: repro.ingest must stay importable without
        # pulling in the whole service package (which imports back into
        # ingest for POST /introspect).
        from repro.service.wire import semantics_to_wire

        return {
            "id": self.scenario.scenario_id,
            "source": semantics_to_wire(self.source.semantics),
            "target": semantics_to_wire(self.target.semantics),
            "correspondences": [
                f"{c.source} <-> {c.target}"
                for c in self.scenario.correspondences
            ],
        }

    def describe(self) -> str:
        """Human-readable ingestion report for both sides."""
        lines = [f"scenario {self.scenario.scenario_id}:"]
        for side in (self.source, self.target):
            lines.extend(
                f"  {line}" for line in side.describe().splitlines()
            )
        lines.append(
            f"  correspondences: {len(self.scenario.correspondences)}"
        )
        for suggestion in self.suggestions:
            lines.append(f"    {suggestion}")
        return "\n".join(lines)


def ingest_pair(
    source_db: str | sqlite3.Connection,
    target_db: str | sqlite3.Connection,
    source_model: ConceptualModel,
    target_model: ConceptualModel | None = None,
    *,
    scenario_id: str = "ingested",
    source_name: str = "source",
    target_name: str = "target",
    correspondences: CorrespondenceSet | None = None,
    synonyms: Mapping[str, str] | None = None,
    threshold: float = 0.75,
    options: DiscoveryOptions | None = None,
    sample_rows: int = 0,
    strict: bool = False,
) -> IngestedScenario:
    """Turn two live SQLite databases + CM(s) into a discovery scenario.

    ``target_model`` defaults to ``source_model`` (the paper's setting:
    both legacy schemas interpreted against one shared CM). When
    ``correspondences`` is given, the matcher is skipped entirely;
    otherwise :func:`seed_correspondences` bootstraps them through the
    shared CM. ``sample_rows > 0`` additionally samples that many live
    rows per table into ``source_instance``/``target_instance`` for
    post-discovery TGD verification. ``strict`` turns uninterpreted
    tables/columns into hard :class:`IngestError` failures.
    """
    source_side = recover_introspected(
        introspect_sqlite(source_db, source_name),
        source_model,
        strict=strict,
    )
    target_side = recover_introspected(
        introspect_sqlite(target_db, target_name),
        target_model if target_model is not None else source_model,
        strict=strict,
    )
    suggestions: tuple[MatchSuggestion, ...] = ()
    if correspondences is None:
        suggested = seed_correspondences(
            source_side.semantics,
            target_side.semantics,
            source_types=source_side.introspection.column_types,
            target_types=target_side.introspection.column_types,
            synonyms=synonyms,
            threshold=threshold,
        )
        suggestions = tuple(suggested)
        correspondences = as_correspondence_set(suggested)
    scenario = Scenario.create(
        scenario_id,
        source_side.semantics,
        target_side.semantics,
        correspondences,
        options=options,
    )
    ingested = IngestedScenario(
        scenario, source_side, target_side, suggestions
    )
    if sample_rows > 0:
        ingested.source_instance = sample_instance(
            source_db, source_side.introspection, sample_rows
        )
        ingested.target_instance = sample_instance(
            target_db, target_side.introspection, sample_rows
        )
    return ingested


# ---------------------------------------------------------------------------
# CM argument resolution (CLI layer)
# ---------------------------------------------------------------------------
def resolve_cm_argument(
    text: str,
) -> tuple[ConceptualModel, ConceptualModel]:
    """Resolve a ``--cm`` argument to ``(source model, target model)``.

    Accepted forms:

    * a registered dataset name (``DBLP`` ...) — uses that dataset's
      source and target models for the respective sides;
    * a path to a JSON file holding either one
      :func:`repro.cm.serialize.model_to_dict` document (shared by both
      sides) or ``{"source": {...}, "target": {...}}``.

    This helper reads files, so it is CLI-only; the service resolves CMs
    from inline request payloads instead (paths are refused over the
    wire).
    """
    import json
    import os

    from repro.cm.serialize import model_from_dict
    from repro.datasets.registry import dataset_names, load_dataset

    if text in dataset_names():
        pair = load_dataset(text)
        return pair.source.model, pair.target.model
    if not os.path.exists(text):
        raise IngestError(
            f"--cm {text!r} is neither a registered dataset "
            f"({sorted(dataset_names())}) nor an existing JSON file"
        )
    try:
        with open(text, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError) as error:
        raise IngestError(f"cannot read CM file {text!r}: {error}") from error
    try:
        if (
            isinstance(document, dict)
            and "source" in document
            and "target" in document
        ):
            return (
                model_from_dict(document["source"]),
                model_from_dict(document["target"]),
            )
        model = model_from_dict(document)
        return model, model
    except Exception as error:
        raise IngestError(
            f"CM file {text!r} is not a valid model document: {error}"
        ) from error
