"""Assemble introspected databases into ready-to-discover scenarios.

The last stage of ingestion: take two database catalogs — live SQLite
(paths, connections, or untrusted SQL dumps) or parsed ``pg_dump`` /
``mysqldump`` text, selected per :mod:`repro.ingest.backends` — plus
conceptual models, and produce a batch
:class:`~repro.discovery.batch.Scenario` — introspect
(:mod:`repro.ingest.introspect`), recover semantics
(:mod:`repro.ingest.recover`), seed or accept correspondences
(:mod:`repro.ingest.correspond`), and optionally sample rows into
:class:`~repro.relational.instance.Instance` objects so discovered TGDs
can be verified against real data (:mod:`repro.mappings.verify`). When
rows are sampled *and* the matcher seeds the correspondences, the
sampled values feed the matcher's value-overlap signal.

The assembled scenario goes through :meth:`Scenario.create`, so it is
content-fingerprinted exactly like hand-authored ones: the persistent
stage cache and the service result cache apply to ingested scenarios
unchanged.
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass
from typing import Any, Mapping

from repro.cm.model import ConceptualModel
from repro.correspondences import CorrespondenceSet
from repro.discovery.batch import Scenario
from repro.discovery.options import DiscoveryOptions
from repro.exceptions import IngestError
from repro.matching import MatchSuggestion
from repro.relational.instance import Instance
from repro.validation import ValidationReport

from repro.ingest.backends import (
    CatalogBackend,
    SQLiteBackend,
    backend_for,
    open_database,
)
from repro.ingest.correspond import (
    as_correspondence_set,
    seed_correspondences,
)
from repro.ingest.introspect import (
    IntrospectionResult,
    introspect_backend,
)
from repro.ingest.recover import RecoveredSide, recover_introspected

#: Default number of rows sampled per table by ``sample_rows``.
DEFAULT_SAMPLE_ROWS = 100


def sample_instance_from_backend(
    backend: CatalogBackend,
    introspection: IntrospectionResult,
    rows_per_table: int = DEFAULT_SAMPLE_ROWS,
) -> Instance:
    """Sample up to ``rows_per_table`` rows per introspected table.

    Rows are read in a deterministic order (the table's introspected
    columns, rows sorted by them) so repeated sampling of the same
    catalog yields the same instance. Sampling selects the *original*
    column names recorded during introspection, so tables whose
    identifiers were sanitized still read correctly.
    """
    if rows_per_table <= 0:
        raise IngestError(
            f"rows_per_table must be positive, got {rows_per_table}"
        )
    schema = introspection.schema
    instance = Instance(schema)
    for table in schema:
        original_table = introspection.original_tables.get(
            table.name, table.name
        )
        originals = introspection.original_columns.get(table.name, {})
        selected = tuple(
            originals.get(column, column) for column in table.columns
        )
        rows = backend.sample_rows(original_table, selected, rows_per_table)
        instance.add_all(table.name, [tuple(row) for row in rows])
    return instance


def sample_instance(
    database: str | sqlite3.Connection,
    introspection: IntrospectionResult,
    rows_per_table: int = DEFAULT_SAMPLE_ROWS,
) -> Instance:
    """Sample rows from a SQLite database (path or open connection)."""
    if rows_per_table <= 0:
        raise IngestError(
            f"rows_per_table must be positive, got {rows_per_table}"
        )
    connection, owned = open_database(database)
    try:
        return sample_instance_from_backend(
            SQLiteBackend(connection), introspection, rows_per_table
        )
    finally:
        if owned:
            connection.close()


def instance_values(
    instance: Instance,
) -> dict[str, dict[str, tuple[Any, ...]]]:
    """``{table: {column: sampled values}}`` for the matcher's overlap."""
    values: dict[str, dict[str, tuple[Any, ...]]] = {}
    for table in instance.schema:
        rows = instance.rows(table.name)
        if not rows:
            continue
        values[table.name] = {
            column: tuple(row[index] for row in rows)
            for index, column in enumerate(table.columns)
        }
    return values


@dataclass
class IngestedScenario:
    """Everything ingestion produced for one database pair.

    ``scenario`` is ready for :meth:`~repro.discovery.batch.Scenario.run`
    (or ``discover_many``, or the service job queue); the rest is the
    provenance a caller needs to audit how it was built.
    """

    scenario: Scenario
    source: RecoveredSide
    target: RecoveredSide
    #: Matcher suggestions behind the correspondences (empty when an
    #: explicit correspondence set was supplied).
    suggestions: tuple[MatchSuggestion, ...] = ()
    source_instance: Instance | None = None
    target_instance: Instance | None = None

    @property
    def correspondences(self) -> CorrespondenceSet:
        return self.scenario.correspondences

    def validation(self) -> ValidationReport:
        """Both sides' ingestion diagnostics in one report."""
        report = ValidationReport()
        report.extend(self.source.validation)
        report.extend(self.target.validation)
        if len(self.scenario.correspondences) == 0:
            report.warning(
                "ingest.correspondences.empty",
                "no correspondences seeded or supplied: discovery has "
                "nothing to interpret (lower the matching threshold or "
                "pass an explicit correspondence file)",
                self.scenario.scenario_id,
            )
        return report

    def to_wire(self) -> dict[str, Any]:
        """The inline scenario spec (``docs/service.md`` wire shape).

        The emitted document is exactly what ``POST /discover`` accepts
        as ``"scenario"`` — so ``--emit-scenario`` output can be
        replayed against a server or stored as a fixture.
        """
        # Imported lazily: repro.ingest must stay importable without
        # pulling in the whole service package (which imports back into
        # ingest for POST /introspect).
        from repro.service.wire import semantics_to_wire

        return {
            "id": self.scenario.scenario_id,
            "source": semantics_to_wire(self.source.semantics),
            "target": semantics_to_wire(self.target.semantics),
            "correspondences": [
                f"{c.source} <-> {c.target}"
                for c in self.scenario.correspondences
            ],
        }

    def describe(self) -> str:
        """Human-readable ingestion report for both sides."""
        lines = [f"scenario {self.scenario.scenario_id}:"]
        for side in (self.source, self.target):
            lines.extend(
                f"  {line}" for line in side.describe().splitlines()
            )
        lines.append(
            f"  correspondences: {len(self.scenario.correspondences)}"
        )
        for suggestion in self.suggestions:
            lines.append(f"    {suggestion}")
        return "\n".join(lines)


def ingest_pair(
    source_db: str | sqlite3.Connection,
    target_db: str | sqlite3.Connection,
    source_model: ConceptualModel,
    target_model: ConceptualModel | None = None,
    *,
    scenario_id: str = "ingested",
    source_name: str = "source",
    target_name: str = "target",
    correspondences: CorrespondenceSet | None = None,
    synonyms: Mapping[str, str] | None = None,
    threshold: float = 0.75,
    options: DiscoveryOptions | None = None,
    sample_rows: int = 0,
    strict: bool = False,
    backend: str = "sqlite",
    source_reuse: Mapping[str, Any] | None = None,
    target_reuse: Mapping[str, Any] | None = None,
) -> IngestedScenario:
    """Turn two database catalogs + CM(s) into a discovery scenario.

    ``backend`` selects how the inputs are read: ``"sqlite"`` (live
    databases — paths, connections, or SQL text executed in memory
    under the authorizer), ``"pgdump"`` (``pg_dump``/``mysqldump`` text
    parsed without execution), or ``"auto"`` (sniffed per input).
    ``target_model`` defaults to ``source_model`` (the paper's setting:
    both legacy schemas interpreted against one shared CM). When
    ``correspondences`` is given, the matcher is skipped entirely;
    otherwise :func:`seed_correspondences` bootstraps them through the
    shared CM — with the backends' type categories, and, when
    ``sample_rows > 0``, the sampled values' overlap as an extra
    signal. ``sample_rows > 0`` also keeps the samples on
    ``source_instance``/``target_instance`` for post-discovery TGD
    verification. ``strict`` turns uninterpreted tables/columns into
    hard :class:`IngestError` failures. ``source_reuse``/
    ``target_reuse`` offer previous s-trees by table name for
    incremental re-ingestion (:mod:`repro.ingest.reingest`).
    """
    source_backend, source_owned = backend_for(source_db, backend)
    target_backend, target_owned = backend_for(target_db, backend)
    try:
        source_side = recover_introspected(
            introspect_backend(source_backend, source_name),
            source_model,
            strict=strict,
            reuse=source_reuse,
        )
        target_side = recover_introspected(
            introspect_backend(target_backend, target_name),
            target_model if target_model is not None else source_model,
            strict=strict,
            reuse=target_reuse,
        )
        source_instance = target_instance = None
        if sample_rows > 0:
            source_instance = sample_instance_from_backend(
                source_backend, source_side.introspection, sample_rows
            )
            target_instance = sample_instance_from_backend(
                target_backend, target_side.introspection, sample_rows
            )
        suggestions: tuple[MatchSuggestion, ...] = ()
        if correspondences is None:
            suggested = seed_correspondences(
                source_side.semantics,
                target_side.semantics,
                source_types=source_side.introspection.column_types,
                target_types=target_side.introspection.column_types,
                synonyms=synonyms,
                threshold=threshold,
                source_categories=source_side.introspection.type_categories,
                target_categories=target_side.introspection.type_categories,
                source_values=(
                    instance_values(source_instance)
                    if source_instance is not None
                    else None
                ),
                target_values=(
                    instance_values(target_instance)
                    if target_instance is not None
                    else None
                ),
            )
            suggestions = tuple(suggested)
            correspondences = as_correspondence_set(suggested)
        scenario = Scenario.create(
            scenario_id,
            source_side.semantics,
            target_side.semantics,
            correspondences,
            options=options,
        )
        return IngestedScenario(
            scenario,
            source_side,
            target_side,
            suggestions,
            source_instance,
            target_instance,
        )
    finally:
        if source_owned is not None:
            source_owned.close()
        if target_owned is not None:
            target_owned.close()


# ---------------------------------------------------------------------------
# CM argument resolution (CLI layer)
# ---------------------------------------------------------------------------
def resolve_cm_argument(
    text: str,
) -> tuple[ConceptualModel, ConceptualModel]:
    """Resolve a ``--cm`` argument to ``(source model, target model)``.

    Accepted forms:

    * a registered dataset name (``DBLP`` ...) — uses that dataset's
      source and target models for the respective sides;
    * a path to a JSON file holding either one
      :func:`repro.cm.serialize.model_to_dict` document (shared by both
      sides) or ``{"source": {...}, "target": {...}}``.

    This helper reads files, so it is CLI-only; the service resolves CMs
    from inline request payloads instead (paths are refused over the
    wire).
    """
    import json
    import os

    from repro.cm.serialize import model_from_dict
    from repro.datasets.registry import dataset_names, load_dataset

    if text in dataset_names():
        pair = load_dataset(text)
        return pair.source.model, pair.target.model
    if not os.path.exists(text):
        raise IngestError(
            f"--cm {text!r} is neither a registered dataset "
            f"({sorted(dataset_names())}) nor an existing JSON file"
        )
    try:
        with open(text, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError) as error:
        raise IngestError(f"cannot read CM file {text!r}: {error}") from error
    try:
        if (
            isinstance(document, dict)
            and "source" in document
            and "target" in document
        ):
            return (
                model_from_dict(document["source"]),
                model_from_dict(document["target"]),
            )
        model = model_from_dict(document)
        return model, model
    except Exception as error:
        raise IngestError(
            f"CM file {text!r} is not a valid model document: {error}"
        ) from error
