"""The catalog-backend protocol: every dialect assumption in one place.

A :class:`CatalogBackend` answers the questions the dialect-agnostic
introspection core (:mod:`repro.ingest.introspect`) asks about one
database catalog — which tables exist, their columns and keys, their
foreign keys, a bounded row sample, a per-table content fingerprint,
and how a declared column type maps into the shared *type category*
lattice the matcher's penalty uses. Everything else (identifier
sanitization, diagnostics, pattern recognition, semantics recovery,
correspondence seeding) lives above the protocol and runs identically
over every backend.

Two backends ship with the library:

* :class:`repro.ingest.backends.sqlite.SQLiteBackend` — live SQLite
  databases read through ``sqlite_master`` and the PRAGMA catalogs;
* :class:`repro.ingest.backends.pgdump.DumpBackend` — Postgres
  ``pg_dump`` / MySQL ``mysqldump`` SQL text *parsed* (never executed)
  into the same structures.

Backends report table and column names exactly as the catalog spells
them (the "original" names); the core sanitizes them into library-legal
identifiers and keeps the original ↔ sanitized maps.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.discovery.fingerprint import content_hash

#: The shared type-category vocabulary. Each backend maps its dialect's
#: declared types into these categories; the correspondence matcher
#: penalizes pairs whose categories differ (a soft signal, never a
#: veto). SQLite uses its five affinity classes; richer dialects also
#: use ``boolean`` and ``temporal``.
TYPE_CATEGORIES = (
    "integer",
    "real",
    "numeric",
    "text",
    "blob",
    "boolean",
    "temporal",
)


@dataclass(frozen=True)
class ColumnDef:
    """One column as the catalog declares it.

    ``pk_ordinal`` is the column's 1-based position inside the primary
    key, or ``0`` when the column is not part of it.
    """

    name: str
    declared_type: str = ""
    pk_ordinal: int = 0


@dataclass(frozen=True)
class ForeignKeyDef:
    """One (possibly composite) foreign-key constraint.

    ``column_pairs`` lists ``(child column, parent column)`` in
    constraint ``seq`` order; a parent column of ``None`` means the
    constraint references the parent table's implicit primary key.
    """

    parent_table: str
    column_pairs: tuple[tuple[str, str | None], ...]


class CatalogBackend(abc.ABC):
    """What one database dialect must answer about its catalog."""

    #: Stable backend identifier (``"sqlite"``, ``"pgdump"``) — recorded
    #: on :class:`~repro.ingest.introspect.IntrospectionResult` and used
    #: by the CLI/wire ``backend`` selectors.
    name: str = "abstract"

    @abc.abstractmethod
    def list_tables(self) -> tuple[str, ...]:
        """User tables in catalog order (internals excluded)."""

    @abc.abstractmethod
    def columns(self, table: str) -> tuple[ColumnDef, ...]:
        """Columns of ``table`` in declaration order."""

    def primary_keys(self, table: str) -> tuple[str, ...]:
        """Primary-key columns in key ordinal order (may be empty)."""
        keyed = [
            (column.pk_ordinal, column.name)
            for column in self.columns(table)
            if column.pk_ordinal
        ]
        return tuple(name for _, name in sorted(keyed))

    @abc.abstractmethod
    def foreign_keys(self, table: str) -> tuple[ForeignKeyDef, ...]:
        """Foreign keys of ``table`` in declaration order."""

    def unique_indexes(self, table: str) -> tuple[tuple[str, ...], ...]:
        """Column tuples of unique non-primary-key indexes."""
        return ()

    @abc.abstractmethod
    def sample_rows(
        self, table: str, columns: tuple[str, ...], limit: int
    ) -> tuple[tuple, ...]:
        """Up to ``limit`` rows of ``columns``, deterministically ordered.

        ``table`` and ``columns`` use the catalog's original names.
        Repeated sampling of the same catalog must return the same rows
        in the same order (the SQLite backend sorts by the selected
        columns; the dump backend sorts the parsed rows equivalently).
        """

    @abc.abstractmethod
    def type_category(self, declared_type: str) -> str:
        """Map a declared column type into :data:`TYPE_CATEGORIES`."""

    def diagnostics(self) -> tuple[tuple[str, str, str, str], ...]:
        """Backend-level findings as ``(severity, code, message,
        location)`` tuples — e.g. dump statements the parser had to
        skip. The core folds these into the introspection diagnostics.
        """
        return ()

    # ------------------------------------------------------------------
    # Catalog fingerprints (shared across backends)
    # ------------------------------------------------------------------
    def catalog_fingerprint(self, table: str | None = None) -> str:
        """A content fingerprint of one table (or the whole catalog).

        The fingerprint covers what the ingestion pipeline can *act on*:
        column names with their type categories, the primary key, the
        foreign keys, and the unique indexes. It is canonicalized so it
        is stable under table and column reordering and under declared-
        type respellings within the same category (``INTEGER`` vs
        ``int``), and changes exactly when the catalog semantically
        changes — the property :func:`reingest` relies on to re-recover
        only drifted tables.
        """
        if table is None:
            per_table = sorted(
                (name, self.catalog_fingerprint(name))
                for name in self.list_tables()
            )
            return content_hash("catalog/1", tuple(per_table))
        columns = tuple(
            sorted(
                (column.name, self.type_category(column.declared_type))
                for column in self.columns(table)
            )
        )
        foreign_keys = tuple(
            sorted(
                (fk.parent_table, fk.column_pairs)
                for fk in self.foreign_keys(table)
            )
        )
        uniques = tuple(
            sorted(tuple(sorted(index)) for index in self.unique_indexes(table))
        )
        return content_hash(
            "table/1",
            table,
            columns,
            self.primary_keys(table),
            foreign_keys,
            uniques,
        )
