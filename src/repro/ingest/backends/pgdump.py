"""The dump-file catalog backend: ``pg_dump``/``mysqldump`` SQL, parsed.

Live Postgres/MySQL introspection needs drivers this library does not
ship; their *dump files* need only a parser. This backend reads the SQL
text a vendor dump tool emits — ``CREATE TABLE`` bodies (inline and
table-level constraints, MySQL ``KEY``/``CONSTRAINT`` clauses),
``ALTER TABLE ... ADD CONSTRAINT`` (how ``pg_dump`` declares every key),
``CREATE UNIQUE INDEX``, ``COPY ... FROM stdin`` data sections, and
``INSERT INTO ... VALUES`` rows — into the same
:class:`~repro.ingest.backends.base.CatalogBackend` structures the
SQLite backend produces.

The dump is **parsed, never executed**: untrusted input cannot run SQL,
touch the filesystem, or reach a driver, because there is no database
engine anywhere in this path. Statements the parser does not understand
are skipped and surfaced through :meth:`DumpBackend.diagnostics` —
housekeeping statements (``SET``, ``LOCK TABLES``, ownership, grants,
sequences) silently, structural ones (an ``ADD CONSTRAINT`` form we
cannot model, a row section for an unknown table) as findings.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.exceptions import IngestError
from repro.ingest.backends.base import (
    CatalogBackend,
    ColumnDef,
    ForeignKeyDef,
)

#: Leading bytes of a SQLite database file — a common operator mistake
#: is pointing ``--backend pgdump`` at a ``.db`` file.
SQLITE_MAGIC = "SQLite format 3\x00"

#: Ordered declared-type → category rules (regex search, first wins).
#: ``temporal`` outranks ``integer`` so ``interval`` does not read as an
#: int; ``boolean`` leads so ``bool`` never falls through to text.
_CATEGORY_RULES = (
    (re.compile(r"bool"), "boolean"),
    (re.compile(r"date|time|year|interval"), "temporal"),
    (re.compile(r"int|serial"), "integer"),
    (re.compile(r"float|double|real"), "real"),
    (re.compile(r"dec|numeric|money|fixed"), "numeric"),
    (re.compile(r"bytea|blob|binary|bit"), "blob"),
)


def dump_type_category(declared: str) -> str:
    """Map a Postgres/MySQL declared type into the shared categories."""
    lowered = declared.lower()
    for rule, category in _CATEGORY_RULES:
        if rule.search(lowered):
            return category
    return "text"


# ---------------------------------------------------------------------------
# Lexing: statements, quotes, comments, COPY payloads
# ---------------------------------------------------------------------------
_DOLLAR_TAG_RE = re.compile(r"\$[A-Za-z_]*\$")
_COPY_STDIN_RE = re.compile(
    r"^COPY\s+.*\bFROM\s+stdin\b", re.IGNORECASE | re.DOTALL
)


def _scan_quoted(text: str, start: int) -> int:
    """Index one past the end of the quoted token starting at ``start``.

    Handles doubling (``''``, ``""``, ``` `` ```) and backslash escapes
    (MySQL string syntax; harmless for the identifier quotes).
    """
    quote = text[start]
    i = start + 1
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\\" and quote in ("'", "`"):
            i += 2
            continue
        if ch == quote:
            if i + 1 < n and text[i + 1] == quote:  # doubled quote
                i += 2
                continue
            return i + 1
        i += 1
    return n  # unterminated; consume the rest


def _iter_statements(text: str):
    """Yield ``(statement, copy_payload)`` pairs from dump text.

    Statements are ``;``-terminated at top level (outside quotes,
    comments, and dollar-quoted bodies). A ``COPY ... FROM stdin``
    statement is followed by its raw payload: the lines up to the
    ``\\.`` terminator.
    """
    i, n = 0, len(text)
    parts: list[str] = []
    while i < n:
        ch = text[i]
        if ch == "-" and text.startswith("--", i):
            end = text.find("\n", i)
            i = n if end < 0 else end + 1
            continue
        if ch == "/" and text.startswith("/*", i):
            end = text.find("*/", i + 2)
            i = n if end < 0 else end + 2
            continue
        if ch in "'\"`":
            end = _scan_quoted(text, i)
            parts.append(text[i:end])
            i = end
            continue
        if ch == "$":
            match = _DOLLAR_TAG_RE.match(text, i)
            if match is not None:
                tag = match.group(0)
                end = text.find(tag, match.end())
                end = n if end < 0 else end + len(tag)
                parts.append(text[i:end])
                i = end
                continue
        if ch == ";":
            statement = "".join(parts).strip()
            parts = []
            i += 1
            if not statement:
                continue
            if _COPY_STDIN_RE.match(statement):
                # Payload: from the next line up to a bare "\." line.
                line_end = text.find("\n", i)
                data_start = n if line_end < 0 else line_end + 1
                terminator = re.compile(r"^\\\.\s*$", re.MULTILINE)
                match = terminator.search(text, data_start)
                if match is None:
                    yield statement, text[data_start:]
                    i = n
                else:
                    yield statement, text[data_start:match.start()]
                    i = match.end()
                continue
            yield statement, None
            continue
        parts.append(ch)
        i += 1
    tail = "".join(parts).strip()
    if tail:
        yield tail, None


def _split_top_level(text: str, separator: str = ",") -> list[str]:
    """Split on ``separator`` outside parens and quotes."""
    items: list[str] = []
    depth = 0
    i, n = 0, len(text)
    start = 0
    while i < n:
        ch = text[i]
        if ch in "'\"`":
            i = _scan_quoted(text, i)
            continue
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        elif ch == separator and depth == 0:
            items.append(text[start:i])
            start = i + 1
        i += 1
    items.append(text[start:])
    return [item.strip() for item in items if item.strip()]


# ---------------------------------------------------------------------------
# Identifiers
# ---------------------------------------------------------------------------
_BARE_IDENTIFIER_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_$]*")


def _take_identifier(text: str) -> tuple[str | None, str]:
    """Read one possibly-quoted, possibly-qualified identifier.

    Returns ``(last component unquoted, remaining text)`` — the
    qualifier (``public.``, ``mydb.``) is dropped, since the library
    models a single schema per side.
    """
    rest = text.lstrip()
    components: list[str] = []
    while True:
        if not rest:
            break
        ch = rest[0]
        if ch in "\"`":
            end = _scan_quoted(rest, 0)
            raw = rest[1:end - 1]
            components.append(raw.replace(ch * 2, ch))
            rest = rest[end:]
        else:
            match = _BARE_IDENTIFIER_RE.match(rest)
            if match is None:
                break
            components.append(match.group(0))
            rest = rest[match.end():]
        if rest.startswith("."):
            rest = rest[1:]
            continue
        break
    if not components:
        return None, text
    return components[-1], rest


def _identifier_list(text: str) -> list[str] | None:
    """Parse ``a, "b", `c```-style column lists; None on expressions."""
    names: list[str] = []
    for item in _split_top_level(text):
        name, rest = _take_identifier(item)
        # Tolerate index ordering/operator-class suffixes ("col DESC",
        # "col varchar_pattern_ops") but refuse expressions.
        if name is None or "(" in rest:
            return None
        names.append(name)
    return names if names else None


# ---------------------------------------------------------------------------
# Parsed catalog
# ---------------------------------------------------------------------------
@dataclass
class _TableAcc:
    """One table accumulated across CREATE/ALTER/data statements."""

    name: str
    columns: list[ColumnDef] = field(default_factory=list)
    primary_key: list[str] = field(default_factory=list)
    foreign_keys: list[ForeignKeyDef] = field(default_factory=list)
    uniques: list[tuple[str, ...]] = field(default_factory=list)
    rows: list[tuple] = field(default_factory=list)

    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    def set_primary_key(self, names: list[str]) -> None:
        self.primary_key = list(names)
        ordinals = {name: i for i, name in enumerate(names, start=1)}
        self.columns = [
            ColumnDef(c.name, c.declared_type, ordinals.get(c.name, 0))
            for c in self.columns
        ]


_CREATE_TABLE_RE = re.compile(
    r"CREATE\s+TABLE\s+(?:IF\s+NOT\s+EXISTS\s+)?", re.IGNORECASE
)
_CREATE_INDEX_RE = re.compile(
    r"CREATE\s+(?P<unique>UNIQUE\s+)?INDEX\s+(?:CONCURRENTLY\s+)?"
    r"(?:IF\s+NOT\s+EXISTS\s+)?",
    re.IGNORECASE,
)
_ALTER_TABLE_RE = re.compile(
    r"ALTER\s+TABLE\s+(?:ONLY\s+)?(?:IF\s+EXISTS\s+)?", re.IGNORECASE
)
_COPY_RE = re.compile(r"COPY\s+", re.IGNORECASE)
_INSERT_RE = re.compile(
    r"INSERT\s+(?:IGNORE\s+)?INTO\s+", re.IGNORECASE
)
_REFERENCES_RE = re.compile(r"\bREFERENCES\s+", re.IGNORECASE)
_PRIMARY_KEY_INLINE_RE = re.compile(r"\bPRIMARY\s+KEY\b", re.IGNORECASE)
_UNIQUE_INLINE_RE = re.compile(r"\bUNIQUE\b", re.IGNORECASE)

#: Statement openers that are dump housekeeping, skipped silently.
_HOUSEKEEPING_RE = re.compile(
    r"(SET|SELECT|BEGIN|COMMIT|START\s+TRANSACTION|USE|LOCK\s+TABLES|"
    r"UNLOCK\s+TABLES|GRANT|REVOKE|COMMENT\s+ON|SECURITY\s+LABEL|"
    r"CREATE\s+(SCHEMA|SEQUENCE|EXTENSION|FUNCTION|PROCEDURE|TRIGGER|"
    r"VIEW|TYPE|DOMAIN|DATABASE|RULE|AGGREGATE|OPERATOR|TEXT\s+SEARCH|"
    r"SERVER|PUBLICATION|SUBSCRIPTION)|"
    r"ALTER\s+(SEQUENCE|SCHEMA|FUNCTION|VIEW|TYPE|DOMAIN|INDEX|"
    r"DATABASE|DEFAULT\s+PRIVILEGES|LARGE\s+OBJECT|OPERATOR)|"
    r"DROP|REFRESH|ANALYZE|VACUUM|DELIMITER)\b",
    re.IGNORECASE,
)

#: ALTER TABLE clauses that do not affect the modelled catalog.
_ALTER_NOOP_RE = re.compile(
    r"(OWNER\s+TO|SET|RESET|CLUSTER|REPLICA|ENABLE|DISABLE|FORCE|"
    r"NO\s+FORCE|ATTACH|DETACH|INHERIT|NO\s+INHERIT|VALIDATE|"
    r"ALTER\s+COLUMN|ALTER\s+CONSTRAINT|MODIFY|CHANGE|CONVERT|"
    r"AUTO_INCREMENT|ENGINE|RENAME)",
    re.IGNORECASE,
)

#: Column-definition keywords that terminate the declared-type text.
_TYPE_STOP_WORDS = frozenset(
    {
        "NOT", "NULL", "DEFAULT", "PRIMARY", "UNIQUE", "REFERENCES",
        "CONSTRAINT", "CHECK", "COLLATE", "AUTO_INCREMENT", "GENERATED",
        "COMMENT", "STORED", "VIRTUAL", "ON",
    }
)


class DumpParser:
    """Parses one dump's text into ``_TableAcc`` structures."""

    def __init__(self) -> None:
        self.tables: dict[str, _TableAcc] = {}
        self.order: list[str] = []
        self.diagnostics: list[tuple[str, str, str, str]] = []

    # -- diagnostics -----------------------------------------------------
    def _diag(
        self, severity: str, code: str, message: str, location: str = ""
    ) -> None:
        self.diagnostics.append((severity, code, message, location))

    # -- entry point -----------------------------------------------------
    def parse(self, text: str) -> None:
        for statement, payload in _iter_statements(text):
            try:
                self._statement(statement, payload)
            except IngestError:
                raise
            except Exception as error:  # defensive: never crash on input
                self._diag(
                    "warning",
                    "dump.statement-unparsed",
                    f"could not parse statement "
                    f"{statement[:80]!r}...: {error}",
                )

    def _statement(self, statement: str, payload: str | None) -> None:
        if _CREATE_TABLE_RE.match(statement):
            self._create_table(statement)
        elif _CREATE_INDEX_RE.match(statement):
            self._create_index(statement)
        elif _ALTER_TABLE_RE.match(statement):
            self._alter_table(statement)
        elif payload is not None:
            self._copy_rows(statement, payload)
        elif _INSERT_RE.match(statement):
            self._insert_rows(statement)
        elif _HOUSEKEEPING_RE.match(statement):
            pass
        else:
            first = statement.split(None, 2)[:2]
            self._diag(
                "info",
                "dump.statement-skipped",
                f"unrecognized statement {' '.join(first)!r} skipped "
                f"(the parser models tables, constraints, indexes, and "
                f"row data only)",
            )

    # -- CREATE TABLE ----------------------------------------------------
    def _create_table(self, statement: str) -> None:
        rest = statement[_CREATE_TABLE_RE.match(statement).end():]
        name, rest = _take_identifier(rest)
        if name is None:
            self._diag(
                "warning",
                "dump.statement-unparsed",
                f"CREATE TABLE without a parseable name: "
                f"{statement[:80]!r}",
            )
            return
        rest = rest.lstrip()
        if not rest.startswith("("):
            self._diag(
                "warning",
                "dump.statement-unparsed",
                "CREATE TABLE without a column list",
                name,
            )
            return
        body = self._parenthesized(rest)
        if name in self.tables:
            self._diag(
                "error",
                "dump.table-redefined",
                f"table {name!r} is defined more than once in the dump; "
                f"the later definition is ignored",
                name,
            )
            return
        table = _TableAcc(name)
        pk: list[str] = []
        for item in _split_top_level(body):
            self._table_body_item(table, item, pk)
        if pk:
            table.set_primary_key(pk)
        self.tables[name] = table
        self.order.append(name)

    @staticmethod
    def _parenthesized(text: str) -> str:
        """The content of the leading balanced paren group of ``text``."""
        depth = 0
        i, n = 0, len(text)
        while i < n:
            ch = text[i]
            if ch in "'\"`":
                i = _scan_quoted(text, i)
                continue
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    return text[1:i]
            i += 1
        return text[1:]

    def _table_body_item(
        self, table: _TableAcc, item: str, pk: list[str]
    ) -> None:
        upper = item.upper()
        constraint_name = None
        if upper.startswith("CONSTRAINT"):
            constraint_name, item = _take_identifier(item[len("CONSTRAINT"):])
            item = item.strip()
            upper = item.upper()
        if upper.startswith("PRIMARY"):
            names = _identifier_list(self._parenthesized(
                item[item.index("("):]
            ))
            if names:
                pk[:] = names
            return
        if upper.startswith("UNIQUE"):
            # UNIQUE (...), UNIQUE KEY name (...), UNIQUE INDEX name (...)
            paren = item.find("(")
            if paren >= 0:
                names = _identifier_list(
                    self._parenthesized(item[paren:])
                )
                if names:
                    table.uniques.append(tuple(names))
            return
        if upper.startswith("FOREIGN"):
            fk = self._foreign_key_clause(item, table.name)
            if fk is not None:
                table.foreign_keys.append(fk)
            return
        if upper.startswith(("KEY", "INDEX", "FULLTEXT", "SPATIAL")):
            return  # MySQL non-unique index clauses: no catalog content
        if upper.startswith(("CHECK", "EXCLUDE", "LIKE", "PERIOD")):
            self._diag(
                "info",
                "dump.constraint-ignored",
                f"{item.split(None, 1)[0]} constraint"
                f"{f' {constraint_name!r}' if constraint_name else ''} "
                f"is outside the modelled catalog; ignored",
                table.name,
            )
            return
        self._column_definition(table, item, pk)

    def _column_definition(
        self, table: _TableAcc, item: str, pk: list[str]
    ) -> None:
        name, rest = _take_identifier(item)
        if name is None:
            self._diag(
                "warning",
                "dump.statement-unparsed",
                f"unparseable column definition {item[:60]!r}",
                table.name,
            )
            return
        declared, tail = self._declared_type(rest)
        table.columns.append(ColumnDef(name, declared, 0))
        if _PRIMARY_KEY_INLINE_RE.search(tail) and name not in pk:
            pk.append(name)
        elif _UNIQUE_INLINE_RE.search(tail):
            table.uniques.append((name,))
        reference = _REFERENCES_RE.search(tail)
        if reference is not None:
            parent, after = _take_identifier(tail[reference.end():])
            parent_columns: list[str | None] = [None]
            after = after.lstrip()
            if parent is not None and after.startswith("("):
                named = _identifier_list(self._parenthesized(after))
                if named:
                    parent_columns = list(named)
            if parent is not None:
                table.foreign_keys.append(
                    ForeignKeyDef(
                        parent,
                        tuple(
                            (name, parent_column)
                            for parent_column in parent_columns
                        ),
                    )
                )

    @staticmethod
    def _declared_type(rest: str) -> tuple[str, str]:
        """Split a column tail into (declared type text, the rest)."""
        tokens: list[str] = []
        i, n = 0, len(rest)
        while i < n:
            if rest[i].isspace():
                i += 1
                continue
            if rest[i] == "(":
                group = DumpParser._parenthesized(rest[i:])
                tokens.append(f"({group})")
                i += len(group) + 2
                continue
            if rest[i] in "'\"`":
                end = _scan_quoted(rest, i)
                tokens.append(rest[i:end])
                i = end
                continue
            match = re.match(r"[^\s(]+", rest[i:])
            word = match.group(0)
            if word.upper().rstrip(",") in _TYPE_STOP_WORDS:
                return " ".join(tokens), rest[i:]
            tokens.append(word)
            i += match.end()
        return " ".join(tokens), ""

    def _foreign_key_clause(
        self, item: str, table_name: str
    ) -> ForeignKeyDef | None:
        paren = item.find("(")
        if paren < 0:
            return None
        children = _identifier_list(self._parenthesized(item[paren:]))
        reference = _REFERENCES_RE.search(item, paren)
        if children is None or reference is None:
            self._diag(
                "warning",
                "dump.statement-unparsed",
                f"unparseable FOREIGN KEY clause {item[:60]!r}",
                table_name,
            )
            return None
        parent, after = _take_identifier(item[reference.end():])
        if parent is None:
            return None
        after = after.lstrip()
        parents: list[str | None]
        if after.startswith("("):
            named = _identifier_list(self._parenthesized(after))
            parents = list(named) if named else [None] * len(children)
        else:
            parents = [None] * len(children)
        if len(parents) != len(children):
            self._diag(
                "warning",
                "dump.statement-unparsed",
                f"FOREIGN KEY arity mismatch in {item[:60]!r}",
                table_name,
            )
            return None
        return ForeignKeyDef(parent, tuple(zip(children, parents)))

    # -- ALTER TABLE -----------------------------------------------------
    def _alter_table(self, statement: str) -> None:
        rest = statement[_ALTER_TABLE_RE.match(statement).end():]
        name, rest = _take_identifier(rest)
        table = self.tables.get(name) if name else None
        for clause in _split_top_level(rest):
            upper = clause.upper()
            if not upper.startswith("ADD"):
                if not _ALTER_NOOP_RE.match(clause):
                    self._diag(
                        "info",
                        "dump.statement-skipped",
                        f"ALTER TABLE clause {clause[:40]!r} skipped",
                        name or "",
                    )
                continue
            if table is None:
                self._diag(
                    "warning",
                    "dump.alter-unknown-table",
                    f"ALTER TABLE for {name!r}, which the dump never "
                    f"created; constraint dropped",
                    name or "",
                )
                continue
            body = clause[len("ADD"):].strip()
            upper_body = body.upper()
            constraint_name = None
            if upper_body.startswith("CONSTRAINT"):
                constraint_name, body = _take_identifier(
                    body[len("CONSTRAINT"):]
                )
                body = body.strip()
                upper_body = body.upper()
            if upper_body.startswith("PRIMARY"):
                names = _identifier_list(
                    self._parenthesized(body[body.index("("):])
                )
                if names:
                    table.set_primary_key(names)
            elif upper_body.startswith("UNIQUE"):
                paren = body.find("(")
                if paren >= 0:
                    names = _identifier_list(
                        self._parenthesized(body[paren:])
                    )
                    if names:
                        table.uniques.append(tuple(names))
            elif upper_body.startswith("FOREIGN"):
                fk = self._foreign_key_clause(body, table.name)
                if fk is not None:
                    table.foreign_keys.append(fk)
            else:
                self._diag(
                    "info",
                    "dump.constraint-ignored",
                    f"ADD {body.split(None, 1)[0] if body else '?'} "
                    f"constraint"
                    f"{f' {constraint_name!r}' if constraint_name else ''}"
                    f" is outside the modelled catalog; ignored",
                    table.name,
                )

    # -- CREATE [UNIQUE] INDEX -------------------------------------------
    def _create_index(self, statement: str) -> None:
        match = _CREATE_INDEX_RE.match(statement)
        if match.group("unique") is None:
            return  # non-unique indexes carry no catalog content
        rest = statement[match.end():]
        _, rest = _take_identifier(rest)  # index name
        on = re.search(r"\bON\s+(?:ONLY\s+)?", rest, re.IGNORECASE)
        if on is None:
            return
        table_name, rest = _take_identifier(rest[on.end():])
        table = self.tables.get(table_name) if table_name else None
        if table is None:
            self._diag(
                "warning",
                "dump.alter-unknown-table",
                f"CREATE UNIQUE INDEX on {table_name!r}, which the dump "
                f"never created; index dropped",
                table_name or "",
            )
            return
        using = re.match(r"\s*USING\s+\w+", rest, re.IGNORECASE)
        if using is not None:
            rest = rest[using.end():]
        rest = rest.lstrip()
        if not rest.startswith("("):
            return
        names = _identifier_list(self._parenthesized(rest))
        if names:  # expression indexes are skipped entirely
            table.uniques.append(tuple(names))

    # -- data sections ---------------------------------------------------
    def _data_target(
        self, name: str | None, columns: list[str] | None, what: str
    ) -> tuple[_TableAcc, list[str]] | None:
        table = self.tables.get(name) if name else None
        if table is None:
            self._diag(
                "warning",
                "dump.data-unknown-table",
                f"{what} for table {name!r}, which the dump never "
                f"created; rows dropped",
                name or "",
            )
            return None
        names = columns if columns is not None else table.column_names()
        missing = [c for c in names if c not in table.column_names()]
        if missing:
            self._diag(
                "warning",
                "dump.data-unknown-columns",
                f"{what} names unknown column(s) {missing}; rows dropped",
                table.name,
            )
            return None
        return table, names

    def _store_row(
        self, table: _TableAcc, names: list[str], values: list
    ) -> bool:
        if len(values) != len(names):
            return False
        by_name = dict(zip(names, values))
        categories = {
            c.name: dump_type_category(c.declared_type)
            for c in table.columns
        }
        row = tuple(
            _coerce(by_name.get(c), categories[c])
            if c in by_name
            else None
            for c in table.column_names()
        )
        table.rows.append(row)
        return True

    def _copy_rows(self, statement: str, payload: str) -> None:
        rest = statement[_COPY_RE.match(statement).end():]
        name, rest = _take_identifier(rest)
        columns = None
        rest = rest.lstrip()
        if rest.startswith("("):
            columns = _identifier_list(self._parenthesized(rest))
        target = self._data_target(name, columns, "COPY data")
        if target is None:
            return
        table, names = target
        bad = 0
        for line in payload.splitlines():
            if not line or line == "\\.":
                continue
            values = [_copy_field(field_) for field_ in line.split("\t")]
            if not self._store_row(table, names, values):
                bad += 1
        if bad:
            self._diag(
                "warning",
                "dump.data-arity",
                f"{bad} COPY row(s) had the wrong column count; dropped",
                table.name,
            )

    def _insert_rows(self, statement: str) -> None:
        rest = statement[_INSERT_RE.match(statement).end():]
        name, rest = _take_identifier(rest)
        rest = rest.lstrip()
        columns = None
        if rest.startswith("("):
            columns = _identifier_list(self._parenthesized(rest))
            depth_end = self._paren_span(rest)
            rest = rest[depth_end:].lstrip()
        values_kw = re.match(r"VALUES?\s*", rest, re.IGNORECASE)
        if values_kw is None:
            self._diag(
                "info",
                "dump.statement-skipped",
                f"non-VALUES INSERT for {name!r} skipped",
                name or "",
            )
            return
        target = self._data_target(name, columns, "INSERT data")
        if target is None:
            return
        table, names = target
        bad = 0
        for group in _split_top_level(rest[values_kw.end():]):
            group = group.strip()
            if not group.startswith("("):
                continue
            values = _parse_values(self._parenthesized(group))
            if not self._store_row(table, names, values):
                bad += 1
        if bad:
            self._diag(
                "warning",
                "dump.data-arity",
                f"{bad} INSERT tuple(s) had the wrong column count; "
                f"dropped",
                table.name,
            )

    @staticmethod
    def _paren_span(text: str) -> int:
        depth = 0
        i, n = 0, len(text)
        while i < n:
            ch = text[i]
            if ch in "'\"`":
                i = _scan_quoted(text, i)
                continue
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    return i + 1
            i += 1
        return n


# ---------------------------------------------------------------------------
# Value literals
# ---------------------------------------------------------------------------
_COPY_ESCAPES = {
    "t": "\t", "n": "\n", "r": "\r", "b": "\b", "f": "\f", "v": "\v",
    "\\": "\\",
}


def _copy_field(field_text: str):
    """Decode one COPY text-format field (``\\N`` is NULL)."""
    if field_text == "\\N":
        return None
    out: list[str] = []
    i, n = 0, len(field_text)
    while i < n:
        ch = field_text[i]
        if ch == "\\" and i + 1 < n:
            out.append(_COPY_ESCAPES.get(field_text[i + 1], field_text[i + 1]))
            i += 2
            continue
        out.append(ch)
        i += 1
    return "".join(out)


_NUMBER_RE = re.compile(r"[-+]?(\d+\.?\d*|\.\d+)([eE][-+]?\d+)?$")


def _parse_values(text: str) -> list:
    """Parse one ``VALUES (...)`` tuple body into Python values."""
    values: list = []
    for item in _split_top_level(text):
        item = item.strip()
        upper = item.upper()
        if upper == "NULL":
            values.append(None)
        elif upper in ("TRUE", "FALSE"):
            values.append(1 if upper == "TRUE" else 0)
        elif item.startswith("_binary"):
            values.append(_unquote_string(item[len("_binary"):].strip()))
        elif item.startswith(("'", '"')):
            values.append(_unquote_string(item))
        elif _NUMBER_RE.match(item):
            number = float(item)
            values.append(int(number) if number.is_integer() else number)
        else:
            values.append(item)  # hex literals, expressions: keep as text
    return values


def _unquote_string(text: str):
    quote = text[0] if text else "'"
    body = text[1:-1] if text.endswith(quote) and len(text) > 1 else text[1:]
    out: list[str] = []
    i, n = 0, len(body)
    while i < n:
        ch = body[i]
        if ch == "\\" and i + 1 < n:
            out.append(_COPY_ESCAPES.get(body[i + 1], body[i + 1]))
            i += 2
            continue
        if ch == quote and i + 1 < n and body[i + 1] == quote:
            out.append(quote)
            i += 2
            continue
        out.append(ch)
        i += 1
    return "".join(out)


def _coerce(value, category: str):
    """Best-effort typed value for a text literal (COPY data is text)."""
    if value is None or not isinstance(value, str):
        return value
    if category in ("integer", "real", "numeric", "boolean"):
        try:
            number = float(value)
        except ValueError:
            return value
        return int(number) if number.is_integer() else number
    return value


# ---------------------------------------------------------------------------
# The backend
# ---------------------------------------------------------------------------
class DumpBackend(CatalogBackend):
    """A parsed ``pg_dump``/``mysqldump`` file as a catalog backend."""

    name = "pgdump"

    def __init__(self, parser: DumpParser) -> None:
        self._parser = parser

    @classmethod
    def from_text(cls, text: str) -> "DumpBackend":
        """Parse dump text. The text is never executed."""
        if text.startswith(SQLITE_MAGIC):
            raise IngestError(
                "dump.binary: input is a SQLite database file, not a "
                "SQL dump; use the sqlite backend for .db files"
            )
        if not text.strip():
            raise IngestError(
                "dump.empty: the dump contains no SQL statements"
            )
        parser = DumpParser()
        parser.parse(text)
        return cls(parser)

    @classmethod
    def from_path(cls, path: str) -> "DumpBackend":
        """Read and parse a dump file, with structured failures."""
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except OSError as error:
            raise IngestError(
                f"dump.unreadable: cannot read dump file {path!r}: "
                f"{error}"
            ) from error
        if raw.startswith(SQLITE_MAGIC.encode("latin-1")):
            raise IngestError(
                f"dump.binary: {path!r} is a SQLite database file, not "
                f"a SQL dump; use --backend sqlite"
            )
        try:
            text = raw.decode("utf-8")
        except UnicodeDecodeError as error:
            raise IngestError(
                f"dump.unreadable: dump file {path!r} is not UTF-8 "
                f"text: {error}"
            ) from error
        if not text.strip():
            raise IngestError(
                f"dump.empty: dump file {path!r} contains no SQL "
                f"statements"
            )
        return cls.from_text(text)

    # -- protocol --------------------------------------------------------
    def list_tables(self) -> tuple[str, ...]:
        return tuple(self._parser.order)

    def _table(self, table: str) -> _TableAcc:
        try:
            return self._parser.tables[table]
        except KeyError:
            raise IngestError(
                f"dump has no table {table!r}"
            ) from None

    def columns(self, table: str) -> tuple[ColumnDef, ...]:
        return tuple(self._table(table).columns)

    def foreign_keys(self, table: str) -> tuple[ForeignKeyDef, ...]:
        return tuple(self._table(table).foreign_keys)

    def unique_indexes(self, table: str) -> tuple[tuple[str, ...], ...]:
        return tuple(self._table(table).uniques)

    def sample_rows(
        self, table: str, columns: tuple[str, ...], limit: int
    ) -> tuple[tuple, ...]:
        """Parsed rows projected and sorted like ``ORDER BY columns``."""
        acc = self._table(table)
        order = {name: i for i, name in enumerate(acc.column_names())}
        indexes = [order[column] for column in columns]
        projected = [
            tuple(row[i] for i in indexes) for row in acc.rows
        ]
        projected.sort(key=_row_sort_key)
        return tuple(projected[:limit])

    def type_category(self, declared_type: str) -> str:
        return dump_type_category(declared_type)

    def diagnostics(self) -> tuple[tuple[str, str, str, str], ...]:
        return tuple(self._parser.diagnostics)


def _row_sort_key(row: tuple):
    """SQLite-flavoured ordering: NULLs, then numbers, then text."""
    key = []
    for value in row:
        if value is None:
            key.append((0, ""))
        elif isinstance(value, bool):
            key.append((1, float(value)))
        elif isinstance(value, (int, float)):
            key.append((1, float(value)))
        else:
            key.append((2, str(value)))
    return tuple(key)


#: Textual markers that identify Postgres/MySQL dump dialects.
_DUMP_MARKERS = re.compile(
    r"FROM\s+stdin|ENGINE\s*=|AUTO_INCREMENT|pg_catalog\.|"
    r"ALTER\s+TABLE\s+ONLY|LOCK\s+TABLES|`|OWNER\s+TO",
    re.IGNORECASE,
)


def looks_like_dump(text: str) -> bool:
    """Heuristic: does SQL text look like a pg_dump/mysqldump file?

    Used by the ``auto`` backend to decide between parsing (pgdump) and
    in-memory execution under the SQLite authorizer.
    """
    return _DUMP_MARKERS.search(text) is not None
