"""Catalog backends: dialect-specific readers behind one protocol.

The ingestion core asks a :class:`CatalogBackend` for tables, columns,
keys, samples, and type categories; each module here answers for one
dialect. :func:`backend_for` resolves the CLI/wire ``backend`` selector
(``sqlite`` / ``pgdump`` / ``auto``) against an input.
"""

from __future__ import annotations

import os
import sqlite3

from repro.exceptions import IngestError
from repro.ingest.backends.base import (
    TYPE_CATEGORIES,
    CatalogBackend,
    ColumnDef,
    ForeignKeyDef,
)
from repro.ingest.backends.pgdump import (
    SQLITE_MAGIC,
    DumpBackend,
    dump_type_category,
    looks_like_dump,
)
from repro.ingest.backends.sqlite import (
    SQLiteBackend,
    connect_memory_from_sql,
    open_database,
    type_affinity,
)

#: Backend selectors accepted by the CLI, wire, and ``ingest_pair``.
BACKEND_CHOICES = ("sqlite", "pgdump", "auto")


def _is_sqlite_file(path: str) -> bool:
    try:
        with open(path, "rb") as handle:
            return handle.read(16) == SQLITE_MAGIC.encode("latin-1")
    except OSError:
        return False


def _is_path(database: str) -> bool:
    return "\n" not in database and os.path.exists(database)


def detect_backend(database: object) -> str:
    """Pick ``sqlite`` or ``pgdump`` for an input the user called auto on.

    Open connections and SQLite database files (recognized by the
    16-byte magic header) are ``sqlite``; any other existing file is a
    SQL dump, read by the ``pgdump`` parser. Non-path text is ``pgdump``
    when it carries dump-dialect markers (``COPY ... FROM stdin``,
    ``ENGINE=``, backticks, ``ALTER TABLE ONLY`` …) and ``sqlite``
    otherwise — plain portable SQL executes fine in memory under the
    SQLite authorizer.
    """
    if isinstance(database, sqlite3.Connection):
        return "sqlite"
    if isinstance(database, str):
        if _is_path(database):
            return "sqlite" if _is_sqlite_file(database) else "pgdump"
        return "pgdump" if looks_like_dump(database) else "sqlite"
    return "sqlite"


def backend_for(
    database: object, backend: str = "sqlite"
) -> tuple[CatalogBackend, object]:
    """Resolve ``(backend instance, connection-to-close-or-None)``.

    ``database`` is an open :class:`sqlite3.Connection`, a SQLite file
    path, a dump file path, or dump text. The second element is the
    connection the caller must eventually close when one was opened
    here, else ``None``.
    """
    if backend == "auto":
        backend = detect_backend(database)
    if backend == "sqlite":
        if isinstance(database, sqlite3.Connection):
            return SQLiteBackend(database), None
        if (
            isinstance(database, str)
            and not _is_path(database)
            and ("\n" in database or ";" in database)
        ):
            # SQL text, not a path: execute in memory under the
            # ATTACH-denying authorizer.
            connection = connect_memory_from_sql(database)
            return SQLiteBackend(connection), connection
        connection, owned = open_database(database)
        return SQLiteBackend(connection), (connection if owned else None)
    if backend == "pgdump":
        if isinstance(database, sqlite3.Connection):
            raise IngestError(
                "the pgdump backend parses SQL dump text; it cannot "
                "read an open SQLite connection"
            )
        if _is_path(database) or (
            "\n" not in database and ";" not in database
        ):
            # An existing file, or something path-shaped (a single line
            # that could not be SQL): read it as a file so a typo'd
            # path surfaces as a structured dump.unreadable error
            # instead of being parsed as (empty) dump text.
            return DumpBackend.from_path(database), None
        return DumpBackend.from_text(database), None
    raise IngestError(
        f"unknown backend {backend!r}; choose from "
        f"{', '.join(BACKEND_CHOICES)}"
    )


__all__ = [
    "BACKEND_CHOICES",
    "CatalogBackend",
    "ColumnDef",
    "DumpBackend",
    "ForeignKeyDef",
    "SQLITE_MAGIC",
    "SQLiteBackend",
    "TYPE_CATEGORIES",
    "backend_for",
    "connect_memory_from_sql",
    "detect_backend",
    "dump_type_category",
    "looks_like_dump",
    "open_database",
    "type_affinity",
]
