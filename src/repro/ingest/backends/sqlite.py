"""The SQLite catalog backend: live databases via the stdlib driver.

Re-homes every SQLite-specific assumption of the original ingestion
front end behind :class:`~repro.ingest.backends.base.CatalogBackend`:
``sqlite_master`` for the table list, ``PRAGMA table_info`` for columns
and primary keys, ``PRAGMA foreign_key_list`` for (possibly composite)
foreign keys, ``PRAGMA index_list``/``index_info`` for unique indexes,
and the SQLite type-affinity rules as the backend's type categories.

Untrusted SQL (the service accepts schema dumps over the wire) is
executed through :func:`connect_memory_from_sql`, which pins the
database in memory and denies ``ATTACH`` via an authorizer so a dump
cannot touch the server's filesystem. Local files open read-only
(``file:...?mode=ro``).
"""

from __future__ import annotations

import sqlite3

from repro.exceptions import IngestError
from repro.ingest.backends.base import (
    CatalogBackend,
    ColumnDef,
    ForeignKeyDef,
)

#: Declared-type → SQLite affinity class, per the SQLite affinity rules
#: (substring match on the declared type, first rule wins).
_AFFINITY_RULES = (
    ("INT", "integer"),
    ("CHAR", "text"),
    ("CLOB", "text"),
    ("TEXT", "text"),
    ("BLOB", "blob"),
    ("REAL", "real"),
    ("FLOA", "real"),
    ("DOUB", "real"),
)


def type_affinity(declared: str) -> str:
    """The SQLite type-affinity class of a declared column type."""
    upper = declared.upper()
    for fragment, affinity in _AFFINITY_RULES:
        if fragment in upper:
            return affinity
    return "numeric" if declared.strip() else "blob"


# ---------------------------------------------------------------------------
# Connections
# ---------------------------------------------------------------------------
def _deny_attach(action: int, *_args: object) -> int:
    if action in (sqlite3.SQLITE_ATTACH, sqlite3.SQLITE_DETACH):
        return sqlite3.SQLITE_DENY
    return sqlite3.SQLITE_OK


def connect_memory_from_sql(sql: str) -> sqlite3.Connection:
    """Execute an untrusted SQL dump into a fresh in-memory database.

    The statements run under an authorizer that denies ``ATTACH`` and
    ``DETACH``, so a dump shipped over the wire cannot open, create, or
    write files on the host — the database lives and dies in memory.
    Malformed SQL raises :class:`IngestError` with the driver's message.
    """
    connection = sqlite3.connect(":memory:")
    connection.set_authorizer(_deny_attach)
    try:
        connection.executescript(sql)
    except sqlite3.Error as error:
        connection.close()
        raise IngestError(f"SQL dump failed to execute: {error}") from error
    finally:
        try:
            connection.set_authorizer(None)
        except sqlite3.ProgrammingError:  # pragma: no cover - closed above
            pass
    return connection


def open_database(database: str | sqlite3.Connection) -> tuple[
    sqlite3.Connection, bool
]:
    """``(connection, owned)`` for a path or an existing connection."""
    if isinstance(database, sqlite3.Connection):
        return database, False
    try:
        # ``mode=ro`` keeps introspection read-only and refuses to
        # *create* the file when the path does not exist (plain
        # ``connect`` would silently hand back an empty database).
        connection = sqlite3.connect(
            f"file:{database}?mode=ro", uri=True
        )
    except sqlite3.Error as error:
        raise IngestError(
            f"cannot open SQLite database {database!r}: {error}"
        ) from error
    return connection, True


def _quote(name: str) -> str:
    return '"' + name.replace('"', '""') + '"'


class SQLiteBackend(CatalogBackend):
    """Reads one open SQLite connection's catalog."""

    name = "sqlite"

    def __init__(self, connection: sqlite3.Connection) -> None:
        self.connection = connection

    # -- catalog reads ---------------------------------------------------
    def list_tables(self) -> tuple[str, ...]:
        """User tables in creation order (views and internals excluded)."""
        rows = self.connection.execute(
            "SELECT name FROM sqlite_master "
            "WHERE type = 'table' AND name NOT LIKE 'sqlite_%' "
            "ORDER BY rowid"
        ).fetchall()
        return tuple(row[0] for row in rows)

    def columns(self, table: str) -> tuple[ColumnDef, ...]:
        rows = self.connection.execute(
            f"PRAGMA table_info({_quote(table)})"
        ).fetchall()
        return tuple(
            ColumnDef(row[1], row[2] or "", row[5]) for row in rows
        )

    def foreign_keys(self, table: str) -> tuple[ForeignKeyDef, ...]:
        """FK groups in DDL declaration order.

        ``PRAGMA foreign_key_list`` reports constraints in *reverse*
        declaration order (highest ``id`` first is the first declared);
        groups are re-sorted by descending id so the returned list
        matches the DDL's declaration order, with columns in ``seq``
        order inside each group.
        """
        rows = self.connection.execute(
            f"PRAGMA foreign_key_list({_quote(table)})"
        ).fetchall()
        groups: dict[int, tuple[str, list[tuple[int, str, str | None]]]] = {}
        for row in rows:
            fk_id, seq, parent, child_col, parent_col = (
                row[0], row[1], row[2], row[3], row[4],
            )
            groups.setdefault(fk_id, (parent, []))[1].append(
                (seq, child_col, parent_col)
            )
        ordered = []
        for fk_id in sorted(groups, reverse=True):
            parent, cols = groups[fk_id]
            cols.sort()
            ordered.append(
                ForeignKeyDef(
                    parent, tuple((c, p) for _, c, p in cols)
                )
            )
        return tuple(ordered)

    def unique_indexes(self, table: str) -> tuple[tuple[str, ...], ...]:
        """Column tuples of unique non-primary-key indexes, list order."""
        result: list[tuple[str, ...]] = []
        for row in self.connection.execute(
            f"PRAGMA index_list({_quote(table)})"
        ).fetchall():
            name, unique, origin = row[1], row[2], row[3]
            if not unique or origin == "pk":
                continue
            columns = tuple(
                info[2]
                for info in self.connection.execute(
                    f"PRAGMA index_info({_quote(name)})"
                ).fetchall()
                if info[2] is not None  # expression index members are NULL
            )
            if columns:
                result.append(columns)
        return tuple(result)

    def sample_rows(
        self, table: str, columns: tuple[str, ...], limit: int
    ) -> tuple[tuple, ...]:
        """Rows sorted by the selected columns — deterministic reread."""
        select_list = ", ".join(_quote(column) for column in columns)
        try:
            rows = self.connection.execute(
                f"SELECT {select_list} FROM {_quote(table)} "
                f"ORDER BY {select_list} LIMIT ?",
                (limit,),
            ).fetchall()
        except sqlite3.Error as error:
            raise IngestError(
                f"sampling table {table!r} failed: {error}"
            ) from error
        return tuple(tuple(row) for row in rows)

    def type_category(self, declared_type: str) -> str:
        return type_affinity(declared_type)
