"""A simple schema matcher: the paper's assumed first phase.

The paper's input correspondences come from "many tools that support
such matching" [Rahm & Bernstein]. This module provides a small,
deterministic element-level matcher so the whole two-phase pipeline
(match, then derive mappings) can run end to end inside this library:

* column names are normalized (case, underscores, digits) and compared
  exactly, then by containment;
* when table semantics are available, the *CM attribute names* behind
  the columns are compared too — which is how ``person.pname`` can match
  ``hasbooksoldat.aname`` if both realize a ``name``-like attribute;
* an optional synonym table injects domain knowledge.

This is intentionally a baseline matcher, not a contribution: the paper
treats correspondence quality as an input.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.correspondences import Correspondence, CorrespondenceSet
from repro.relational.schema import Column, RelationalSchema
from repro.semantics.lav import SchemaSemantics

_NORMALIZE_RE = re.compile(r"[^a-z]+")


def normalize(name: str) -> str:
    """Lowercase and strip separators/digits: ``PubName2`` → ``pubname``."""
    return _NORMALIZE_RE.sub("", name.lower())


@dataclass(frozen=True, order=True)
class MatchSuggestion:
    """One scored correspondence suggestion."""

    score: float
    correspondence: Correspondence
    reason: str

    def __str__(self) -> str:
        return f"{self.correspondence} [{self.score:.2f}: {self.reason}]"


def _name_score(left: str, right: str) -> tuple[float, str] | None:
    first, second = normalize(left), normalize(right)
    if not first or not second:
        return None
    if first == second:
        return 1.0, "exact name"
    if first in second or second in first:
        shorter, longer = sorted((first, second), key=len)
        return 0.5 + 0.4 * len(shorter) / len(longer), "name containment"
    return None


def suggest_correspondences(
    source: RelationalSchema | SchemaSemantics,
    target: RelationalSchema | SchemaSemantics,
    synonyms: Mapping[str, str] | None = None,
    threshold: float = 0.75,
) -> list[MatchSuggestion]:
    """Scored column↔column suggestions above ``threshold``.

    Passing :class:`SchemaSemantics` (instead of bare schemas) also
    compares the CM attribute names behind each column. ``synonyms`` maps
    normalized names to a canonical form applied before comparison.
    """
    synonym_map = {
        normalize(key): normalize(value)
        for key, value in (synonyms or {}).items()
    }

    def canonical(name: str) -> str:
        normalized = normalize(name)
        return synonym_map.get(normalized, normalized)

    source_schema = (
        source.schema if isinstance(source, SchemaSemantics) else source
    )
    target_schema = (
        target.schema if isinstance(target, SchemaSemantics) else target
    )
    suggestions: dict[Correspondence, MatchSuggestion] = {}
    for source_table in source_schema:
        for source_column in source_table.columns:
            for target_table in target_schema:
                for target_column in target_table.columns:
                    names = [(source_column, target_column, 1.0)]
                    if isinstance(source, SchemaSemantics) and isinstance(
                        target, SchemaSemantics
                    ):
                        attribute_pair = _attribute_names(
                            source,
                            target,
                            Column(source_table.name, source_column),
                            Column(target_table.name, target_column),
                        )
                        if attribute_pair is not None:
                            names.append((*attribute_pair, 0.9))
                    best: MatchSuggestion | None = None
                    for left, right, weight in names:
                        outcome = _name_score(canonical(left), canonical(right))
                        if outcome is None:
                            continue
                        score, reason = outcome
                        score *= weight
                        if score < threshold:
                            continue
                        candidate = MatchSuggestion(
                            score,
                            Correspondence(
                                Column(source_table.name, source_column),
                                Column(target_table.name, target_column),
                            ),
                            reason,
                        )
                        if best is None or candidate.score > best.score:
                            best = candidate
                    if best is not None:
                        existing = suggestions.get(best.correspondence)
                        if existing is None or best.score > existing.score:
                            suggestions[best.correspondence] = best
    return sorted(suggestions.values(), key=lambda s: (-s.score, str(s)))


def _attribute_names(
    source: SchemaSemantics,
    target: SchemaSemantics,
    source_column: Column,
    target_column: Column,
) -> tuple[str, str] | None:
    try:
        return (
            source.column_attribute(source_column),
            target.column_attribute(target_column),
        )
    except Exception:
        return None


def as_correspondence_set(
    suggestions: Iterable[MatchSuggestion],
) -> CorrespondenceSet:
    """Strip scores: the form the discovery pipeline consumes."""
    return CorrespondenceSet(
        suggestion.correspondence for suggestion in suggestions
    )
