"""Timing the semantics-recovery substrate over all dataset pairs.

Not a paper exhibit, but the paper's premise — "the semantics ... can be
reconstructed with low cost using our own tool" — deserves a number:
recovering every table's s-tree from the bare schema plus its CM must
stay interactive even for the 105-node KA ontology.
"""

from __future__ import annotations

import pytest

from repro.semantics.recover import recover_semantics


@pytest.mark.parametrize(
    "name",
    ["DBLP", "Mondial", "Amalgam", "3Sdb", "UT", "Hotel", "Network"],
)
def test_recovery_time(benchmark, dataset_pairs, name):
    pair = dataset_pairs[name]

    def run():
        return (
            recover_semantics(pair.source.schema, pair.source.model),
            recover_semantics(pair.target.schema, pair.target.model),
        )

    source_report, target_report = benchmark.pedantic(
        run, rounds=3, iterations=1
    )
    assert source_report.coverage() == 1.0
    assert target_report.coverage() == 1.0
