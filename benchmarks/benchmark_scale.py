"""Scale benchmark: discovery time vs synthetic CM size, oracle vs seed.

Not a paper exhibit — the paper's datasets top out at a few dozen
classes. This sweep grows the three :mod:`repro.datasets.synthetic`
families (functional chains, ISA fans, reified many-many webs) from ~10
to ~510 classes per side, keeping the marked-class span — and therefore
the discovered mapping and its translation cost — constant, so the
curve isolates the search layers the distance oracle accelerates.

Each point runs twice cold: oracle-guided (the default pipeline) and
the seed path (``repro.perf.disabled()``, blind expansion). The claims
under test:

* **equivalence** — the TGD output is byte-identical between the two
  modes at every size (the oracle only prunes provably fruitless work);
* **coverage** — every point discovers at least one candidate;
* **sub-linear growth** — oracle-guided time grows strictly slower
  than model size: between the second size and the largest, the wall
  ratio must stay under half the class ratio;
* **speedup at scale** — at the largest size the oracle-guided run
  beats the seed path by at least :data:`SPEEDUP_FLOOR`.

The report is written to ``BENCH_scale.json`` at the repo root, both
under pytest and when run directly. ``--smoke`` runs the two smallest
sizes with the equivalence/coverage gates only (the timing gates need
the large sizes to rise above machine noise) — that is the CI job.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import repro.perf as perf
from repro.datasets import synthetic
from repro.discovery.mapper import SemanticMapper

REPORT_PATH = pathlib.Path(__file__).parent.parent / "BENCH_scale.json"

#: Class budgets per side; generators land at or just below each.
SIZES = (10, 60, 150, 510)
SMOKE_SIZES = (10, 30)

#: At the largest size, oracle-guided must beat seed by this factor.
SPEEDUP_FLOOR = 1.5

#: Search counters surfaced per point (from the oracle-guided run).
POINT_COUNTERS = (
    "astar_expansions",
    "bound_prunes",
    "oracle_sweeps",
    "lossy_paths_pruned",
    "required_subtree_prunes",
)


def _tgds(result) -> tuple[str, ...]:
    return tuple(
        candidate.to_tgd(f"M{index}")
        for index, candidate in enumerate(result, start=1)
    )


def _timed_cold_discover(scenario):
    source, target, correspondences = scenario
    perf.clear_caches()
    start = time.perf_counter()
    result = SemanticMapper(source, target, correspondences).discover()
    return time.perf_counter() - start, result


def run_scale_benchmark(
    sizes=SIZES, timing_gates: bool = True
) -> tuple[dict, list[str]]:
    """One sweep over every family at every size; report plus failures."""
    failures: list[str] = []
    families: dict[str, dict] = {}
    for family in synthetic.FAMILY_NAMES:
        points = []
        for classes in sizes:
            actual, scenario = synthetic.scale_point(family, classes)
            oracle_seconds, oracle_result = _timed_cold_discover(scenario)
            with perf.disabled():
                seed_seconds, seed_result = _timed_cold_discover(scenario)
            label = f"{family}@{actual}"
            if _tgds(oracle_result) != _tgds(seed_result):
                failures.append(f"{label}: oracle output differs from seed")
            if len(oracle_result) < 1:
                failures.append(f"{label}: no candidate discovered")
            points.append(
                {
                    "classes": actual,
                    "oracle_seconds": round(oracle_seconds, 4),
                    "seed_seconds": round(seed_seconds, 4),
                    "speedup": round(
                        seed_seconds / oracle_seconds, 2
                    )
                    if oracle_seconds
                    else None,
                    "candidates": len(oracle_result),
                    "counters": {
                        name: oracle_result.stats.get(name, 0)
                        for name in POINT_COUNTERS
                    },
                }
            )
        summary: dict = {"points": points}
        if timing_gates and len(points) >= 3:
            base, top = points[1], points[-1]
            class_growth = top["classes"] / base["classes"]
            wall_growth = (
                top["oracle_seconds"] / base["oracle_seconds"]
                if base["oracle_seconds"]
                else 0.0
            )
            summary["class_growth"] = round(class_growth, 2)
            summary["oracle_growth"] = round(wall_growth, 2)
            summary["largest_speedup"] = top["speedup"]
            if wall_growth > class_growth / 2:
                failures.append(
                    f"{family}: oracle wall time grew {wall_growth:.2f}x "
                    f"over a {class_growth:.2f}x size increase "
                    "(not sub-linear)"
                )
            if top["speedup"] is not None and top["speedup"] < SPEEDUP_FLOOR:
                failures.append(
                    f"{family}: speedup at the largest size is "
                    f"{top['speedup']:.2f}x < {SPEEDUP_FLOOR}x"
                )
        families[family] = summary
    report = {
        "marked_span": synthetic.MARKED_SPAN,
        "sizes": list(sizes),
        "families": families,
    }
    return report, failures


def _write_report(sizes=SIZES, timing_gates: bool = True) -> dict:
    report, failures = run_scale_benchmark(sizes, timing_gates)
    report["failures"] = failures
    document = {"benchmark": "scale", **report}
    REPORT_PATH.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return document


try:
    import pytest
except ImportError:  # pragma: no cover - direct execution only
    pytest = None


if pytest is not None:

    @pytest.fixture(scope="module")
    def scale_report():
        """One full sweep per session, persisted like the CI artifact."""
        return _write_report()

    def test_no_failures(scale_report):
        assert scale_report["failures"] == []

    def test_every_point_discovers(scale_report):
        for family in synthetic.FAMILY_NAMES:
            for point in scale_report["families"][family]["points"]:
                assert point["candidates"] >= 1, (family, point)

    def test_oracle_counters_fire_at_scale(scale_report):
        for family in synthetic.FAMILY_NAMES:
            top = scale_report["families"][family]["points"][-1]
            assert top["counters"]["bound_prunes"] > 0, (family, top)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sizes, equivalence/coverage gates only (the CI job)",
    )
    options = parser.parse_args(argv)
    if options.smoke:
        document = _write_report(SMOKE_SIZES, timing_gates=False)
    else:
        document = _write_report()
    print(json.dumps(document, indent=2, sort_keys=True))
    if document["failures"]:
        print(f"FAILED: {document['failures']}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
