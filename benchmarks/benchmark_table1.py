"""Table 1 — Characteristics of Test Data (generation-time column).

The paper's Table 1 reports, per domain pair, the schema sizes, CM sizes,
number of benchmark mappings, and the time the semantic approach takes to
generate all mappings. The characteristics are printed/persisted; the
benchmarks measure mapping generation per domain, which is what the
table's last column times.
"""

from __future__ import annotations

import pytest

from repro.discovery.mapper import SemanticMapper
from repro.evaluation.report import render_table1


@pytest.mark.parametrize(
    "name",
    ["DBLP", "Mondial", "Amalgam", "3Sdb", "UT", "Hotel", "Network"],
)
def test_semantic_generation_time(benchmark, dataset_pairs, name):
    """Time the semantic approach over all of one domain's cases."""
    pair = dataset_pairs[name]

    def run_all_cases():
        outputs = []
        for mapping_case in pair.cases:
            mapper = SemanticMapper(
                pair.source, pair.target, mapping_case.correspondences
            )
            outputs.append(mapper.discover())
        return outputs

    results = benchmark.pedantic(run_all_cases, rounds=2, iterations=1)
    assert all(len(result) >= 1 for result in results)


@pytest.mark.parametrize(
    "name",
    ["DBLP", "Mondial", "Amalgam", "3Sdb", "UT", "Hotel", "Network"],
)
def test_ric_generation_time(benchmark, dataset_pairs, name):
    """The baseline's timing ('comparable ... less than one second')."""
    from repro.baseline.clio import RICBasedMapper

    pair = dataset_pairs[name]

    def run_all_cases():
        outputs = []
        for mapping_case in pair.cases:
            mapper = RICBasedMapper(
                pair.source.schema,
                pair.target.schema,
                mapping_case.correspondences,
            )
            outputs.append(mapper.discover())
        return outputs

    results = benchmark.pedantic(run_all_cases, rounds=2, iterations=1)
    assert all(len(result) >= 1 for result in results)


def test_render_table1(evaluation_results, results_dir, benchmark):
    """Regenerate Table 1 itself and persist it."""
    results = list(evaluation_results.values())
    text = benchmark(render_table1, results)
    (results_dir / "table1.txt").write_text(text + "\n")
    assert "DBLP1" in text and "NetworkB" in text
