"""Batch discovery benchmark: shared caches, warm speedup, parallel fan-out.

Not a paper exhibit — this measures the shared-computation layer itself:

* chain-12 discovery with the perf layer disabled (the uncached seed
  path) versus warm caches, asserting the ≥2x speedup the layer exists
  to deliver (in practice it is orders of magnitude);
* byte-identical TGD output across disabled / cold / warm runs and
  across ``workers=1`` / ``workers=2`` batches;
* candidate counts on the paper scenarios pinned to
  ``repro.perf.invariants`` — caching must never change results;
* per-phase wall times from the trace exhibit plus the disabled-tracer
  overhead estimate (must stay under ``TRACE_OVERHEAD_LIMIT``);
* the ``BENCH_discovery.json`` report, written to the repo root.
"""

from __future__ import annotations

import json
import pathlib

import pytest

import repro.perf as perf
from repro.discovery.batch import discover_many
from repro.discovery.mapper import SemanticMapper
from repro.perf.bench import (
    TRACE_OVERHEAD_LIMIT,
    _paper_scenarios,
    _tgds,
    build_chain_scenario,
    run_benchmarks,
)
from repro.perf.invariants import EXPECTED_CANDIDATE_COUNTS
from repro.trace import TRACE_FORMAT, Tracer

REPORT_PATH = pathlib.Path(__file__).parent.parent / "BENCH_discovery.json"


@pytest.fixture(scope="module")
def bench_report():
    """One full bench run per session, persisted like ``repro bench``."""
    report, failures = run_benchmarks(workers=2)
    report["failures"] = failures
    REPORT_PATH.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return report


def test_report_written_with_timings_and_counters(bench_report):
    on_disk = json.loads(REPORT_PATH.read_text(encoding="utf-8"))
    rows = on_disk["paper_scenarios"]["scenarios"]
    assert len(rows) == len(EXPECTED_CANDIDATE_COUNTS)
    for row in rows:
        assert row["wall_seconds"] >= 0
        assert "translate_cache_hits" in row["counters"]
        assert "dijkstra_cache_hits" in row["counters"]


def test_no_failures(bench_report):
    assert bench_report["failures"] == []


def test_chain12_warm_speedup(bench_report):
    chain = bench_report["chain"]
    assert chain["chain_length"] == 12
    assert chain["warm_speedup"] >= 2.0, chain


def test_candidate_counts_match_invariants(bench_report):
    counts = {
        row["scenario"]: row["candidates"]
        for row in bench_report["paper_scenarios"]["scenarios"]
    }
    assert counts == EXPECTED_CANDIDATE_COUNTS


def test_trace_exhibit_has_phase_timings(bench_report):
    """BENCH_discovery.json carries per-phase wall times from the trace."""
    trace = bench_report["trace"]
    assert trace["span_count"] >= 1
    for phase in ("discover", "lift", "target_csgs", "rank"):
        assert phase in trace["phase_seconds"], trace["phase_seconds"]
        assert trace["phase_seconds"][phase] >= 0
    assert trace["overhead_limit"] == TRACE_OVERHEAD_LIMIT
    assert trace["estimated_overhead_fraction"] < TRACE_OVERHEAD_LIMIT, trace


def test_trace_json_export_round_trips():
    """``Tracer.to_json`` yields the document the report is built from."""
    source, target, correspondences = build_chain_scenario(length=4)
    tracer = Tracer(explain=True)
    SemanticMapper(source, target, correspondences).discover(tracer=tracer)
    document = json.loads(tracer.to_json())
    assert document["format"] == TRACE_FORMAT
    assert document["explain"] is True
    assert document["spans"][0]["name"] == "discover"


def test_modes_byte_identical():
    """disabled / cold / warm discovery all print the same TGDs."""
    source, target, correspondences = build_chain_scenario(length=4)
    with perf.disabled():
        perf.clear_caches()
        reference = _tgds(
            SemanticMapper(source, target, correspondences).discover()
        )
    source, target, correspondences = build_chain_scenario(length=4)
    perf.clear_caches()
    cold = _tgds(SemanticMapper(source, target, correspondences).discover())
    warm = _tgds(SemanticMapper(source, target, correspondences).discover())
    assert cold == reference
    assert warm == reference


def test_parallel_batch_byte_identical():
    scenarios = [scenario for _, scenario in _paper_scenarios()]
    serial = discover_many(scenarios, workers=1)
    parallel = discover_many(scenarios, workers=2)
    assert [sid for sid, _ in serial.results] == [
        sid for sid, _ in parallel.results
    ]
    for (_, serial_result), (_, parallel_result) in zip(
        serial.results, parallel.results
    ):
        assert _tgds(serial_result) == _tgds(parallel_result)


def test_batch_discovery_timing(benchmark):
    """Wall time of a warm whole-corpus serial batch."""
    scenarios = [scenario for _, scenario in _paper_scenarios()]
    discover_many(scenarios, workers=1)  # warm the caches

    def run():
        return discover_many(scenarios, workers=1)

    batch = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(batch) == len(scenarios)
    assert batch.stats["translate_cache_hits"] > 0
