"""Incremental re-discovery benchmark: cold vs warm-stage-cache rerun.

Not a paper exhibit — this measures the staged engine's reuse layer
(:mod:`repro.discovery.incremental`): a multi-segment scenario is
discovered once, one correspondence is edited, and
:func:`repro.discovery.rediscover` runs the edited scenario against the
still-warm stage cache. The claims under test:

* every segment the edit did not touch replays its per-target search
  unit from cache (``stage_cache_hit_source_search.unit``);
* the rediscovered TGDs are byte-identical to a cold run of the edited
  scenario — reuse never changes results;
* rediscovery beats the cold run by at least
  :data:`repro.perf.bench.INCREMENTAL_SPEEDUP_FLOOR`.

The report is written to ``BENCH_incremental.json`` at the repo root,
both under pytest and when run directly
(``python benchmarks/benchmark_incremental.py``, the CI smoke job).
"""

from __future__ import annotations

import json
import pathlib
import sys

import pytest

from repro.perf.bench import (
    INCREMENTAL_SEGMENTS,
    INCREMENTAL_SPEEDUP_FLOOR,
    run_incremental_benchmark,
)

REPORT_PATH = pathlib.Path(__file__).parent.parent / "BENCH_incremental.json"


def _write_report() -> dict:
    report, failures = run_incremental_benchmark()
    report["failures"] = failures
    document = {"benchmark": "incremental", **report}
    REPORT_PATH.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return document


@pytest.fixture(scope="module")
def incremental_report():
    """One benchmark run per session, persisted like the CI job."""
    return _write_report()


def test_no_failures(incremental_report):
    assert incremental_report["failures"] == []


def test_unedited_segments_replay_from_cache(incremental_report):
    reuse = incremental_report["reuse"]
    assert reuse["stage_cache_hits"] >= 1
    assert reuse["unit_cache_hits"] >= INCREMENTAL_SEGMENTS - 1


def test_speedup_meets_floor(incremental_report):
    assert (
        incremental_report["speedup"] >= INCREMENTAL_SPEEDUP_FLOOR
    ), incremental_report


def test_edit_invalidates_but_run_still_answers(incremental_report):
    reuse = incremental_report["reuse"]
    # A real edit: the stage fingerprints moved, so no whole stage was
    # servable — the wins are the per-target units.
    assert reuse["full_reuse"] is False
    assert incremental_report["candidates"] >= 1
    assert (
        incremental_report["candidates"]
        == incremental_report["base_candidates"]
    )


def main() -> int:
    document = _write_report()
    reuse = document["reuse"]
    print(
        f"incremental: cold {document['cold_seconds']}s, "
        f"rediscover {document['rediscover_seconds']}s "
        f"({document['speedup']}x, floor {document['speedup_floor']}x)"
    )
    print(
        f"reuse: {reuse['stage_cache_hits']} stage-cache hit(s), "
        f"{reuse['unit_cache_hits']} per-target unit replay(s), "
        f"invalidated: {', '.join(reuse['invalidated_stages']) or 'none'}"
    )
    print(f"report written to {REPORT_PATH}")
    if document["failures"]:
        for failure in document["failures"]:
            print(f"FAIL: {failure}")
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
