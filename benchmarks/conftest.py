"""Shared fixtures for the benchmark suite.

Each benchmark module regenerates one of the paper's exhibits (Table 1,
Figure 6, Figure 7) and measures the runtime of the piece of the pipeline
it exercises. Rendered exhibits are written to ``benchmarks/results/`` so
``pytest benchmarks/ --benchmark-only`` leaves the regenerated tables and
figures on disk next to the timing numbers.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.datasets.registry import dataset_names, load_dataset
from repro.evaluation.harness import run_dataset

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def dataset_pairs():
    """All seven reconstructed dataset pairs, built once."""
    return {name: load_dataset(name) for name in dataset_names()}


@pytest.fixture(scope="session")
def evaluation_results(dataset_pairs):
    """Both methods run over every benchmark case, once per session."""
    return {
        name: run_dataset(pair) for name, pair in dataset_pairs.items()
    }
