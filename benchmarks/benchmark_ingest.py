"""Ingestion benchmark: live-SQLite round trip vs the authored path.

Not a paper exhibit — this measures :mod:`repro.ingest`, the
live-database front end: every registered dataset scenario is
materialized into an actual SQLite file (schema + generated instance),
read back through ``PRAGMA`` introspection and semantics recovery, and
discovered. The claims under test:

* **fidelity** — for every case, the mappings discovered from the
  ingested scenario are byte-identical (``dump_mapping_set``) to the
  authored-semantics path;
* **clean ingestion** — no dataset schema produces an error-severity
  diagnostic (warnings are allowed and counted);
* **bounded overhead** — the whole ingestion front end (materialize +
  introspect + recover + assemble) costs at most
  :data:`INGEST_OVERHEAD_RATIO` × the discovery time it fronts, so
  starting from a live database never dominates the pipeline.

The report is written to ``BENCH_ingest.json`` at the repo root, both
under pytest and when run directly
(``python benchmarks/benchmark_ingest.py``, the CI smoke job;
``--smoke`` restricts to two dataset pairs for CI latency).
"""

from __future__ import annotations

import json
import pathlib
import sys
import tempfile
import time

import pytest

from repro.datasets.instances import generate_instance
from repro.datasets.registry import dataset_names, load_dataset
from repro.discovery import discover_mappings
from repro.ingest import ingest_pair, materialize_sqlite
from repro.mappings.serialize import dump_mapping_set

REPORT_PATH = pathlib.Path(__file__).parent.parent / "BENCH_ingest.json"

#: Ingestion (materialize + introspect + recover + assemble) may cost at
#: most this multiple of the discovery work it feeds, summed over the
#: sweep. Generous on purpose: the gate exists to catch order-of-
#: magnitude regressions (e.g. re-introspecting per case), not jitter.
INGEST_OVERHEAD_RATIO = 3.0

#: Rows generated per table for the live instances.
ROWS_PER_TABLE = 4

SMOKE_DATASETS = ("DBLP", "Hotel")


def _materialize(semantics, directory: pathlib.Path, name: str) -> str:
    """Write one side's schema + generated instance to a SQLite file."""
    instance = generate_instance(
        semantics.schema, rows_per_table=ROWS_PER_TABLE
    )
    path = str(directory / f"{name}.db")
    connection = materialize_sqlite(
        semantics.schema, path, instance=instance
    )
    connection.close()
    return path


def run_ingest_benchmark(names=None) -> tuple[dict, list[str]]:
    """Sweep the registered datasets; returns ``(report, failures)``."""
    names = list(names) if names is not None else sorted(dataset_names())
    failures: list[str] = []
    datasets = []
    total_cases = identical_cases = 0
    ingest_seconds = discovery_seconds = 0.0
    for name in names:
        pair = load_dataset(name)
        with tempfile.TemporaryDirectory(prefix="repro-ingest-") as tmp:
            directory = pathlib.Path(tmp)
            source_db = _materialize(pair.source, directory, "source")
            target_db = _materialize(pair.target, directory, "target")
            started = time.perf_counter()
            ingested = ingest_pair(
                source_db,
                target_db,
                pair.source.model,
                pair.target.model,
                scenario_id=f"bench-{name}",
                correspondences=pair.cases[0].correspondences,
            )
            pair_ingest = time.perf_counter() - started
            report = ingested.validation()
            errors = [str(d) for d in report.errors]
            if errors:
                failures.append(f"{name}: ingestion errors: {errors}")
            cases = 0
            matched = 0
            pair_discovery = 0.0
            for case in pair.cases:
                started = time.perf_counter()
                live = ingest_pair(
                    source_db,
                    target_db,
                    pair.source.model,
                    pair.target.model,
                    scenario_id=case.case_id,
                    correspondences=case.correspondences,
                )
                pair_ingest += time.perf_counter() - started
                started = time.perf_counter()
                ingested_result = live.scenario.run()
                authored_result = discover_mappings(
                    pair.source, pair.target, case.correspondences
                )
                pair_discovery += time.perf_counter() - started
                cases += 1
                if dump_mapping_set(
                    ingested_result.candidates
                ) == dump_mapping_set(authored_result.candidates):
                    matched += 1
                else:
                    failures.append(
                        f"{name}/{case.case_id}: ingested mappings differ "
                        f"from the authored path"
                    )
        total_cases += cases
        identical_cases += matched
        ingest_seconds += pair_ingest
        discovery_seconds += pair_discovery
        datasets.append(
            {
                "dataset": name,
                "cases": cases,
                "identical": matched,
                "warnings": len(report.warnings),
                "ingest_seconds": round(pair_ingest, 4),
                "discovery_seconds": round(pair_discovery, 4),
            }
        )
    overhead = (
        ingest_seconds / discovery_seconds if discovery_seconds else 0.0
    )
    if overhead > INGEST_OVERHEAD_RATIO:
        failures.append(
            f"ingestion overhead {overhead:.2f}x exceeds the "
            f"{INGEST_OVERHEAD_RATIO}x gate"
        )
    report_document = {
        "datasets": datasets,
        "total_cases": total_cases,
        "identical_cases": identical_cases,
        "ingest_seconds": round(ingest_seconds, 4),
        "discovery_seconds": round(discovery_seconds, 4),
        "overhead_ratio": round(overhead, 4),
        "overhead_gate": INGEST_OVERHEAD_RATIO,
        "rows_per_table": ROWS_PER_TABLE,
    }
    return report_document, failures


def _write_report(names=None) -> dict:
    report, failures = run_ingest_benchmark(names)
    report["failures"] = failures
    document = {"benchmark": "ingest", **report}
    REPORT_PATH.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return document


@pytest.fixture(scope="module")
def ingest_report():
    """One benchmark run per session, persisted like the CI job."""
    return _write_report(SMOKE_DATASETS)


def test_no_failures(ingest_report):
    assert ingest_report["failures"] == []


def test_every_case_byte_identical(ingest_report):
    assert ingest_report["total_cases"] >= 1
    assert (
        ingest_report["identical_cases"] == ingest_report["total_cases"]
    ), ingest_report


def test_overhead_within_gate(ingest_report):
    assert ingest_report["overhead_ratio"] <= INGEST_OVERHEAD_RATIO


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    names = SMOKE_DATASETS if "--smoke" in argv else None
    document = _write_report(names)
    for entry in document["datasets"]:
        print(
            f"{entry['dataset']}: {entry['identical']}/{entry['cases']} "
            f"case(s) byte-identical, {entry['warnings']} warning(s), "
            f"ingest {entry['ingest_seconds']}s, "
            f"discovery {entry['discovery_seconds']}s"
        )
    print(
        f"total: {document['identical_cases']}/{document['total_cases']} "
        f"identical, overhead {document['overhead_ratio']}x "
        f"(gate {document['overhead_gate']}x)"
    )
    print(f"report written to {REPORT_PATH}")
    if document["failures"]:
        for failure in document["failures"]:
            print(f"FAIL: {failure}")
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
