"""Ingestion benchmark: the backend matrix and the incremental gate.

Not a paper exhibit — this measures :mod:`repro.ingest`, the
database front end, across every catalog backend. Each registered
dataset scenario is forward-engineered twice — into an actual SQLite
file and into a Postgres-style SQL dump — read back through the
matching :class:`~repro.ingest.backends.CatalogBackend`, and
discovered. The claims under test:

* **fidelity** — for every case and every backend, the mappings
  discovered from the ingested scenario are byte-identical
  (``dump_mapping_set``) to the authored-semantics path;
* **clean ingestion** — no dataset schema produces an error-severity
  diagnostic on any backend (warnings are allowed and counted);
* **bounded overhead** — per backend, the ingestion front end
  (materialize + introspect + recover + assemble) costs at most
  :data:`INGEST_OVERHEAD_RATIO` × the discovery time it fronts;
* **incremental re-ingestion** — after a catalog-only drift (a unique
  index appears on one table), :func:`~repro.ingest.reingest_pair`
  re-recovers only the drifted table and its FK dependents, and the
  incremental discovery engine replays every stage (the drift never
  enters the recovered semantics), leaving the mapping diff empty.

The report is written to ``BENCH_ingest.json`` at the repo root, both
under pytest and when run directly
(``python benchmarks/benchmark_ingest.py``, the CI smoke jobs;
``--smoke`` restricts to two dataset pairs for CI latency,
``--backend`` restricts the matrix to one backend).
"""

from __future__ import annotations

import json
import pathlib
import sqlite3
import sys
import tempfile
import time

import pytest

from repro.datasets.instances import generate_instance
from repro.datasets.registry import dataset_names, load_dataset
from repro.discovery import discover_mappings
from repro.ingest import (
    ingest_pair,
    materialize_sqlite,
    pgdump_ddl,
    reingest_pair,
)
from repro.mappings.serialize import dump_mapping_set

REPORT_PATH = pathlib.Path(__file__).parent.parent / "BENCH_ingest.json"

#: Per backend, ingestion (materialize + introspect + recover +
#: assemble) may cost at most this multiple of the discovery work it
#: feeds, summed over the sweep. Generous on purpose: the gate exists
#: to catch order-of-magnitude regressions (e.g. re-introspecting per
#: case), not jitter.
INGEST_OVERHEAD_RATIO = 3.0

#: Rows generated per table for the live instances.
ROWS_PER_TABLE = 4

SMOKE_DATASETS = ("DBLP", "Hotel")

BACKENDS = ("sqlite", "pgdump")

#: The incremental gate's scenario: which dataset is drifted, which
#: table gains a unique index, and which dependent re-derives with it.
INCREMENTAL_DATASET = "Hotel"
INCREMENTAL_TABLE = "guest"
#: Composite over the primary key so generated instances always
#: satisfy it — the point is the *catalog* change, not the data.
INCREMENTAL_INDEX = (
    'CREATE UNIQUE INDEX bench_drift ON "guest" ("gid", "gname")'
)


def _materialize(semantics, directory: pathlib.Path, name: str, backend: str):
    """One side's schema + generated instance, in ``backend``'s format."""
    instance = generate_instance(
        semantics.schema, rows_per_table=ROWS_PER_TABLE
    )
    if backend == "sqlite":
        path = str(directory / f"{name}.db")
        materialize_sqlite(
            semantics.schema, path, instance=instance
        ).close()
        return path
    path = directory / f"{name}.sql"
    path.write_text(
        pgdump_ddl(semantics.schema, instance=instance), encoding="utf-8"
    )
    return str(path)


def _sweep_backend(names, backend: str) -> tuple[dict, list[str]]:
    """Run every dataset case through one backend; report + failures."""
    failures: list[str] = []
    datasets = []
    total_cases = identical_cases = 0
    ingest_seconds = discovery_seconds = 0.0
    for name in names:
        pair = load_dataset(name)
        with tempfile.TemporaryDirectory(prefix="repro-ingest-") as tmp:
            directory = pathlib.Path(tmp)
            source_db = _materialize(
                pair.source, directory, "source", backend
            )
            target_db = _materialize(
                pair.target, directory, "target", backend
            )
            started = time.perf_counter()
            ingested = ingest_pair(
                source_db,
                target_db,
                pair.source.model,
                pair.target.model,
                scenario_id=f"bench-{name}-{backend}",
                correspondences=pair.cases[0].correspondences,
                backend=backend,
            )
            pair_ingest = time.perf_counter() - started
            report = ingested.validation()
            errors = [str(d) for d in report.errors]
            if errors:
                failures.append(
                    f"{backend}/{name}: ingestion errors: {errors}"
                )
            cases = 0
            matched = 0
            pair_discovery = 0.0
            for case in pair.cases:
                started = time.perf_counter()
                live = ingest_pair(
                    source_db,
                    target_db,
                    pair.source.model,
                    pair.target.model,
                    scenario_id=case.case_id,
                    correspondences=case.correspondences,
                    backend=backend,
                )
                pair_ingest += time.perf_counter() - started
                started = time.perf_counter()
                ingested_result = live.scenario.run()
                authored_result = discover_mappings(
                    pair.source, pair.target, case.correspondences
                )
                pair_discovery += time.perf_counter() - started
                cases += 1
                if dump_mapping_set(
                    ingested_result.candidates
                ) == dump_mapping_set(authored_result.candidates):
                    matched += 1
                else:
                    failures.append(
                        f"{backend}/{name}/{case.case_id}: ingested "
                        f"mappings differ from the authored path"
                    )
        total_cases += cases
        identical_cases += matched
        ingest_seconds += pair_ingest
        discovery_seconds += pair_discovery
        datasets.append(
            {
                "dataset": name,
                "cases": cases,
                "identical": matched,
                "warnings": len(report.warnings),
                "ingest_seconds": round(pair_ingest, 4),
                "discovery_seconds": round(pair_discovery, 4),
            }
        )
    backend_document = {
        "backend": backend,
        "datasets": datasets,
        "total_cases": total_cases,
        "identical_cases": identical_cases,
        "ingest_seconds": round(ingest_seconds, 4),
        "discovery_seconds": round(discovery_seconds, 4),
    }
    return backend_document, failures


def _incremental_gate() -> tuple[dict, list[str]]:
    """Cold-ingest, drift one table, re-ingest; gate the reuse."""
    failures: list[str] = []
    pair = load_dataset(INCREMENTAL_DATASET)
    with tempfile.TemporaryDirectory(prefix="repro-reingest-") as tmp:
        directory = pathlib.Path(tmp)
        source_db = _materialize(pair.source, directory, "source", "sqlite")
        target_db = _materialize(pair.target, directory, "target", "sqlite")
        cold = ingest_pair(
            source_db,
            target_db,
            pair.source.model,
            pair.target.model,
            scenario_id="bench-incremental",
            correspondences=pair.cases[0].correspondences,
        )
        previous_result = cold.scenario.run()
        connection = sqlite3.connect(source_db)
        connection.execute(INCREMENTAL_INDEX)
        connection.commit()
        connection.close()
        started = time.perf_counter()
        report = reingest_pair(
            cold,
            source_db,
            target_db,
            pair.source.model,
            pair.target.model,
            previous_result=previous_result,
        )
        reingest_time = time.perf_counter() - started
    drift = report.source_drift
    if drift.changed != (INCREMENTAL_TABLE,):
        failures.append(
            f"incremental: expected only {INCREMENTAL_TABLE!r} to "
            f"change, got {list(drift.changed)}"
        )
    recoverable = set(drift.changed) | set(drift.dependents)
    if set(drift.dirty) - recoverable:
        failures.append(
            f"incremental: re-recovered beyond the drifted table and "
            f"its dependents: {list(drift.dirty)}"
        )
    if report.target_drift.dirty:
        failures.append(
            f"incremental: the untouched side re-recovered "
            f"{list(report.target_drift.dirty)}"
        )
    rediscovery = report.rediscovery
    unchanged = len(rediscovery.unchanged_stages)
    invalidated = len(rediscovery.invalidated_stages)
    # A unique index never enters the recovered semantics, so every
    # stage must replay — reuse at least matches the unchanged stages.
    if not rediscovery.full_reuse:
        failures.append(
            f"incremental: catalog-only drift invalidated "
            f"{invalidated} discovery stage(s)"
        )
    if not report.mapping_diff.is_empty:
        failures.append(
            f"incremental: mappings churned on a catalog-only drift: "
            f"{report.mapping_diff.summary()}"
        )
    document = {
        "dataset": INCREMENTAL_DATASET,
        "drifted_table": INCREMENTAL_TABLE,
        "changed": list(drift.changed),
        "dependents": list(drift.dependents),
        "re_recovered": list(drift.dirty),
        "reused_tables": report.reused_tables,
        "recovered_tables": report.recovered_tables,
        "stages_unchanged": unchanged,
        "stages_invalidated": invalidated,
        "full_stage_reuse": rediscovery.full_reuse,
        "mapping_churn": report.mapping_diff.summary(),
        "reingest_seconds": round(reingest_time, 4),
    }
    return document, failures


def run_ingest_benchmark(
    names=None, backends=BACKENDS
) -> tuple[dict, list[str]]:
    """Sweep datasets × backends; returns ``(report, failures)``."""
    names = list(names) if names is not None else sorted(dataset_names())
    failures: list[str] = []
    matrix = []
    for backend in backends:
        backend_document, backend_failures = _sweep_backend(names, backend)
        matrix.append(backend_document)
        failures.extend(backend_failures)
    # Later sweeps re-discover the same scenarios against warm caches,
    # so each backend's ingest cost is gated against the *slowest*
    # (cold) discovery pass — the shared baseline every backend fronts.
    baseline = max(b["discovery_seconds"] for b in matrix)
    for backend_document in matrix:
        overhead = (
            backend_document["ingest_seconds"] / baseline
            if baseline
            else 0.0
        )
        backend_document["overhead_ratio"] = round(overhead, 4)
        if overhead > INGEST_OVERHEAD_RATIO:
            failures.append(
                f"{backend_document['backend']}: ingestion overhead "
                f"{overhead:.2f}x exceeds the "
                f"{INGEST_OVERHEAD_RATIO}x gate"
            )
    incremental, incremental_failures = _incremental_gate()
    failures.extend(incremental_failures)
    report_document = {
        "backends": matrix,
        "incremental": incremental,
        "total_cases": sum(b["total_cases"] for b in matrix),
        "identical_cases": sum(b["identical_cases"] for b in matrix),
        "overhead_gate": INGEST_OVERHEAD_RATIO,
        "rows_per_table": ROWS_PER_TABLE,
    }
    return report_document, failures


def _write_report(names=None, backends=BACKENDS) -> dict:
    report, failures = run_ingest_benchmark(names, backends)
    report["failures"] = failures
    document = {"benchmark": "ingest", **report}
    REPORT_PATH.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return document


@pytest.fixture(scope="module")
def ingest_report():
    """One benchmark run per session, persisted like the CI job."""
    return _write_report(SMOKE_DATASETS)


def test_no_failures(ingest_report):
    assert ingest_report["failures"] == []


def test_every_case_byte_identical_per_backend(ingest_report):
    for backend in ingest_report["backends"]:
        assert backend["total_cases"] >= 1, backend
        assert (
            backend["identical_cases"] == backend["total_cases"]
        ), backend


def test_overhead_within_gate_per_backend(ingest_report):
    for backend in ingest_report["backends"]:
        assert (
            backend["overhead_ratio"] <= INGEST_OVERHEAD_RATIO
        ), backend


def test_incremental_reuse_gated(ingest_report):
    incremental = ingest_report["incremental"]
    assert incremental["changed"] == [INCREMENTAL_TABLE]
    assert incremental["full_stage_reuse"] is True
    assert incremental["stages_invalidated"] == 0
    assert incremental["reused_tables"] >= incremental["recovered_tables"]


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    names = SMOKE_DATASETS if "--smoke" in argv else None
    backends = BACKENDS
    if "--backend" in argv:
        backends = (argv[argv.index("--backend") + 1],)
    document = _write_report(names, backends)
    for backend in document["backends"]:
        for entry in backend["datasets"]:
            print(
                f"{backend['backend']}/{entry['dataset']}: "
                f"{entry['identical']}/{entry['cases']} case(s) "
                f"byte-identical, {entry['warnings']} warning(s), "
                f"ingest {entry['ingest_seconds']}s, "
                f"discovery {entry['discovery_seconds']}s"
            )
        print(
            f"{backend['backend']}: "
            f"{backend['identical_cases']}/{backend['total_cases']} "
            f"identical, overhead {backend['overhead_ratio']}x "
            f"(gate {document['overhead_gate']}x)"
        )
    incremental = document["incremental"]
    print(
        f"incremental: {incremental['dataset']} drifted on "
        f"{incremental['drifted_table']!r}; re-recovered "
        f"{incremental['re_recovered']} "
        f"({incremental['reused_tables']} table(s) reused), "
        f"{incremental['stages_unchanged']} stage(s) replayed, "
        f"churn: {incremental['mapping_churn']}"
    )
    print(f"report written to {REPORT_PATH}")
    if document["failures"]:
        for failure in document["failures"]:
            print(f"FAIL: {failure}")
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
