"""Evolution benchmark: composition of per-hop mappings vs direct discovery.

Not a paper exhibit — this validates the mapping lifecycle algebra
(:mod:`repro.mappings.algebra`) on synthetic schema-evolution chains
(:func:`repro.datasets.synthetic.evolution_chain`): every version in a
chain ``V0 → V1 → ... → Vn`` exposes the same tables, each hop's mapping
is discovered independently (incrementally, via
:func:`repro.discovery.rediscover`, reporting churn between hops), and
the per-hop mappings are composed into a direct ``V0 → Vn`` set. The
claims under test:

* **semantic fidelity** — for every chain, the composed mapping is
  logically equivalent to discovering ``V0 → Vn`` directly, *and* data
  exchanged through the composed tgds has the same certain answers as
  data exchanged through the direct ones (over a generated instance);
* **dedup safety** — semantic deduplication of the unpruned composed
  set never drops a candidate that is not logically equivalent to a
  kept one (the correctness contract of
  :func:`repro.mappings.expression.deduplicate_candidates`);
* **zero churn** — re-discovering a structurally identical hop reports
  an empty semantic diff (:func:`repro.mappings.diff.diff_candidates`).

The report is written to ``BENCH_evolution.json`` at the repo root, both
under pytest and when run directly
(``python benchmarks/benchmark_evolution.py``, the CI smoke job;
``--smoke`` restricts the sweep for CI latency).
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

import pytest

from repro.datasets.instances import generate_instance
from repro.datasets.synthetic import evolution_chain
from repro.discovery import Scenario, rediscover
from repro.mappings import certain_rows, compose, equivalent, exchange
from repro.mappings.diff import diff_candidates
from repro.mappings.expression import deduplicate_candidates

REPORT_PATH = pathlib.Path(__file__).parent.parent / "BENCH_evolution.json"

#: Rows generated per table for the certain-answer equivalence check.
ROWS_PER_TABLE = 3

#: The full sweep: (family, length, span, hops). Spans stay small so
#: per-hop discovery is cheap; ≥10 chains across both evolution
#: families, including 3-hop chains (compose folds left-to-right).
SWEEP = (
    ("chain", 2, 2, 2),
    ("chain", 3, 2, 2),
    ("chain", 3, 3, 2),
    ("chain", 4, 3, 2),
    ("chain", 5, 4, 2),
    ("chain", 2, 2, 3),
    ("isa_fan", 2, 2, 2),
    ("isa_fan", 3, 2, 2),
    ("isa_fan", 3, 3, 2),
    ("isa_fan", 4, 3, 2),
    ("isa_fan", 2, 2, 3),
)

SMOKE_SWEEP = (
    ("chain", 3, 2, 2),
    ("chain", 2, 2, 3),
    ("isa_fan", 2, 2, 2),
    ("isa_fan", 3, 2, 2),
)


def _certain_answers_equal(chain, composed, direct) -> bool:
    instance = generate_instance(
        chain.versions[0].schema, rows_per_table=ROWS_PER_TABLE
    )
    final_schema = chain.versions[-1].schema
    via_composed = exchange(composed.to_tgds("C"), instance, final_schema)
    via_direct = exchange(
        direct.mappings.to_tgds("D"), instance, final_schema
    )
    return all(
        certain_rows(via_composed, table) == certain_rows(via_direct, table)
        for table in final_schema.tables
    )


def _dedup_is_safe(raw_candidates) -> bool:
    """Every candidate dedup drops must be equivalent to a kept one."""
    kept = deduplicate_candidates(list(raw_candidates))
    for candidate in raw_candidates:
        if candidate in kept:
            continue
        if not any(
            set(candidate.covered) == set(survivor.covered)
            and equivalent(survivor, candidate)
            for survivor in kept
        ):
            return False
    return True


def run_evolution_benchmark(sweep=SWEEP) -> tuple[dict, list[str]]:
    """Run the chain sweep; returns ``(report, failures)``."""
    failures: list[str] = []
    chains = []
    for family, length, span, hops in sweep:
        chain = evolution_chain(family, length, hops=hops, span=span)
        previous = None
        hop_results = []
        churn_clean = True
        discovery_seconds = 0.0
        reuse_hits = 0
        for index in range(chain.hops):
            source, target, correspondences = chain.hop(index)
            scenario = Scenario.create(
                f"{chain.chain_id}/hop{index}",
                source,
                target,
                correspondences,
            )
            started = time.perf_counter()
            outcome = rediscover(previous, scenario)
            discovery_seconds += time.perf_counter() - started
            reuse_hits += outcome.report()["stage_cache_hits"]
            result = outcome.result
            if previous is not None:
                diff = diff_candidates(
                    previous.candidates, result.candidates
                )
                if not diff.is_empty:
                    churn_clean = False
                    failures.append(
                        f"{chain.chain_id}: hop {index} churned against "
                        f"hop {index - 1}: {diff.summary()}"
                    )
            hop_results.append(result)
            previous = result

        started = time.perf_counter()
        raw = hop_results[0].mappings
        for result in hop_results[1:]:
            raw = compose(raw, result.mappings, prune=False)
        composed = compose(
            hop_results[0].mappings, hop_results[1].mappings
        )
        for result in hop_results[2:]:
            composed = compose(composed, result.mappings)
        compose_seconds = time.perf_counter() - started

        started = time.perf_counter()
        source, target, correspondences = chain.direct()
        direct = Scenario.create(
            f"{chain.chain_id}/direct", source, target, correspondences
        ).run()
        discovery_seconds += time.perf_counter() - started

        equivalent_to_direct = bool(composed) and equivalent(
            composed, direct.candidates
        )
        if not equivalent_to_direct:
            failures.append(
                f"{chain.chain_id}: composed mapping is not equivalent "
                f"to direct discovery "
                f"({len(composed)} vs {len(direct.candidates)} "
                f"candidate(s))"
            )
        certain_equal = _certain_answers_equal(chain, composed, direct)
        if not certain_equal:
            failures.append(
                f"{chain.chain_id}: certain answers via the composed "
                f"mapping differ from the direct ones"
            )
        dedup_safe = _dedup_is_safe(list(raw))
        if not dedup_safe:
            failures.append(
                f"{chain.chain_id}: semantic dedup dropped a "
                f"non-equivalent composed candidate"
            )
        chains.append(
            {
                "chain": chain.chain_id,
                "family": chain.family,
                "hops": chain.hops,
                "hop_candidates": [len(r.candidates) for r in hop_results],
                "raw_composed": len(raw),
                "composed": len(composed),
                "direct": len(direct.candidates),
                "equivalent_to_direct": equivalent_to_direct,
                "certain_answers_equal": certain_equal,
                "dedup_safe": dedup_safe,
                "churn_free": churn_clean,
                "stage_cache_hits": reuse_hits,
                "discovery_seconds": round(discovery_seconds, 4),
                "compose_seconds": round(compose_seconds, 4),
            }
        )
    report = {
        "chains": chains,
        "total_chains": len(chains),
        "equivalent_chains": sum(
            1 for c in chains if c["equivalent_to_direct"]
        ),
        "certain_equal_chains": sum(
            1 for c in chains if c["certain_answers_equal"]
        ),
        "dedup_safe_chains": sum(1 for c in chains if c["dedup_safe"]),
        "rows_per_table": ROWS_PER_TABLE,
    }
    return report, failures


def _write_report(sweep=SWEEP) -> dict:
    report, failures = run_evolution_benchmark(sweep)
    report["failures"] = failures
    document = {"benchmark": "evolution", **report}
    REPORT_PATH.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return document


@pytest.fixture(scope="module")
def evolution_report():
    """One benchmark run per session, persisted like the CI job."""
    return _write_report(SMOKE_SWEEP)


def test_no_failures(evolution_report):
    assert evolution_report["failures"] == []


def test_every_chain_composes_to_direct(evolution_report):
    assert evolution_report["total_chains"] >= 1
    assert (
        evolution_report["equivalent_chains"]
        == evolution_report["total_chains"]
    ), evolution_report


def test_certain_answers_preserved(evolution_report):
    assert (
        evolution_report["certain_equal_chains"]
        == evolution_report["total_chains"]
    ), evolution_report


def test_dedup_never_unsafe(evolution_report):
    assert (
        evolution_report["dedup_safe_chains"]
        == evolution_report["total_chains"]
    ), evolution_report


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    sweep = SMOKE_SWEEP if "--smoke" in argv else SWEEP
    document = _write_report(sweep)
    for entry in document["chains"]:
        print(
            f"{entry['chain']}: hops {entry['hop_candidates']} → "
            f"composed {entry['composed']} (raw {entry['raw_composed']}), "
            f"direct {entry['direct']}; "
            f"equivalent={entry['equivalent_to_direct']} "
            f"certain={entry['certain_answers_equal']} "
            f"dedup_safe={entry['dedup_safe']} "
            f"churn_free={entry['churn_free']}; "
            f"discovery {entry['discovery_seconds']}s, "
            f"compose {entry['compose_seconds']}s"
        )
    print(
        f"total: {document['equivalent_chains']}/"
        f"{document['total_chains']} equivalent, "
        f"{document['certain_equal_chains']} certain-equal, "
        f"{document['dedup_safe_chains']} dedup-safe"
    )
    print(f"report written to {REPORT_PATH}")
    if document["failures"]:
        for failure in document["failures"]:
            print(f"FAIL: {failure}")
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
