"""Scalability sweep: discovery time vs conceptual-model size.

Not a paper exhibit, but the natural question behind Table 1's timing
column: how does mapping generation scale as the CM graph grows? The
sweep builds chain-shaped models of increasing size (entity chains
joined by functional relationships, with the marked classes at the two
ends — the worst case for the Steiner search) and times discovery.
"""

from __future__ import annotations

import pytest

from repro.cm import ConceptualModel
from repro.correspondences import CorrespondenceSet
from repro.discovery import Scenario, SemanticMapper, discover_many
from repro.semantics import design_schema


def chain_model(name: str, length: int) -> ConceptualModel:
    """``C0 →f0→ C1 →f1→ ... →f(n-1)→ Cn`` plus one pendant per class."""
    cm = ConceptualModel(name)
    for index in range(length + 1):
        cm.add_class(
            f"C{index}", attributes=[f"k{index}", f"a{index}"], key=[f"k{index}"]
        )
        cm.add_class(f"P{index}", attributes=[f"pk{index}"], key=[f"pk{index}"])
        cm.add_relationship(
            f"pend{index}", f"C{index}", f"P{index}", "0..1", "0..*"
        )
    for index in range(length):
        cm.add_relationship(
            f"f{index}", f"C{index}", f"C{index + 1}", "1..1", "0..*"
        )
    return cm


def build_scenario(length: int):
    source = design_schema(chain_model("chain_src", length), "src")
    target = design_schema(chain_model("chain_tgt", length), "tgt")
    correspondences = CorrespondenceSet.parse(
        [
            "c0.a0 <-> c0.a0",
            f"c{length}.a{length} <-> c{length}.a{length}",
        ]
    )
    return source.semantics, target.semantics, correspondences


@pytest.mark.parametrize("length", [2, 4, 8, 12])
def test_chain_discovery_scales(benchmark, length):
    source, target, correspondences = build_scenario(length)

    def run():
        return SemanticMapper(source, target, correspondences).discover()

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(result) >= 1
    # The end-to-end chain join must be discovered at every size.
    best = result.best()
    tables = {atom.bare_predicate for atom in best.source_query.body}
    assert "c0" in tables and f"c{length}" in tables


@pytest.mark.parametrize("workers", [1, 2])
def test_batch_chain_discovery(benchmark, workers):
    """Batched chains through ``discover_many``; parallel must agree.

    Multiple chain sizes make one batch, timed at each worker count; the
    best mapping per scenario must be identical to a serial baseline.
    """
    scenarios = []
    for length in [2, 3, 4]:
        source, target, correspondences = build_scenario(length)
        scenarios.append(
            Scenario.create(f"chain-{length}", source, target, correspondences)
        )
    baseline = discover_many(scenarios, workers=1)

    def run():
        return discover_many(scenarios, workers=workers)

    batch = benchmark.pedantic(run, rounds=2, iterations=1)
    assert len(batch) == len(scenarios)
    for (_, base_result), (_, result) in zip(baseline.results, batch.results):
        assert result.best().to_tgd("M1") == base_result.best().to_tgd("M1")
