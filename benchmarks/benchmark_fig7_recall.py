"""Figure 7 — Average Recall, semantic vs RIC-based.

Regenerates the per-domain average-recall series and asserts the paper's
headline (semantic recall 1.0 on every domain); the benchmark times the
recall-critical composition discovery of the bookstore-style case.
"""

from __future__ import annotations

from repro.datasets.registry import load_dataset
from repro.evaluation.harness import RIC, SEMANTIC, run_case
from repro.evaluation.report import render_figure7


def test_figure7_shape_and_render(evaluation_results, results_dir, benchmark):
    results = list(evaluation_results.values())
    for result in results:
        assert result.average_recall(SEMANTIC) == 1.0, result.pair.name
        assert result.average_recall(SEMANTIC) >= result.average_recall(RIC)
    text = benchmark(render_figure7, results)
    (results_dir / "figure7_recall.txt").write_text(text + "\n")
    assert "Average Recall" in text


def test_composition_case_runtime(benchmark, dataset_pairs):
    """Time the semantic method on a lossy-composition case RIC misses."""
    pair = dataset_pairs["3Sdb"]
    composition_case = pair.cases[2]  # sdb-sample-gene

    result = benchmark.pedantic(run_case, args=(pair, composition_case, SEMANTIC), rounds=3, iterations=1)
    assert result.measures.recall == 1.0

    ric_result = run_case(pair, composition_case, RIC)
    assert ric_result.measures.recall == 0.0
