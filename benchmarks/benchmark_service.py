"""Service benchmark: throughput and latency under concurrent clients.

Not a paper exhibit — this measures the serving layer itself: a real
:class:`~repro.service.server.ReproServer` (N workers) takes concurrent
``POST /discover`` traffic from M client threads cycling through the
paper's registered dataset cases, first cold (every scenario computed
once) and then warm (repeat traffic served from the content-addressed
result cache). The run is persisted to ``BENCH_service.json`` at the
repo root: throughput (requests/s), p50/p95 request latency, and the
cache hit rate at the measured worker × client configuration.
"""

from __future__ import annotations

import json
import pathlib
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.service.client import ServiceClient
from repro.service.server import ReproServer, ServiceConfig

REPORT_PATH = pathlib.Path(__file__).parent.parent / "BENCH_service.json"

WORKERS = 2
CLIENTS = 8
ROUNDS_PER_CLIENT = 5  # each client sends len(CASES) * ROUNDS requests

#: One case per registered dataset family used in the load mix.
CASES = [
    {"dataset": "DBLP", "case": "dblp-article-in-journal"},
    {"dataset": "DBLP", "case": "dblp-book-publisher"},
    {"dataset": "Mondial", "case": "mondial-city-in-country"},
    {"dataset": "Amalgam", "case": "amalgam-author-of-article"},
    {"dataset": "Hotel", "case": "hotel-room-of-hotel"},
    {"dataset": "UT", "case": "ut-professor-teaches-course"},
    {"dataset": "Network", "case": "network-interface-of-device"},
]


def _quantile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def _drive_load(
    client: ServiceClient, requests: list[dict]
) -> tuple[list[float], list[int], int]:
    """Send ``requests`` on one client thread; returns latencies/statuses."""
    latencies: list[float] = []
    statuses: list[int] = []
    cached = 0
    for spec in requests:
        started = time.perf_counter()
        status, payload = client.request(
            "POST", "/discover", {"scenario": spec}
        )
        latencies.append(time.perf_counter() - started)
        statuses.append(status)
        if status == 200 and payload.get("cached"):
            cached += 1
    return latencies, statuses, cached


def _run_phase(
    base_url: str, clients: int, rounds: int
) -> tuple[list[float], list[int], int, float]:
    """One load phase: every client cycles the case mix ``rounds`` times."""
    per_client = [
        [CASES[(start + i) % len(CASES)] for i in range(len(CASES) * rounds)]
        for start in range(clients)
    ]
    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=clients) as pool:
        outcomes = list(
            pool.map(
                lambda requests: _drive_load(
                    ServiceClient(base_url), requests
                ),
                per_client,
            )
        )
    elapsed = time.perf_counter() - started
    latencies = [l for lats, _, _ in outcomes for l in lats]
    statuses = [s for _, stats, _ in outcomes for s in stats]
    cached = sum(c for _, _, c in outcomes)
    return latencies, statuses, cached, elapsed


@pytest.fixture(scope="module")
def service_report():
    """One benchmarked service run per session, persisted to the repo root."""
    config = ServiceConfig(
        workers=WORKERS, queue_capacity=max(64, CLIENTS * len(CASES))
    )
    with ReproServer(config) as server:
        client = ServiceClient(server.url)

        # Cold phase: one pass over the mix from a single client so the
        # cold per-scenario cost is measured without queueing noise.
        cold_latencies, cold_statuses, _, cold_elapsed = _run_phase(
            server.url, clients=1, rounds=1
        )

        # Warm phase: the full concurrent load, repeat-heavy by design.
        latencies, statuses, cached, elapsed = _run_phase(
            server.url, clients=CLIENTS, rounds=ROUNDS_PER_CLIENT
        )

        metrics = client.metrics_values()
        health = client.health()

    total = len(latencies)
    report = {
        "config": {
            "workers": WORKERS,
            "clients": CLIENTS,
            "distinct_scenarios": len(CASES),
            "requests_per_client": len(CASES) * ROUNDS_PER_CLIENT,
        },
        "cold": {
            "requests": len(cold_latencies),
            "wall_seconds": round(cold_elapsed, 4),
            "p50_seconds": round(_quantile(cold_latencies, 0.5), 6),
            "p95_seconds": round(_quantile(cold_latencies, 0.95), 6),
            "ok": sum(1 for s in cold_statuses if s == 200),
        },
        "warm": {
            "requests": total,
            "wall_seconds": round(elapsed, 4),
            "throughput_rps": round(total / elapsed, 2),
            "p50_seconds": round(_quantile(latencies, 0.5), 6),
            "p95_seconds": round(_quantile(latencies, 0.95), 6),
            "ok": sum(1 for s in statuses if s == 200),
            "cached_responses": cached,
            "cache_hit_rate": round(cached / total, 4),
        },
        "service_counters": {
            name: metrics[name]
            for name in sorted(metrics)
            if name.startswith("repro_service_")
            and "{" not in name  # unlabelled series only
        },
        "final_health": {
            "queue_depth": health["queue_depth"],
            "cache_entries": health["cache"]["entries"],
        },
    }
    # Merge-preserve: benchmark_load.py owns other sections of the same
    # report file (disk_warm_batch / load / load_gates).
    existing: dict = {}
    if REPORT_PATH.exists():
        try:
            existing = json.loads(REPORT_PATH.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            existing = {}
    existing.update(report)
    REPORT_PATH.write_text(
        json.dumps(existing, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return report


def test_report_written(service_report):
    on_disk = json.loads(REPORT_PATH.read_text(encoding="utf-8"))
    assert on_disk["config"]["workers"] == WORKERS
    assert on_disk["warm"]["throughput_rps"] > 0
    assert on_disk["warm"]["p50_seconds"] <= on_disk["warm"]["p95_seconds"]


def test_every_request_succeeded(service_report):
    assert service_report["cold"]["ok"] == service_report["cold"]["requests"]
    assert service_report["warm"]["ok"] == service_report["warm"]["requests"]


def test_repeat_traffic_hits_the_cache(service_report):
    # After the cold pass, every warm-phase scenario is a repeat: the
    # hit rate must be overwhelming, and the number of distinct
    # discovery runs bounded by the distinct-scenario count.
    assert service_report["warm"]["cache_hit_rate"] > 0.9
    invocations = service_report["service_counters"][
        "repro_service_discovery_invocations_total"
    ]
    assert invocations <= len(CASES)


def test_cache_keeps_latency_flat(service_report):
    # Warm p95 must beat the cold p95: cached responses skip discovery.
    assert (
        service_report["warm"]["p95_seconds"]
        <= service_report["cold"]["p95_seconds"] * 2
    )
