"""Load benchmark: persistent-cache cold starts + pre-fork throughput.

Not a paper exhibit — this gates the production posture of PR 7:

**Disk-warm cold start.** A fresh process runs every registered dataset
case (the full 34-scenario batch) against a persistent cache directory
(``DiscoveryOptions(cache_dir=...)``), twice: once with the directory
empty (cold — every stage computed and written through) and once in a
*new* process with the directory populated (disk-warm — every run is a
full hit on its ``rank`` artifact). Each run happens in a subprocess
(``--child-batch``) because a genuine cold start is the claim: no
in-memory cache, no warm indexes, only the directory survives. Gates:
the two runs' candidate output must be byte-identical (same serialized
candidates, case by case), and the disk-warm batch must be at least
:data:`DISK_WARM_SPEEDUP_FLOOR` times faster.

**Pre-fork service under load.** A single-process server and a pre-fork
pool (``repro.service.pool``), each with its own empty cache directory,
take the identical workload: ``--clients`` concurrent client threads
(1000 in the full run) sending a case mix in which a configurable
fraction (``--cold-fraction``) of requests carries a never-seen
``max_path_edges`` value — a *forced* cold miss, since that option is
part of the scenario and stage fingerprints. Gates: every request
returns 200, both servers exit cleanly on SIGINT, and the pool sustains
at least :data:`POOL_SINGLE_CORE_FLOOR` x the single-process throughput
(strictly *more* when the machine has >= 2 cores — on a single core the
pool cannot win on CPU, it must merely not collapse under the extra
process scheduling).

Results merge into ``BENCH_service.json`` under ``disk_warm_batch`` and
``load`` (preserving ``benchmark_service.py``'s sections). ``--smoke``
shrinks the client count and relaxes the timing gates for CI; the
correctness gates (byte-identity, all-200, clean shutdown) never relax.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor

REPO_ROOT = pathlib.Path(__file__).parent.parent
REPORT_PATH = REPO_ROOT / "BENCH_service.json"

#: Disk-warm batch must beat the cold batch by at least this factor
#: (full run; the smoke gate only requires it not to be slower).
DISK_WARM_SPEEDUP_FLOOR = 3.0

#: On a single-core machine the pool cannot beat one process on CPU;
#: it must still sustain this fraction of the single-process rate.
POOL_SINGLE_CORE_FLOOR = 0.7

#: The case mix (one case per dataset family, as in benchmark_service).
CASES = [
    {"dataset": "DBLP", "case": "dblp-article-in-journal"},
    {"dataset": "DBLP", "case": "dblp-book-publisher"},
    {"dataset": "Mondial", "case": "mondial-city-in-country"},
    {"dataset": "Amalgam", "case": "amalgam-author-of-article"},
    {"dataset": "Hotel", "case": "hotel-room-of-hotel"},
    {"dataset": "UT", "case": "ut-professor-teaches-course"},
    {"dataset": "Network", "case": "network-interface-of-device"},
]

#: ``max_path_edges`` values start here for forced cold misses (must
#: clear every default so the option lands in the scenario fingerprint).
COLD_EDGE_BASE = 10


# ---------------------------------------------------------------------------
# Part 1: disk-warm cold-start batch (the --child-batch subprocess body)
# ---------------------------------------------------------------------------
def run_child_batch(cache_dir: str) -> int:
    """Run every registered dataset case once against ``cache_dir``.

    Prints a JSON document with the timed discovery wall clock and a
    digest of the serialized candidates — the parent compares digests
    across the cold and disk-warm runs for byte-identity.
    """
    from repro.datasets.registry import dataset_names, load_dataset
    from repro.discovery.mapper import SemanticMapper
    from repro.discovery.options import DiscoveryOptions
    from repro.mappings.serialize import candidate_to_dict

    options = DiscoveryOptions(cache_dir=cache_dir)
    pairs = [load_dataset(name) for name in dataset_names()]
    outputs: dict[str, list] = {}
    scenarios = 0
    started = time.perf_counter()
    for pair in pairs:
        for case in pair.cases:
            result = SemanticMapper(
                pair.source,
                pair.target,
                case.correspondences,
                options=options,
            ).discover()
            outputs[f"{pair.name}/{case.case_id}"] = [
                candidate_to_dict(c) for c in result.candidates
            ]
            scenarios += 1
    elapsed = time.perf_counter() - started
    digest = hashlib.sha256(
        json.dumps(outputs, sort_keys=True).encode("utf-8")
    ).hexdigest()
    print(
        json.dumps(
            {
                "elapsed_seconds": round(elapsed, 4),
                "digest": digest,
                "scenarios": scenarios,
            }
        )
    )
    return 0


def _child_env() -> dict[str, str]:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    env.pop("REPRO_CACHE_DIR", None)
    return env


def measure_disk_warm(smoke: bool) -> tuple[dict, list[str]]:
    """Cold vs disk-warm 34-scenario batch in fresh subprocesses."""
    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache:

        def batch() -> dict:
            proc = subprocess.run(
                [
                    sys.executable,
                    str(pathlib.Path(__file__).resolve()),
                    "--child-batch",
                    "--cache-dir",
                    cache,
                ],
                capture_output=True,
                text=True,
                env=_child_env(),
                timeout=1800,
            )
            if proc.returncode != 0:
                raise RuntimeError(
                    f"child batch failed ({proc.returncode}): "
                    f"{proc.stderr[-2000:]}"
                )
            return json.loads(proc.stdout.strip().splitlines()[-1])

        cold = batch()
        warm = batch()
    speedup = cold["elapsed_seconds"] / max(warm["elapsed_seconds"], 1e-9)
    identical = cold["digest"] == warm["digest"]
    if not identical:
        failures.append(
            "disk-warm batch output differs from cold "
            f"({cold['digest'][:12]} vs {warm['digest'][:12]})"
        )
    floor = 1.0 if smoke else DISK_WARM_SPEEDUP_FLOOR
    if speedup < floor:
        failures.append(
            f"disk-warm speedup {speedup:.2f}x below the {floor}x floor"
        )
    report = {
        "scenarios": cold["scenarios"],
        "cold_seconds": cold["elapsed_seconds"],
        "disk_warm_seconds": warm["elapsed_seconds"],
        "speedup": round(speedup, 2),
        "speedup_floor": floor,
        "byte_identical": identical,
    }
    return report, failures


# ---------------------------------------------------------------------------
# Part 2: concurrent load against single-process and pre-fork servers
# ---------------------------------------------------------------------------
def _build_workload(
    clients: int, per_client: int, cold_fraction: float
) -> list[list[dict]]:
    """Identical request lists for both servers, cold misses included.

    A "cold" request swaps in a globally unique ``max_path_edges`` —
    part of the scenario and stage fingerprints, so neither the result
    cache nor the stage cache can have seen it: the server must run the
    discovery pipeline for real.
    """
    period = int(round(1 / cold_fraction)) if cold_fraction > 0 else 0
    workload: list[list[dict]] = []
    serial = 0
    for client in range(clients):
        requests: list[dict] = []
        for i in range(per_client):
            spec = dict(CASES[(client + i) % len(CASES)])
            if period and serial % period == 0:
                spec["options"] = {
                    "max_path_edges": COLD_EDGE_BASE + serial
                }
            serial += 1
            requests.append(spec)
        workload.append(requests)
    return workload


def _drive(url: str, requests: list[dict]) -> list[tuple[float, int]]:
    from repro.service.client import ServiceClient

    client = ServiceClient(url)
    out: list[tuple[float, int]] = []
    for spec in requests:
        started = time.perf_counter()
        try:
            status, _ = client.request(
                "POST", "/discover", {"scenario": spec}
            )
        except Exception:
            status = 0
        out.append((time.perf_counter() - started, status))
    return out


def _quantile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def _sum_series(metrics: dict[str, float], name: str) -> float:
    """Sum one metric across label sets (pool workers carry labels)."""
    total = 0.0
    for series, value in metrics.items():
        base = series.split("{", 1)[0]
        if base == name:
            total += value
    return total


def _start_server(processes: int, cache_dir: str, queue: int):
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--processes",
            str(processes),
            "--workers",
            "2",
            "--queue-size",
            str(queue),
            "--cache-dir",
            cache_dir,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=_child_env(),
    )
    banner = proc.stdout.readline()
    if "listening on " not in banner:
        proc.kill()
        raise RuntimeError(f"server failed to start: {banner!r}")
    url = banner.split("listening on ", 1)[1].split(" ", 1)[0]
    return proc, url


def _run_load_phase(
    processes: int,
    workload: list[list[dict]],
    cache_dir: str,
) -> dict:
    """One server, the whole workload, a metrics scrape, clean SIGINT."""
    from repro.service.client import ServiceClient

    total_requests = sum(len(reqs) for reqs in workload)
    proc, url = _start_server(
        processes, cache_dir, queue=max(64, total_requests)
    )
    try:
        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=len(workload)) as pool:
            outcomes = list(
                pool.map(lambda reqs: _drive(url, reqs), workload)
            )
        elapsed = time.perf_counter() - started
        # Scrape twice with a pause: in pool mode each worker also
        # publishes a periodic snapshot, so the second scrape sees
        # every sibling's post-load numbers.
        client = ServiceClient(url)
        client.metrics_text()
        if processes > 1:
            time.sleep(1.5)
        metrics = client.metrics_values()
    finally:
        proc.send_signal(signal.SIGINT)
        try:
            exit_code = proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            exit_code = -9
    latencies = [lat for out in outcomes for lat, _ in out]
    statuses = [st for out in outcomes for _, st in out]
    ok = sum(1 for st in statuses if st == 200)
    hits = _sum_series(metrics, "repro_service_cache_hits_total")
    misses = _sum_series(metrics, "repro_service_cache_misses_total")
    observed = hits + misses
    return {
        "processes": processes,
        "clients": len(workload),
        "requests": total_requests,
        "ok": ok,
        "wall_seconds": round(elapsed, 4),
        "throughput_rps": round(total_requests / elapsed, 2),
        "p50_seconds": round(_quantile(latencies, 0.5), 6),
        "p95_seconds": round(_quantile(latencies, 0.95), 6),
        "cache_hit_rate": round(hits / observed, 4) if observed else None,
        "discovery_invocations": _sum_series(
            metrics, "repro_service_discovery_invocations_total"
        ),
        "clean_exit": exit_code == 0,
    }


def measure_load(
    clients: int, per_client: int, cold_fraction: float, processes: int
) -> tuple[dict, list[str]]:
    failures: list[str] = []
    workload = _build_workload(clients, per_client, cold_fraction)
    phases: dict[str, dict] = {}
    with tempfile.TemporaryDirectory(prefix="repro-bench-load-") as root:
        for label, count in (("single", 1), ("pool", processes)):
            cache_dir = os.path.join(root, label)
            phases[label] = _run_load_phase(count, workload, cache_dir)
    for label, phase in phases.items():
        if phase["ok"] != phase["requests"]:
            failures.append(
                f"{label}: {phase['requests'] - phase['ok']} of "
                f"{phase['requests']} requests failed"
            )
        if not phase["clean_exit"]:
            failures.append(f"{label}: server did not exit cleanly")
    single_rps = phases["single"]["throughput_rps"]
    pool_rps = phases["pool"]["throughput_rps"]
    cores = os.cpu_count() or 1
    if cores >= 2:
        gate, floor = pool_rps > single_rps, single_rps
        description = "pool > single (multi-core)"
    else:
        floor = POOL_SINGLE_CORE_FLOOR * single_rps
        gate = pool_rps >= floor
        description = (
            f"pool >= {POOL_SINGLE_CORE_FLOOR} x single (single core: "
            f"the pool cannot win on CPU, it must not collapse)"
        )
    if not gate:
        failures.append(
            f"pool throughput {pool_rps} rps below gate "
            f"{round(floor, 2)} rps ({description})"
        )
    report = {
        "clients": clients,
        "requests_per_client": per_client,
        "cold_miss_fraction": cold_fraction,
        "pool_processes": processes,
        "cpu_cores": cores,
        "throughput_gate": description,
        "single": phases["single"],
        "pool": phases["pool"],
    }
    return report, failures


# ---------------------------------------------------------------------------
# Report merging + entry point
# ---------------------------------------------------------------------------
def merge_report(sections: dict) -> None:
    """Update ``BENCH_service.json`` in place, preserving other keys."""
    existing: dict = {}
    if REPORT_PATH.exists():
        try:
            existing = json.loads(REPORT_PATH.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            existing = {}
    existing.update(sections)
    REPORT_PATH.write_text(
        json.dumps(existing, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: small client count, timing gates relaxed "
        "(correctness gates unchanged)",
    )
    parser.add_argument(
        "--clients", type=int, default=None, help="concurrent clients"
    )
    parser.add_argument(
        "--requests-per-client", type=int, default=2, metavar="N"
    )
    parser.add_argument(
        "--cold-fraction",
        type=float,
        default=0.05,
        help="fraction of requests forced to miss every cache",
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=2,
        help="pre-fork pool size for the comparison phase",
    )
    parser.add_argument(
        "--skip-batch",
        action="store_true",
        help="skip the disk-warm batch phase (load only)",
    )
    parser.add_argument(
        "--skip-load",
        action="store_true",
        help="skip the load phase (disk-warm batch only)",
    )
    parser.add_argument(
        "--child-batch",
        action="store_true",
        help=argparse.SUPPRESS,  # internal: the subprocess body
    )
    parser.add_argument("--cache-dir", default=None, help=argparse.SUPPRESS)
    options = parser.parse_args(argv)

    if options.child_batch:
        if not options.cache_dir:
            parser.error("--child-batch requires --cache-dir")
        return run_child_batch(options.cache_dir)

    clients = options.clients
    if clients is None:
        clients = 40 if options.smoke else 1000

    sections: dict = {}
    failures: list[str] = []
    if not options.skip_batch:
        print("disk-warm batch: cold run ...", flush=True)
        batch_report, batch_failures = measure_disk_warm(options.smoke)
        sections["disk_warm_batch"] = batch_report
        failures.extend(batch_failures)
        print(
            f"  cold {batch_report['cold_seconds']}s, disk-warm "
            f"{batch_report['disk_warm_seconds']}s -> "
            f"{batch_report['speedup']}x "
            f"(identical={batch_report['byte_identical']})",
            flush=True,
        )
    if not options.skip_load:
        print(
            f"load: {clients} clients x {options.requests_per_client} "
            f"requests, cold fraction {options.cold_fraction} ...",
            flush=True,
        )
        load_report, load_failures = measure_load(
            clients,
            options.requests_per_client,
            options.cold_fraction,
            options.processes,
        )
        sections["load"] = load_report
        failures.extend(load_failures)
        for label in ("single", "pool"):
            phase = load_report[label]
            print(
                f"  {label}: {phase['throughput_rps']} rps, "
                f"p50 {phase['p50_seconds']}s, "
                f"p95 {phase['p95_seconds']}s, "
                f"hit rate {phase['cache_hit_rate']}, "
                f"clean exit {phase['clean_exit']}",
                flush=True,
            )
    sections["load_gates"] = {
        "passed": not failures,
        "failures": failures,
        "smoke": options.smoke,
    }
    merge_report(sections)
    if failures:
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        return 1
    print(f"all gates passed; report merged into {REPORT_PATH.name}")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(REPO_ROOT / "src"))
    raise SystemExit(main())
