"""Figure 6 — Average Precision, semantic vs RIC-based.

Regenerates the per-domain average-precision series and asserts the
paper's shape (semantic ≥ RIC everywhere); the benchmark times the full
two-method evaluation of one representative domain.
"""

from __future__ import annotations

from repro.evaluation.harness import RIC, SEMANTIC, run_dataset
from repro.evaluation.report import render_figure6


def test_figure6_shape_and_render(evaluation_results, results_dir, benchmark):
    results = list(evaluation_results.values())
    for result in results:
        assert result.average_precision(SEMANTIC) >= result.average_precision(
            RIC
        ), result.pair.name
    text = benchmark(render_figure6, results)
    (results_dir / "figure6_precision.txt").write_text(text + "\n")
    assert "Average Precision" in text


def test_precision_evaluation_runtime(benchmark, dataset_pairs):
    """Time a full both-methods precision evaluation (Hotel domain)."""
    pair = dataset_pairs["Hotel"]
    result = benchmark.pedantic(run_dataset, args=(pair,), rounds=2, iterations=1)
    assert result.average_precision(SEMANTIC) == 1.0
    assert result.average_precision(RIC) < 1.0
