"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation disables one of the semantic-compatibility filters of
Sections 3.2–3.3 and measures what it costs on the cases built to
exercise it:

* **partOf filter** (Example 1.3) — without it, the ``deanOf``-style
  plain candidate survives next to the partOf one, halving precision on
  ``network-interface-of-device``-like cases;
* **disjointness filter** (Example 1.2 variant) — without it, the
  merging candidate over declared-disjoint siblings (an unsatisfiable
  query) is emitted;
* **cardinality filter** (Example 1.1's hypothetical) — without it, a
  many-many composition is paired with a functional target relationship.
"""

from __future__ import annotations

import pytest

from repro.cm import ConceptualModel
from repro.correspondences import CorrespondenceSet
from repro.datasets.paper_examples import (
    bookstore_example,
    employee_example,
    partof_example,
)
from repro.discovery.mapper import SemanticMapper
from repro.semantics import design_schema


def discover(scenario, **flags):
    return SemanticMapper(
        scenario.source, scenario.target, scenario.correspondences, **flags
    ).discover()


class TestPartOfAblation:
    def test_filter_halves_candidates(self, benchmark):
        scenario = partof_example(target_is_partof=True)
        with_filter = discover(scenario)
        without_filter = benchmark.pedantic(
            discover,
            args=(scenario,),
            kwargs={"use_partof_filter": False},
            rounds=3,
            iterations=1,
        )
        assert len(with_filter) == 1
        assert len(without_filter) == 2  # deanOf survives the ablation


class TestDisjointnessAblation:
    def test_filter_removes_unsatisfiable_merge(self, benchmark):
        scenario = employee_example(disjoint_subclasses=True)

        def merging(result):
            return [
                candidate
                for candidate in result
                if {"engineer", "programmer"}
                <= {a.bare_predicate for a in candidate.source_query.body}
            ]

        with_filter = discover(scenario)
        without_filter = benchmark.pedantic(
            discover,
            args=(scenario,),
            kwargs={"use_disjointness_filter": False},
            rounds=3,
            iterations=1,
        )
        assert merging(with_filter) == []
        assert len(merging(without_filter)) == 1  # the empty-class query


def _functional_target_scenario():
    """Example 1.1's hypothetical: hasBookSoldAt with upper bound 1."""
    scenario = bookstore_example()
    target_cm = ConceptualModel("books_target")
    target_cm.add_class("Author", attributes=["aname"], key=["aname"])
    target_cm.add_class("Bookstore", attributes=["sid"], key=["sid"])
    target_cm.add_relationship(
        "hasBookSoldAt", "Author", "Bookstore", "0..1", "0..*"
    )
    target = design_schema(target_cm, "target", merge_functional=False)
    correspondences = CorrespondenceSet.parse(
        [
            "person.pname <-> hasbooksoldat.aname",
            "bookstore.sid <-> hasbooksoldat.sid",
        ]
    )
    return scenario.source, target.semantics, correspondences


class TestCardinalityAblation:
    def test_filter_blocks_incompatible_composition(self, benchmark):
        source, target, correspondences = _functional_target_scenario()

        def run(use_filter: bool):
            return SemanticMapper(
                source,
                target,
                correspondences,
                use_cardinality_filter=use_filter,
            ).discover()

        with_filter = run(True)
        without_filter = benchmark.pedantic(
            run, args=(False,), rounds=3, iterations=1
        )
        full = lambda result: [
            candidate
            for candidate in result
            if len(candidate.covered) == 2
        ]
        assert full(with_filter) == []  # many-many cannot feed functional
        assert len(full(without_filter)) >= 1  # ablation lets it through
