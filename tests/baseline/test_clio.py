"""Unit tests for the RIC-based baseline mapper."""

import pytest

from repro.baseline import RICBasedMapper, discover_ric_mappings, trim_unnecessary_joins
from repro.correspondences import CorrespondenceSet
from repro.datasets.paper_examples import bookstore_example, employee_example
from repro.queries.parser import parse_atom


def source_tables(candidate):
    return sorted({a.bare_predicate for a in candidate.source_query.body})


def target_tables(candidate):
    return sorted({a.bare_predicate for a in candidate.target_query.body})


class TestTrimUnnecessaryJoins:
    def test_leaf_without_needed_terms_removed(self):
        atoms = (
            parse_atom("writes(p, b)"),
            parse_atom("book(b)"),
            parse_atom("person(p)"),
        )
        needed = frozenset({parse_atom("writes(p, b)").terms[0]})
        trimmed = trim_unnecessary_joins(atoms, needed)
        # book carries no needed term and is a leaf; person carries the
        # needed head term p and survives.
        assert [a.bare_predicate for a in trimmed] == ["writes", "person"]

    def test_connector_atoms_survive(self):
        atoms = (
            parse_atom("a(x, y)"),
            parse_atom("mid(y, z)"),
            parse_atom("b(z, w)"),
        )
        needed = frozenset(
            {parse_atom("a(x, y)").terms[0], parse_atom("b(z, w)").terms[1]}
        )
        trimmed = trim_unnecessary_joins(atoms, needed)
        # mid joins a with b: removing it would disconnect the query.
        assert len(trimmed) == 3

    def test_needed_atoms_never_removed(self):
        atoms = (parse_atom("a(x)"),)
        needed = frozenset(parse_atom("a(x)").terms)
        assert trim_unnecessary_joins(atoms, needed) == atoms


class TestBookstoreBaseline:
    """Example 1.1: the baseline produces M1–M4 but never M5."""

    @pytest.fixture(scope="class")
    def result(self):
        scenario = bookstore_example()
        return discover_ric_mappings(
            scenario.source.schema,
            scenario.target.schema,
            scenario.correspondences,
        )

    def test_four_candidates(self, result):
        assert len(result) == 4

    def test_no_candidate_covers_both_correspondences(self, result):
        """The paper's point: no RIC-based mapping pairs authors with the
        bookstores stocking their books."""
        for candidate in result:
            assert len(candidate.covered) == 1

    def test_m1_like_candidate_present(self, result):
        assert any(
            source_tables(c) == ["person", "writes"] for c in result
        )

    def test_m2_like_candidate_present(self, result):
        assert any(
            source_tables(c) == ["bookstore", "soldat"] for c in result
        )

    def test_trivial_candidates_present(self, result):
        assert any(source_tables(c) == ["person"] for c in result)
        assert any(source_tables(c) == ["bookstore"] for c in result)

    def test_unnecessary_book_join_trimmed(self, result):
        for candidate in result:
            assert "book" not in source_tables(candidate)

    def test_method_label(self, result):
        assert all(c.method == "ric" for c in result)

    def test_fast(self, result):
        assert result.elapsed_seconds < 1.0


class TestEmployeeBaseline:
    """Example 1.2: the baseline cannot merge programmer with engineer."""

    @pytest.fixture(scope="class")
    def result(self):
        scenario = employee_example()
        return discover_ric_mappings(
            scenario.source.schema,
            scenario.target.schema,
            scenario.correspondences,
        )

    def test_no_merging_candidate(self, result):
        for candidate in result:
            assert source_tables(candidate) != ["engineer", "programmer"]

    def test_per_subclass_candidates(self, result):
        assert any("programmer" in source_tables(c) for c in result)
        assert any("engineer" in source_tables(c) for c in result)


class TestValidationAndOptions:
    def test_dangling_correspondence_rejected(self):
        scenario = bookstore_example()
        bad = CorrespondenceSet.parse(["ghost.x <-> hasbooksoldat.aname"])
        with pytest.raises(Exception):
            RICBasedMapper(
                scenario.source.schema, scenario.target.schema, bad
            )

    def test_untrimmed_keeps_book_join(self):
        scenario = bookstore_example()
        result = RICBasedMapper(
            scenario.source.schema,
            scenario.target.schema,
            scenario.correspondences,
            trim=False,
        ).discover()
        assert any("book" in source_tables(c) for c in result)

    def test_deterministic(self):
        scenario = bookstore_example()
        runs = [
            discover_ric_mappings(
                scenario.source.schema,
                scenario.target.schema,
                scenario.correspondences,
            )
            for _ in range(2)
        ]
        assert [str(c) for c in runs[0]] == [str(c) for c in runs[1]]
