"""Unit tests for chase-based logical relations."""

import pytest

from repro.baseline import compute_logical_relations
from repro.relational import Column, ReferentialConstraint, RelationalSchema, Table


@pytest.fixture
def bookstore_schema() -> RelationalSchema:
    schema = RelationalSchema("source")
    schema.add_table(Table("person", ["pname"], ["pname"]))
    schema.add_table(Table("writes", ["pname", "bid"], ["pname", "bid"]))
    schema.add_table(Table("book", ["bid"], ["bid"]))
    schema.add_table(Table("soldAt", ["bid", "sid"], ["bid", "sid"]))
    schema.add_table(Table("bookstore", ["sid"], ["sid"]))
    for text in [
        "writes.pname -> person.pname",
        "writes.bid -> book.bid",
        "soldAt.bid -> book.bid",
        "soldAt.sid -> bookstore.sid",
    ]:
        schema.add_ric(ReferentialConstraint.parse(text))
    return schema


class TestComputeLogicalRelations:
    def test_one_per_table(self, bookstore_schema):
        relations = compute_logical_relations(bookstore_schema)
        assert [lr.root_table for lr in relations] == list(
            bookstore_schema.table_names()
        )

    def test_s1_and_s2_of_example_1_1(self, bookstore_schema):
        relations = {
            lr.root_table: lr
            for lr in compute_logical_relations(bookstore_schema)
        }
        assert sorted(relations["writes"].tables()) == [
            "book",
            "person",
            "writes",
        ]
        assert sorted(relations["soldAt"].tables()) == [
            "book",
            "bookstore",
            "soldAt",
        ]

    def test_logical_relations_never_compose_lossily(self, bookstore_schema):
        """The RIC chase never joins writes with soldAt (the paper's
        criticism: no logical relation pairs Person with Bookstore)."""
        relations = compute_logical_relations(bookstore_schema)
        for lr in relations:
            tables = set(lr.tables())
            assert not ({"writes", "soldAt"} <= tables)

    def test_entity_table_stays_alone(self, bookstore_schema):
        relations = {
            lr.root_table: lr
            for lr in compute_logical_relations(bookstore_schema)
        }
        assert relations["person"].tables() == ("person",)

    def test_covers_column_and_terms(self, bookstore_schema):
        relations = {
            lr.root_table: lr
            for lr in compute_logical_relations(bookstore_schema)
        }
        writes_lr = relations["writes"]
        assert writes_lr.covers_column(
            Column("person", "pname"), bookstore_schema
        )
        assert not writes_lr.covers_column(
            Column("bookstore", "sid"), bookstore_schema
        )
        # The person atom's pname term equals the writes atom's pname term
        # (they were joined by the chase).
        (person_term,) = writes_lr.terms_for_column(
            Column("person", "pname"), bookstore_schema
        )
        (writes_term, _) = relations["writes"].atoms[0].terms
        assert person_term == writes_term

    def test_unknown_column_not_covered(self, bookstore_schema):
        relations = compute_logical_relations(bookstore_schema)
        assert not relations[0].covers_column(
            Column("ghost", "x"), bookstore_schema
        )

    def test_cyclic_schema_terminates(self):
        schema = RelationalSchema("s")
        schema.add_table(Table("emp", ["eid", "mgr"], ["eid"]))
        schema.add_ric(ReferentialConstraint.parse("emp.mgr -> emp.eid"))
        relations = compute_logical_relations(schema, max_depth=3)
        assert len(relations) == 1
        assert 2 <= len(relations[0].atoms) <= 4

    def test_str_rendering(self, bookstore_schema):
        relations = compute_logical_relations(bookstore_schema)
        assert "LR(person)" in str(relations[0])
