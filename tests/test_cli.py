"""Unit tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestDatasetsCommand:
    def test_lists_all_pairs(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ["DBLP", "Mondial", "Amalgam", "3Sdb", "UT", "Hotel"]:
            assert name in out


class TestDescribeCommand:
    def test_prints_schemas_and_cases(self, capsys):
        assert main(["describe", "Hotel"]) == 0
        out = capsys.readouterr().out
        assert "schema hotelA" in out
        assert "hotel-guest-rate" in out
        assert "↔" in out


class TestMapCommand:
    def test_semantic_method(self, capsys):
        assert main(["map", "Hotel", "hotel-rate-of-room"]) == 0
        out = capsys.readouterr().out
        assert "candidate(s)" in out
        assert "rateplan" in out

    def test_ric_method(self, capsys):
        assert (
            main(["map", "Hotel", "hotel-rate-of-room", "--method", "ric"])
            == 0
        )
        out = capsys.readouterr().out
        assert "candidate(s)" in out

    def test_unknown_case_fails(self, capsys):
        assert main(["map", "Hotel", "ghost-case"]) == 2
        assert "unknown case" in capsys.readouterr().err

    def test_option_flags_change_discovery(self, capsys):
        assert (
            main(
                [
                    "map",
                    "Network",
                    "network-interface-of-device",
                    "--no-partof-filter",
                ]
            )
            == 0
        )
        assert "2 candidate(s)" in capsys.readouterr().out


class TestExplainCommand:
    CASE = ["explain", "Network", "network-interface-of-device"]

    def test_span_tree_and_prune_log(self, capsys):
        assert main(self.CASE) == 0
        out = capsys.readouterr().out
        assert "span tree (wall time per phase):" in out
        assert "discover" in out
        assert "pruned by partOf" in out
        assert "prune log" in out
        assert "rank provenance" in out

    def test_json_emits_trace_document(self, capsys):
        import json

        assert main(self.CASE + ["--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["format"] == "repro-trace/1"
        assert document["explain"] is True
        assert document["prunes"]
        assert {event["rule"] for event in document["prunes"]} == {"partOf"}

    def test_stable_modulo_timings(self, capsys):
        import json
        import re

        runs = []
        for _ in range(2):
            assert main(self.CASE + ["--json"]) == 0
            text = capsys.readouterr().out
            runs.append(re.sub(r'"elapsed_s": [0-9.e-]+', '"elapsed_s": 0', text))
        assert runs[0] == runs[1]
        json.loads(runs[0])  # still a valid document after the scrub

    def test_disabled_filter_removes_prune(self, capsys):
        assert main(self.CASE + ["--no-partof-filter"]) == 0
        out = capsys.readouterr().out
        assert "pruned by partOf" not in out
        assert "2 candidate(s)" in out

    def test_unknown_case_fails(self, capsys):
        assert main(["explain", "Network", "ghost-case"]) == 2
        assert "unknown case" in capsys.readouterr().err


class TestDdlCommand:
    def test_emits_create_tables(self, capsys):
        assert main(["ddl", "Hotel", "--side", "target"]) == 0
        out = capsys.readouterr().out
        assert "CREATE TABLE property" in out
        assert "FOREIGN KEY" in out


class TestDotCommand:
    def test_emits_digraph(self, capsys):
        assert main(["dot", "Hotel"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "Booking◇" in out


class TestParser:
    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])


class TestMatchCommand:
    def test_suggestions_printed(self, capsys):
        assert main(["match", "DBLP", "--threshold", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "suggestion(s):" in out
        assert "publication.title ↔ publication.title" in out


class TestRecoverCommand:
    def test_full_coverage_reported(self, capsys):
        assert main(["recover", "Hotel", "--table", "booking"]) == 0
        out = capsys.readouterr().out
        assert "coverage: 100%" in out
        assert "s-tree anchored at Booking" in out


class TestValidateCommand:
    def test_all_pairs_validate_clean(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "Hotel: ok" in out
        assert "0 error(s)" in out

    def test_single_pair(self, capsys):
        assert main(["validate", "Hotel"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("Hotel: ok")
        assert "validated 1 pair(s)" in out

    def test_unknown_pair_fails(self, capsys):
        assert main(["validate", "Ghost"]) == 2
        assert "unknown dataset" in capsys.readouterr().err

    def test_conflicting_evaluate_modes_rejected(self):
        with pytest.raises(SystemExit):
            main(["evaluate", "--fail-fast", "--keep-going"])


class TestIntrospectCommand:
    @pytest.fixture
    def hotel_files(self, tmp_path):
        from repro.datasets.instances import generate_instance
        from repro.datasets.registry import load_dataset
        from repro.ingest import materialize_sqlite

        pair = load_dataset("Hotel")
        paths = {}
        for name, side in (
            ("source", pair.source),
            ("target", pair.target),
        ):
            instance = generate_instance(side.schema, rows_per_table=3)
            path = str(tmp_path / f"{name}.db")
            materialize_sqlite(side.schema, path, instance=instance).close()
            paths[name] = path
        case = pair.cases[0]
        corrs = tmp_path / "corrs.txt"
        corrs.write_text(
            "".join(
                f"{c.source} <-> {c.target}\n"
                for c in case.correspondences
            ),
            encoding="utf-8",
        )
        return paths, str(corrs)

    def test_introspect_and_discover(self, capsys, hotel_files):
        paths, corrs = hotel_files
        assert (
            main(
                [
                    "introspect",
                    paths["source"],
                    paths["target"],
                    "--cm",
                    "Hotel",
                    "--correspondences",
                    corrs,
                    "--discover",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "tables recovered (100% coverage)" in out
        assert "candidate(s)" in out

    def test_emit_scenario_spec(self, capsys, hotel_files, tmp_path):
        import json

        paths, corrs = hotel_files
        spec_path = tmp_path / "scenario.json"
        assert (
            main(
                [
                    "introspect",
                    paths["source"],
                    paths["target"],
                    "--cm",
                    "Hotel",
                    "--correspondences",
                    corrs,
                    "--emit-scenario",
                    str(spec_path),
                ]
            )
            == 0
        )
        document = json.loads(spec_path.read_text(encoding="utf-8"))
        assert set(document) >= {"id", "source", "target", "correspondences"}

    def test_missing_database_fails(self, capsys, tmp_path):
        assert (
            main(
                [
                    "introspect",
                    str(tmp_path / "ghost.db"),
                    str(tmp_path / "ghost2.db"),
                    "--cm",
                    "Hotel",
                ]
            )
            == 2
        )
        assert "ghost" in capsys.readouterr().err

    def test_unknown_cm_fails(self, capsys, tmp_path):
        assert (
            main(
                [
                    "introspect",
                    str(tmp_path / "a.db"),
                    str(tmp_path / "b.db"),
                    "--cm",
                    "NoSuchModel",
                ]
            )
            == 2
        )
        assert "NoSuchModel" in capsys.readouterr().err


class TestIntrospectBackends:
    @pytest.fixture
    def hotel_dumps(self, tmp_path):
        from repro.datasets.instances import generate_instance
        from repro.datasets.registry import load_dataset
        from repro.ingest import pgdump_ddl

        pair = load_dataset("Hotel")
        paths = {}
        for name, side in (
            ("source", pair.source),
            ("target", pair.target),
        ):
            instance = generate_instance(side.schema, rows_per_table=3)
            path = tmp_path / f"{name}.sql"
            path.write_text(
                pgdump_ddl(side.schema, instance=instance),
                encoding="utf-8",
            )
            paths[name] = str(path)
        case = pair.cases[0]
        corrs = tmp_path / "corrs.txt"
        corrs.write_text(
            "".join(
                f"{c.source} <-> {c.target}\n"
                for c in case.correspondences
            ),
            encoding="utf-8",
        )
        return paths, str(corrs)

    def test_pgdump_backend_discovers(self, capsys, hotel_dumps):
        paths, corrs = hotel_dumps
        assert (
            main(
                [
                    "introspect",
                    paths["source"],
                    paths["target"],
                    "--cm",
                    "Hotel",
                    "--backend",
                    "pgdump",
                    "--correspondences",
                    corrs,
                    "--discover",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "tables recovered (100% coverage)" in out
        assert "candidate(s)" in out

    def test_auto_backend_detects_dump(self, capsys, hotel_dumps):
        paths, corrs = hotel_dumps
        assert (
            main(
                [
                    "introspect",
                    paths["source"],
                    paths["target"],
                    "--cm",
                    "Hotel",
                    "--backend",
                    "auto",
                    "--correspondences",
                    corrs,
                ]
            )
            == 0
        )

    def test_unreadable_dump_is_structured_not_traceback(
        self, capsys, tmp_path
    ):
        assert (
            main(
                [
                    "introspect",
                    str(tmp_path / "ghost.sql"),
                    str(tmp_path / "ghost2.sql"),
                    "--cm",
                    "Hotel",
                    "--backend",
                    "pgdump",
                ]
            )
            == 2
        )
        err = capsys.readouterr().err
        assert "dump.unreadable" in err
        assert "ghost" in err
        assert "Traceback" not in err

    def test_empty_dump_is_structured_not_traceback(
        self, capsys, tmp_path
    ):
        empty = tmp_path / "empty.sql"
        empty.write_text("   \n", encoding="utf-8")
        other = tmp_path / "other.sql"
        other.write_text("CREATE TABLE t (a integer);\n", encoding="utf-8")
        assert (
            main(
                [
                    "introspect",
                    str(empty),
                    str(other),
                    "--cm",
                    "Hotel",
                    "--backend",
                    "pgdump",
                ]
            )
            == 2
        )
        err = capsys.readouterr().err
        assert "dump.empty" in err
        assert "Traceback" not in err

    def test_binary_dump_is_structured_not_traceback(
        self, capsys, tmp_path
    ):
        import sqlite3

        db = tmp_path / "real.db"
        conn = sqlite3.connect(str(db))
        conn.execute("CREATE TABLE t (a TEXT)")
        conn.commit()
        conn.close()
        other = tmp_path / "other.sql"
        other.write_text("CREATE TABLE t (a integer);\n", encoding="utf-8")
        assert (
            main(
                [
                    "introspect",
                    str(db),
                    str(other),
                    "--cm",
                    "Hotel",
                    "--backend",
                    "pgdump",
                ]
            )
            == 2
        )
        err = capsys.readouterr().err
        assert "dump." in err
        assert "Traceback" not in err
