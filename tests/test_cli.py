"""Unit tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestDatasetsCommand:
    def test_lists_all_pairs(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ["DBLP", "Mondial", "Amalgam", "3Sdb", "UT", "Hotel"]:
            assert name in out


class TestDescribeCommand:
    def test_prints_schemas_and_cases(self, capsys):
        assert main(["describe", "Hotel"]) == 0
        out = capsys.readouterr().out
        assert "schema hotelA" in out
        assert "hotel-guest-rate" in out
        assert "↔" in out


class TestMapCommand:
    def test_semantic_method(self, capsys):
        assert main(["map", "Hotel", "hotel-rate-of-room"]) == 0
        out = capsys.readouterr().out
        assert "candidate(s)" in out
        assert "rateplan" in out

    def test_ric_method(self, capsys):
        assert (
            main(["map", "Hotel", "hotel-rate-of-room", "--method", "ric"])
            == 0
        )
        out = capsys.readouterr().out
        assert "candidate(s)" in out

    def test_unknown_case_fails(self, capsys):
        assert main(["map", "Hotel", "ghost-case"]) == 2
        assert "unknown case" in capsys.readouterr().err


class TestDdlCommand:
    def test_emits_create_tables(self, capsys):
        assert main(["ddl", "Hotel", "--side", "target"]) == 0
        out = capsys.readouterr().out
        assert "CREATE TABLE property" in out
        assert "FOREIGN KEY" in out


class TestDotCommand:
    def test_emits_digraph(self, capsys):
        assert main(["dot", "Hotel"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "Booking◇" in out


class TestParser:
    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])


class TestMatchCommand:
    def test_suggestions_printed(self, capsys):
        assert main(["match", "DBLP", "--threshold", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "suggestion(s):" in out
        assert "publication.title ↔ publication.title" in out


class TestRecoverCommand:
    def test_full_coverage_reported(self, capsys):
        assert main(["recover", "Hotel", "--table", "booking"]) == 0
        out = capsys.readouterr().out
        assert "coverage: 100%" in out
        assert "s-tree anchored at Booking" in out


class TestValidateCommand:
    def test_all_pairs_validate_clean(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "Hotel: ok" in out
        assert "0 error(s)" in out

    def test_single_pair(self, capsys):
        assert main(["validate", "Hotel"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("Hotel: ok")
        assert "validated 1 pair(s)" in out

    def test_unknown_pair_fails(self, capsys):
        assert main(["validate", "Ghost"]) == 2
        assert "unknown dataset" in capsys.readouterr().err

    def test_conflicting_evaluate_modes_rejected(self):
        with pytest.raises(SystemExit):
            main(["evaluate", "--fail-fast", "--keep-going"])
