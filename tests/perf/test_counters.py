"""Unit tests for the stack-scoped perf counters."""

from __future__ import annotations

import threading
import time

from repro.perf import counters


def setup_function(_):
    counters.reset()


def test_record_hits_global_frame():
    counters.record("dijkstra_sweeps")
    counters.record("dijkstra_sweeps", 2)
    assert counters.global_counters().counts["dijkstra_sweeps"] == 3


def test_scope_isolates_and_still_feeds_global():
    with counters.scope() as frame:
        counters.record("translate_cache_hits")
    assert frame.counts["translate_cache_hits"] == 1
    assert counters.global_counters().counts["translate_cache_hits"] == 1
    with counters.scope() as second:
        pass
    assert second.counts["translate_cache_hits"] == 0


def test_nested_scopes_both_count():
    with counters.scope() as outer:
        with counters.scope() as inner:
            counters.record("profile_cache_hits")
    assert inner.counts["profile_cache_hits"] == 1
    assert outer.counts["profile_cache_hits"] == 1


def test_phase_records_wall_time():
    with counters.scope() as frame:
        with counters.phase("rank"):
            time.sleep(0.001)
    snapshot = frame.snapshot()
    assert snapshot["time_rank_s"] > 0


def test_concurrent_scopes_are_thread_confined():
    """Regression: the frame stack was process-global, so two threads'
    scopes counted each other's events."""
    barrier = threading.Barrier(2)
    frames: dict[str, counters.PerfCounters] = {}

    def run(name: str) -> None:
        with counters.scope() as frame:
            barrier.wait(timeout=10)
            for _ in range(500):
                counters.record(f"evt_{name}")
            barrier.wait(timeout=10)  # keep both scopes open together
        frames[name] = frame

    threads = [
        threading.Thread(target=run, args=(name,)) for name in ("a", "b")
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert frames["a"].counts["evt_a"] == 500
    assert frames["a"].counts["evt_b"] == 0
    assert frames["b"].counts["evt_b"] == 500
    assert frames["b"].counts["evt_a"] == 0
    root = counters.global_counters()
    assert root.counts["evt_a"] == 500
    assert root.counts["evt_b"] == 500


def test_root_snapshot_safe_during_concurrent_inserts():
    """Regression: snapshotting the root while another thread inserted
    new counter keys raised ``RuntimeError: dictionary changed size
    during iteration``."""
    stop = threading.Event()
    failures: list[BaseException] = []

    def insert_new_keys() -> None:
        try:
            index = 0
            while not stop.is_set():
                counters.record(f"churn_{index}")
                counters.record_time(f"churn_{index}", 0.001)
                index += 1
        except BaseException as error:  # pragma: no cover - failure path
            failures.append(error)

    thread = threading.Thread(target=insert_new_keys)
    thread.start()
    try:
        deadline = time.monotonic() + 1.0
        while time.monotonic() < deadline:
            snapshot = counters.global_counters().snapshot()
            assert isinstance(snapshot, dict)
    finally:
        stop.set()
        thread.join(timeout=10)
    assert not failures


def test_snapshot_and_merge_round_trip():
    with counters.scope() as frame:
        counters.record("lossy_paths_pruned", 4)
        with counters.phase("search"):
            pass
    merged = counters.PerfCounters()
    merged.merge(frame.snapshot())
    merged.merge(frame)
    assert merged.counts["lossy_paths_pruned"] == 8
    assert merged.snapshot()["time_search_s"] >= 0
