"""Unit tests for the stack-scoped perf counters."""

from __future__ import annotations

import time

from repro.perf import counters


def setup_function(_):
    counters.reset()


def test_record_hits_global_frame():
    counters.record("dijkstra_sweeps")
    counters.record("dijkstra_sweeps", 2)
    assert counters.global_counters().counts["dijkstra_sweeps"] == 3


def test_scope_isolates_and_still_feeds_global():
    with counters.scope() as frame:
        counters.record("translate_cache_hits")
    assert frame.counts["translate_cache_hits"] == 1
    assert counters.global_counters().counts["translate_cache_hits"] == 1
    with counters.scope() as second:
        pass
    assert second.counts["translate_cache_hits"] == 0


def test_nested_scopes_both_count():
    with counters.scope() as outer:
        with counters.scope() as inner:
            counters.record("profile_cache_hits")
    assert inner.counts["profile_cache_hits"] == 1
    assert outer.counts["profile_cache_hits"] == 1


def test_phase_records_wall_time():
    with counters.scope() as frame:
        with counters.phase("rank"):
            time.sleep(0.001)
    snapshot = frame.snapshot()
    assert snapshot["time_rank_s"] > 0


def test_snapshot_and_merge_round_trip():
    with counters.scope() as frame:
        counters.record("lossy_paths_pruned", 4)
        with counters.phase("search"):
            pass
    merged = counters.PerfCounters()
    merged.merge(frame.snapshot())
    merged.merge(frame)
    assert merged.counts["lossy_paths_pruned"] == 8
    assert merged.snapshot()["time_search_s"] >= 0
