"""Unit tests for GraphIndex sharing, caching, and the disable switch."""

from __future__ import annotations

import gc

import repro.perf as perf
from repro.cm import CMGraph, ConceptualModel
from repro.perf import counters
from repro.perf.index import GraphIndex


def _graph() -> CMGraph:
    cm = ConceptualModel("g")
    cm.add_class("A", attributes=["a"], key=["a"])
    cm.add_class("B", attributes=["b"], key=["b"])
    cm.add_class("C", attributes=["c"], key=["c"])
    cm.add_relationship("r", "A", "B", "1..1", "0..*")
    cm.add_relationship("s", "B", "C", "0..*", "0..*")
    return CMGraph(cm)


def setup_function(_):
    GraphIndex.clear_registry()
    counters.reset()


def test_of_shares_one_index_per_graph():
    graph = _graph()
    assert GraphIndex.of(graph) is GraphIndex.of(graph)
    assert GraphIndex.of(_graph()) is not GraphIndex.of(graph)


def test_of_disabled_returns_fresh_unshared():
    graph = _graph()
    shared = GraphIndex.of(graph)
    with perf.disabled():
        fresh = GraphIndex.of(graph)
    assert fresh is not shared
    assert GraphIndex.of(graph) is shared


def test_adjacency_matches_graph():
    graph = _graph()
    index = GraphIndex.of(graph)
    for node in graph.class_nodes():
        assert index.out_edges(node) == graph.edges_from(node)
        assert index.functional_adjacency[node] == tuple(
            edge for edge in graph.edges_from(node) if edge.is_functional
        )


def test_shortest_paths_computes_once_per_key():
    index = GraphIndex.of(_graph())
    calls = []

    def compute():
        calls.append(1)
        return {"A": (0, ())}

    first = index.shortest_paths("A", "unit-cost", compute)
    second = index.shortest_paths("A", "unit-cost", compute)
    assert first is second
    assert len(calls) == 1
    index.shortest_paths("A", "other-cost", compute)
    assert len(calls) == 2
    frame = counters.global_counters()
    assert frame.counts["dijkstra_cache_hits"] == 1
    assert frame.counts["dijkstra_cache_misses"] == 2
    assert frame.counts["dijkstra_sweeps"] == 2


def test_registry_entry_dies_with_graph():
    graph = _graph()
    GraphIndex.of(graph)
    assert len(GraphIndex._REGISTRY) == 1
    del graph
    gc.collect()
    assert len(GraphIndex._REGISTRY) == 0


def test_clear_caches_drops_registry():
    graph = _graph()
    index = GraphIndex.of(graph)
    perf.clear_caches()
    assert GraphIndex.of(graph) is not index
