"""Distance-oracle caching, invalidation, and option wiring."""

from __future__ import annotations

import repro.perf as perf
from repro.cm import CMGraph, ConceptualModel
from repro.correspondences import CorrespondenceSet
from repro.discovery import minimal_functional_trees
from repro.discovery.mapper import SemanticMapper
from repro.discovery.options import DiscoveryOptions
from repro.perf import counters
from repro.perf.index import GraphIndex
from repro.semantics import design_schema


def _cm(fast_path: bool) -> ConceptualModel:
    """A diamond where mutation flips which branch is functional."""
    cm = ConceptualModel("diamond")
    for name in ("A", "B", "C", "D"):
        cm.add_class(
            name, attributes=[name.lower()], key=[name.lower()]
        )
    upper = "1..1" if fast_path else "0..*"
    lower = "0..*" if fast_path else "1..1"
    cm.add_relationship("ab", "A", "B", upper, "0..*")
    cm.add_relationship("bd", "B", "D", upper, "0..*")
    cm.add_relationship("ac", "A", "C", lower, "0..*")
    cm.add_relationship("cd", "C", "D", lower, "0..*")
    return cm


def setup_function(_):
    GraphIndex.clear_registry()
    counters.reset()


def test_oracle_table_computed_once_per_key():
    index = GraphIndex.of(CMGraph(_cm(True)))
    calls = []

    def compute():
        calls.append(1)
        return {"D": 0}

    first = index.oracle_table(("bd", "D", None), compute)
    second = index.oracle_table(("bd", "D", None), compute)
    assert first is second
    assert calls == [1]


def test_clear_caches_drops_oracle_tables():
    graph = CMGraph(_cm(True))
    index = GraphIndex.of(graph)
    index.oracle_table(("bd", "D", None), lambda: {"D": 0})
    perf.clear_caches()
    calls = []
    rebuilt = GraphIndex.of(graph)
    rebuilt.oracle_table(("bd", "D", None), lambda: calls.append(1) or {})
    assert calls == [1]


def test_mutated_graph_after_clear_caches_gets_fresh_distances():
    """Rediscovery on an edited CM must never see the old CM's tables.

    The mutation flips which diamond branch is functional, so a stale
    backward-distance table would qualify the wrong branch's root and
    change the discovered trees.
    """
    before = CMGraph(_cm(True))
    warm = minimal_functional_trees(before, {"A", "D"})
    assert warm  # The oracle tables for `before` are now cached.

    perf.clear_caches()
    after = CMGraph(_cm(False))
    oracle_trees = minimal_functional_trees(after, {"A", "D"})
    with perf.disabled():
        seed_trees = minimal_functional_trees(after, {"A", "D"})
    assert [t.edges for t in oracle_trees] == [t.edges for t in seed_trees]
    # The flipped branch really changed the answer vs the warm graph.
    assert {e.label for t in oracle_trees for e in t.edges} == {"ac", "cd"}
    assert {e.label for t in warm for e in t.edges} == {"ab", "bd"}


def _scenario():
    source = design_schema(_cm(True), "src")
    target = design_schema(_cm(True), "tgt")
    correspondences = CorrespondenceSet.parse(["a.a <-> a.a", "d.d <-> d.d"])
    return source.semantics, target.semantics, correspondences


def test_distance_oracle_option_disables_guided_search():
    source, target, correspondences = _scenario()
    perf.clear_caches()
    guided = SemanticMapper(
        source, target, correspondences
    ).discover()
    perf.clear_caches()
    blind = SemanticMapper(
        source,
        target,
        correspondences,
        options=DiscoveryOptions(distance_oracle=False),
    ).discover()
    assert [c.to_tgd("M") for c in guided] == [c.to_tgd("M") for c in blind]
    assert guided.stats.get("oracle_sweeps", 0) > 0
    assert blind.stats.get("oracle_sweeps", 0) == 0


def test_subtree_cache_size_zero_disables_memo():
    source, target, correspondences = _scenario()
    perf.clear_caches()
    off = SemanticMapper(
        source,
        target,
        correspondences,
        options=DiscoveryOptions(subtree_cache_size=0),
    ).discover()
    assert off.stats.get("subtree_cache_hits", 0) == 0
    assert off.stats.get("subtree_cache_misses", 0) == 0


def test_new_options_keep_default_fingerprint():
    assert DiscoveryOptions().to_pairs() == ()
    assert DiscoveryOptions(distance_oracle=False).to_pairs() == (
        ("distance_oracle", False),
    )
