"""Regression tests: recovery against real-world naming styles.

er2rel output names columns exactly after CM attributes; live databases
do not. These tests pin the normalization fallbacks — plural table
names, camelCase, class-prefixed attribute columns, and ``_id``-suffix
foreign keys that name the referenced *entity* rather than its key —
and drive one case through the SQLite introspection fixture to prove
the fallbacks hold on schemas read back from a live database.
"""

import pytest

from repro.cm import ConceptualModel
from repro.relational import ReferentialConstraint, RelationalSchema, Table
from repro.semantics.recover import recover_semantics


@pytest.fixture
def hr_model() -> ConceptualModel:
    cm = ConceptualModel("hr")
    cm.add_class("Department", attributes=["dno", "budget"], key=["dno"])
    cm.add_class(
        "Employee", attributes=["eno", "name", "salary"], key=["eno"]
    )
    cm.add_relationship("worksIn", "Employee", "Department", "1..1", "0..*")
    return cm


def _real_world_schema() -> RelationalSchema:
    schema = RelationalSchema("legacy")
    schema.add_table(Table("departments", ["dno", "budget"], ["dno"]))
    schema.add_table(
        Table(
            "employees",
            ["eno", "employeeName", "salary", "dept_id"],
            ["eno"],
        )
    )
    schema.add_ric(
        ReferentialConstraint(
            "employees", ["dept_id"], "departments", ["dno"]
        )
    )
    return schema


class TestRealWorldStyles:
    def test_plural_tables_anchor_singular_classes(self, hr_model):
        report = recover_semantics(_real_world_schema(), hr_model)
        assert report.skipped_tables == []
        semantics = report.semantics
        assert semantics.tree("departments").anchor.cm_node == "Department"
        assert semantics.tree("employees").anchor.cm_node == "Employee"

    def test_class_prefixed_camel_case_column_maps(self, hr_model):
        report = recover_semantics(_real_world_schema(), hr_model)
        tree = report.semantics.tree("employees")
        node, attribute = tree.columns["employeeName"]
        assert (node.cm_node, attribute) == ("Employee", "name")
        assert "employees.employeeName" not in report.unmapped_columns

    def test_id_suffix_fk_binds_relationship(self, hr_model):
        report = recover_semantics(_real_world_schema(), hr_model)
        tree = report.semantics.tree("employees")
        node, attribute = tree.columns["dept_id"]
        assert (node.cm_node, attribute) == ("Department", "dno")
        edge = tree.parent_edge(node)
        assert edge is not None and edge.cm_edge.label == "worksIn"

    def test_exact_matches_still_win_over_prefix_stripping(self, hr_model):
        # A column exactly matching an attribute must not be rerouted by
        # the prefix fallback even when a stripped form also matches.
        schema = RelationalSchema("s")
        schema.add_table(Table("employee", ["eno", "name"], ["eno"]))
        report = recover_semantics(schema, hr_model)
        tree = report.semantics.tree("employee")
        assert tree.columns["name"][1] == "name"
        assert report.unmapped_columns == []

    def test_relationship_table_with_id_suffix_keys(self):
        cm = ConceptualModel("proj")
        cm.add_class("Employee", attributes=["eno"], key=["eno"])
        cm.add_class("Project", attributes=["pno"], key=["pno"])
        cm.add_relationship("assignedTo", "Employee", "Project")
        schema = RelationalSchema("s")
        schema.add_table(Table("employee", ["eno"], ["eno"]))
        schema.add_table(Table("project", ["pno"], ["pno"]))
        schema.add_table(
            Table(
                "assignedTo",
                ["employee_id", "project_id"],
                ["employee_id", "project_id"],
            )
        )
        report = recover_semantics(schema, cm)
        assert report.skipped_tables == []
        tree = report.semantics.tree("assignedTo")
        mapped = {
            column: (node.cm_node, attribute)
            for column, (node, attribute) in tree.columns.items()
        }
        assert mapped == {
            "employee_id": ("Employee", "eno"),
            "project_id": ("Project", "pno"),
        }


class TestIntrospectedFixtureRoundTrip:
    def test_live_database_styles_survive_introspection(self, hr_model):
        """The same legacy schema, materialized to SQLite and read back
        via PRAGMA introspection, must still recover fully."""
        from repro.ingest import (
            introspect_sqlite,
            materialize_sqlite,
            recover_introspected,
        )

        connection = materialize_sqlite(_real_world_schema())
        try:
            introspection = introspect_sqlite(connection)
        finally:
            connection.close()
        side = recover_introspected(introspection, hr_model)
        assert side.ok
        assert side.recovery.coverage() == 1.0
        tree = side.semantics.tree("employees")
        assert tree.anchor.cm_node == "Employee"
        assert tree.columns["dept_id"][0].cm_node == "Department"
