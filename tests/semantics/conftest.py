"""Shared fixtures: the paper's Example 1.1 and 1.2 conceptual models."""

import pytest

from repro.cm import CMGraph, ConceptualModel


@pytest.fixture
def books_model() -> ConceptualModel:
    """Example 1.1's source CM."""
    cm = ConceptualModel("books")
    cm.add_class("Person", attributes=["pname"], key=["pname"])
    cm.add_class("Book", attributes=["bid"], key=["bid"])
    cm.add_class("Bookstore", attributes=["sid"], key=["sid"])
    cm.add_relationship("writes", "Person", "Book", "0..*", "1..*")
    cm.add_relationship("soldAt", "Book", "Bookstore", "0..*", "0..*")
    return cm


@pytest.fixture
def books_graph(books_model) -> CMGraph:
    return CMGraph(books_model)


@pytest.fixture
def employee_model() -> ConceptualModel:
    """Example 1.2's CM: Employee with overlapping subclasses."""
    cm = ConceptualModel("employees")
    cm.add_class("Employee", attributes=["ssn", "name"], key=["ssn"])
    cm.add_class("Engineer", attributes=["site"])
    cm.add_class("Programmer", attributes=["acnt"])
    cm.add_isa("Engineer", "Employee")
    cm.add_isa("Programmer", "Employee")
    cm.add_cover("Employee", ["Engineer", "Programmer"])
    return cm


@pytest.fixture
def employee_graph(employee_model) -> CMGraph:
    return CMGraph(employee_model)


@pytest.fixture
def spouse_model() -> ConceptualModel:
    """Recursive relationships: pers(pid, name, age, spousePid)."""
    cm = ConceptualModel("people")
    cm.add_class("Person", attributes=["pid", "name", "age"], key=["pid"])
    cm.add_relationship("hasSpouse", "Person", "Person", "0..1", "0..1")
    cm.add_relationship("hasBestFriend", "Person", "Person", "0..1", "0..*")
    return cm
