"""Tests for semantics recovery — round-tripping er2rel designs.

The gold standard: design a schema from a CM (which yields ground-truth
semantics), throw the semantics away, recover them from the bare schema
plus the CM, and compare. Equality criterion: same anchor and identical
column → (class, attribute) associations (tree shape may differ in
harmless ways for unreferenced interior nodes, so columns are what we
pin)."""

import pytest

from repro.datasets.registry import load_dataset
from repro.semantics import design_schema
from repro.semantics.recover import recover_semantics


def assert_semantics_match(recovered, designed, table_name):
    designed_tree = designed.tree(table_name)
    recovered_tree = recovered.tree(table_name)
    assert (
        recovered_tree.anchor.cm_node == designed_tree.anchor.cm_node
    ), table_name
    designed_columns = {
        column: (node.cm_node, attribute)
        for column, (node, attribute) in designed_tree.columns.items()
    }
    recovered_columns = {
        column: (node.cm_node, attribute)
        for column, (node, attribute) in recovered_tree.columns.items()
    }
    assert recovered_columns == designed_columns, table_name


@pytest.mark.parametrize(
    "name",
    ["DBLP", "Mondial", "Amalgam", "3Sdb", "UT", "Hotel", "Network"],
)
@pytest.mark.parametrize("side", ["source", "target"])
def test_er2rel_round_trip(name, side):
    pair = load_dataset(name)
    designed = getattr(pair, side)
    report = recover_semantics(designed.schema, designed.model)
    assert report.skipped_tables == []
    assert report.coverage() == 1.0
    for table_name in designed.tables_with_semantics():
        assert_semantics_match(report.semantics, designed, table_name)


def test_recovered_semantics_drive_discovery():
    """Recovered (not designed) semantics must still find M5-style
    compositions: the Hotel guest-rate case end to end."""
    from repro.discovery import SemanticMapper

    pair = load_dataset("Hotel")
    source = recover_semantics(pair.source.schema, pair.source.model).semantics
    target = recover_semantics(pair.target.schema, pair.target.model).semantics
    case = pair.cases[3]  # hotel-guest-rate (semantic-only composition)
    result = SemanticMapper(source, target, case.correspondences).discover()
    assert len(result) >= 1
    tables = {a.bare_predicate for a in result.best().source_query.body}
    assert {"guest", "booking", "rateplan"} <= tables


def test_unanchorable_table_reported():
    from repro.cm import ConceptualModel
    from repro.relational import RelationalSchema, Table

    cm = ConceptualModel("m")
    cm.add_class("Thing", attributes=["tid"], key=["tid"])
    schema = RelationalSchema(
        "s", [Table("unrelated", ["xyz", "abc"], ["xyz"])]
    )
    report = recover_semantics(schema, cm)
    assert report.coverage() < 1.0 or report.unmapped_columns


def test_prefixed_fk_disambiguation():
    """Two functional relationships to the same class: the prefixed
    column must bind the matching relationship."""
    from repro.cm import ConceptualModel

    cm = ConceptualModel("hr")
    cm.add_class("Dept", attributes=["dno"], key=["dno"])
    cm.add_class("Emp", attributes=["eno", "sal"], key=["eno"])
    cm.add_relationship("worksIn", "Emp", "Dept", "1..1", "0..*")
    cm.add_relationship("manages", "Emp", "Dept", "0..1", "0..1")
    designed = design_schema(cm, "hr")
    report = recover_semantics(designed.schema, cm)
    assert report.skipped_tables == []
    recovered_tree = report.semantics.tree("emp")
    designed_tree = designed.semantics.tree("emp")
    recovered_labels = {
        column: recovered_tree.parent_edge(node).cm_edge.label
        for column, (node, _) in recovered_tree.columns.items()
        if recovered_tree.parent_edge(node) is not None
    }
    designed_labels = {
        column: designed_tree.parent_edge(node).cm_edge.label
        for column, (node, _) in designed_tree.columns.items()
        if designed_tree.parent_edge(node) is not None
    }
    assert recovered_labels == designed_labels


def test_subclass_tables_climb_isa():
    from repro.datasets.paper_examples import employee_example

    scenario = employee_example()
    report = recover_semantics(
        scenario.source.schema, scenario.source.model
    )
    assert report.skipped_tables == []
    tree = report.semantics.tree("programmer")
    assert tree.anchor.cm_node == "Programmer"
    assert tree.column_class("ssn") == "Employee"
    assert tree.column_class("acnt") == "Programmer"
