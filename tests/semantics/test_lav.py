"""Unit tests for schema semantics and LAV view construction."""

import pytest

from repro.exceptions import SemanticsError
from repro.relational import Column, RelationalSchema, Table
from repro.semantics import SchemaSemantics, SemanticTree


@pytest.fixture
def semantics(books_model, books_graph):
    schema = RelationalSchema("src")
    schema.add_table(Table("person", ["pname"], ["pname"]))
    schema.add_table(Table("writes", ["pname", "bid"], ["pname", "bid"]))
    schema.add_table(Table("bookstore", ["sid"], ["sid"]))
    trees = {
        "person": SemanticTree.build(
            books_graph, "Person", [], {"pname": "Person.pname"}
        ),
        "writes": SemanticTree.build(
            books_graph,
            "Person",
            [("Person", "writes", "Book")],
            {"pname": "Person.pname", "bid": "Book.bid"},
        ),
        "bookstore": SemanticTree.build(
            books_graph, "Bookstore", [], {"sid": "Bookstore.sid"}
        ),
    }
    return SchemaSemantics(schema, books_graph, trees)


class TestValidation:
    def test_unknown_column_in_tree_rejected(self, books_graph):
        schema = RelationalSchema("s", [Table("person", ["pname"], ["pname"])])
        bad_tree = SemanticTree.build(
            books_graph, "Person", [], {"ghost": "Person.pname"}
        )
        with pytest.raises(SemanticsError):
            SchemaSemantics(schema, books_graph, {"person": bad_tree})

    def test_unknown_table_rejected(self, books_graph):
        schema = RelationalSchema("s")
        tree = SemanticTree.build(books_graph, "Person")
        with pytest.raises(Exception):
            SchemaSemantics(schema, books_graph, {"person": tree})


class TestViews:
    def test_views_cover_all_tables(self, semantics):
        assert len(semantics.views()) == 3

    def test_view_head_matches_columns(self, semantics):
        view = semantics.view("writes")
        assert [v.name for v in view.head] == ["pname", "bid"]

    def test_view_body_is_key_merged(self, semantics):
        view = semantics.view("writes")
        assert {str(a) for a in view.body} == {
            "O:Person(pname)",
            "O:Book(bid)",
            "O:writes(pname, bid)",
        }

    def test_views_cached(self, semantics):
        assert semantics.view("person") is semantics.view("person")

    def test_unknown_view_rejected(self, semantics):
        with pytest.raises(SemanticsError):
            semantics.view("ghost")


class TestColumnLookups:
    def test_column_class(self, semantics):
        assert semantics.column_class(Column("writes", "bid")) == "Book"
        assert semantics.column_class(Column("person", "pname")) == "Person"

    def test_column_attribute(self, semantics):
        assert semantics.column_attribute(Column("writes", "bid")) == "bid"

    def test_marked_nodes(self, semantics):
        marked = semantics.marked_nodes(
            [Column("person", "pname"), Column("bookstore", "sid")]
        )
        assert marked == {"Person", "Bookstore"}

    def test_preselected_trees(self, semantics):
        pairs = semantics.preselected_trees(
            [Column("writes", "pname"), Column("writes", "bid")]
        )
        assert [name for name, _ in pairs] == ["writes"]

    def test_preselected_cm_edges_include_inverses(self, semantics):
        edges = semantics.preselected_cm_edges([Column("writes", "pname")])
        labels = {e.label for e in edges}
        assert "writes" in labels
        assert "writes⁻" in labels

    def test_missing_tree_raises(self, semantics):
        with pytest.raises(SemanticsError):
            semantics.tree("ghost")

    def test_describe(self, semantics):
        assert "writes" in semantics.describe()
