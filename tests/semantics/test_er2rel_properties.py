"""Property-based tests: er2rel output is always well-formed.

Random small conceptual models go in; the forward-engineered schema and
its table semantics must satisfy the design invariants regardless of the
model's shape.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cm import ConceptualModel
from repro.queries.rewrite import inverse_rules
from repro.semantics import design_schema
from repro.semantics.encoder import effective_key

CLASS_POOL = ["Alpha", "Beta", "Gamma", "Delta", "Epsilon"]
CARDS = ["0..1", "1..1", "0..*", "1..*"]


@st.composite
def conceptual_models(draw):
    cm = ConceptualModel("random")
    n_classes = draw(st.integers(min_value=2, max_value=5))
    names = CLASS_POOL[:n_classes]
    for index, name in enumerate(names):
        keyed = draw(st.booleans()) or index == 0
        attributes = [f"{name.lower()}_id", f"{name.lower()}_val"]
        cm.add_class(
            name,
            attributes=attributes,
            key=[attributes[0]] if keyed else [],
        )
    n_rels = draw(st.integers(min_value=0, max_value=4))
    for rel_index in range(n_rels):
        domain = draw(st.sampled_from(names))
        range_ = draw(st.sampled_from(names))
        cm.add_relationship(
            f"rel{rel_index}",
            domain,
            range_,
            to_card=draw(st.sampled_from(CARDS)),
            from_card=draw(st.sampled_from(CARDS)),
        )
    # Optionally one ISA link between distinct classes (no cycles with
    # a single link).
    if n_classes >= 2 and draw(st.booleans()):
        sub, sup = names[1], names[0]
        if not cm.cm_class(sub).key or True:
            cm.add_isa(sub, sup)
    return cm


@settings(max_examples=60, deadline=None)
@given(model=conceptual_models())
def test_design_produces_valid_schema_and_semantics(model):
    result = design_schema(model, "s")
    schema = result.schema
    semantics = result.semantics  # construction itself validates trees
    for table in schema:
        assert table.arity >= 1
        assert table.primary_key  # er2rel only emits keyed tables
    # Every RIC points at existing tables/columns (add_ric validated),
    # and parent columns are the parent's primary key.
    for ric in schema.rics:
        parent = schema.table(ric.parent_table)
        assert tuple(ric.parent_columns) == parent.primary_key


@settings(max_examples=60, deadline=None)
@given(model=conceptual_models())
def test_views_match_table_arity(model):
    result = design_schema(model, "s")
    for view in result.semantics.views():
        table = result.schema.table(view.name)
        assert len(view.head) == table.arity
        # Inverse rules derive without error and stay within the view.
        for rule in inverse_rules(view):
            assert rule.body.bare_predicate == view.name


@settings(max_examples=60, deadline=None)
@given(model=conceptual_models())
def test_stree_columns_are_table_columns(model):
    result = design_schema(model, "s")
    for table_name in result.semantics.tables_with_semantics():
        table = result.schema.table(table_name)
        tree = result.semantics.tree(table_name)
        assert set(tree.columns) <= set(table.columns)
        # Key columns are always mapped.
        for key_column in table.primary_key:
            assert key_column in tree.columns


@settings(max_examples=60, deadline=None)
@given(model=conceptual_models())
def test_effective_key_stability(model):
    # effective_key never raises and is idempotent per class.
    for name in model.class_names():
        first = effective_key(model, name)
        second = effective_key(model, name)
        assert first == second
