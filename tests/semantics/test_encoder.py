"""Unit tests for the s-tree encoding algorithm and key-merging."""

import pytest

from repro.cm import CMGraph, ConceptualModel
from repro.queries.conjunctive import SkolemTerm, Variable, cm_atom
from repro.semantics import (
    SemanticTree,
    STreeNode,
    apply_key_merge,
    effective_key,
    encode_and_merge,
    encode_tree,
)


class TestEncodeTree:
    def test_paper_writes_example(self, books_model, books_graph):
        """T:writes(pname,bid) → O:Person(x), O:Book(y), O:writes(x,y),
        O:pname(x,pname), O:bid(y,bid) — Section 2's formula."""
        tree = SemanticTree.build(
            books_graph,
            "Person",
            [("Person", "writes", "Book")],
            {"pname": "Person.pname", "bid": "Book.bid"},
        )
        encoded = encode_tree(tree, books_model)
        rendered = {str(a) for a in encoded.atoms}
        assert rendered == {
            "O:Person(x_Person)",
            "O:Book(x_Book)",
            "O:writes(x_Person, x_Book)",
            "O:pname(x_Person, pname)",
            "O:bid(x_Book, bid)",
        }

    def test_inverse_edge_encodes_base_predicate(self, books_model, books_graph):
        tree = SemanticTree.build(
            books_graph,
            "Book",
            [("Book", "writes⁻", "Person")],
            {"bid": "Book.bid", "pname": "Person.pname"},
        )
        encoded = encode_tree(tree, books_model)
        rendered = {str(a) for a in encoded.atoms}
        # The atom uses writes(person, book) even though traversal was
        # inverted.
        assert "O:writes(x_Person, x_Book)" in rendered

    def test_isa_edges_share_variables(self, employee_model, employee_graph):
        tree = SemanticTree.build(
            employee_graph,
            "Programmer",
            [("Programmer", "isa", "Employee")],
            {"ssn": "Employee.ssn", "acnt": "Programmer.acnt"},
        )
        encoded = encode_tree(tree, employee_model)
        rendered = {str(a) for a in encoded.atoms}
        assert "O:Programmer(x_Programmer)" in rendered
        assert "O:Employee(x_Programmer)" in rendered  # same variable
        assert not any("isa" in text for text in rendered)

    def test_copies_get_distinct_variables(self, spouse_model):
        graph = CMGraph(spouse_model)
        tree = SemanticTree.build(
            graph,
            "Person",
            [("Person", "hasSpouse", "Person~1")],
            {"pid": "Person.pid", "spousePid": "Person~1.pid"},
        )
        encoded = encode_tree(tree, spouse_model)
        rendered = {str(a) for a in encoded.atoms}
        assert "O:hasSpouse(x_Person, x_Person~1)" in rendered
        assert "O:pid(x_Person~1, spousePid)" in rendered

    def test_column_variables_named_after_columns(self, books_model, books_graph):
        tree = SemanticTree.build(
            books_graph, "Person", [], {"pname": "Person.pname"}
        )
        encoded = encode_tree(tree, books_model)
        assert encoded.column_variables == {"pname": Variable("pname")}


class TestKeyMerge:
    def test_single_attribute_key_merges_to_column(self, books_model, books_graph):
        tree = SemanticTree.build(
            books_graph,
            "Person",
            [("Person", "writes", "Book")],
            {"pname": "Person.pname", "bid": "Book.bid"},
        )
        encoded = encode_and_merge(tree, books_model)
        rendered = {str(a) for a in encoded.atoms}
        assert rendered == {
            "O:Person(pname)",
            "O:Book(bid)",
            "O:writes(pname, bid)",
        }

    def test_unidentified_object_keeps_variable(self, books_model, books_graph):
        # Column for Book's key is absent: Book stays existential.
        tree = SemanticTree.build(
            books_graph,
            "Person",
            [("Person", "writes", "Book")],
            {"pname": "Person.pname"},
        )
        encoded = encode_and_merge(tree, books_model)
        rendered = {str(a) for a in encoded.atoms}
        assert "O:Book(x_Book)" in rendered
        assert "O:writes(pname, x_Book)" in rendered

    def test_composite_key_merges_to_identity_skolem(self):
        cm = ConceptualModel("m")
        cm.add_class(
            "Flight",
            attributes=["airline", "number", "gate"],
            key=["airline", "number"],
        )
        graph = CMGraph(cm)
        tree = SemanticTree.build(
            graph,
            "Flight",
            [],
            {
                "airline": "Flight.airline",
                "number": "Flight.number",
                "gate": "Flight.gate",
            },
        )
        encoded = encode_and_merge(tree, cm)
        flight_atom = next(
            a for a in encoded.atoms if a.predicate == "O:Flight"
        )
        term = flight_atom.terms[0]
        assert isinstance(term, SkolemTerm)
        assert term.function == "id_Flight"
        assert term.arguments == (Variable("airline"), Variable("number"))
        # Attribute atoms are kept for composite keys.
        assert any(a.predicate == "O:airline" for a in encoded.atoms)

    def test_inherited_key_merges_subclass_object(
        self, employee_model, employee_graph
    ):
        """Example 1.2: programmer(ssn, name, acnt) identifies employees
        by the inherited ssn key."""
        tree = SemanticTree.build(
            employee_graph,
            "Programmer",
            [("Programmer", "isa", "Employee")],
            {
                "ssn": "Employee.ssn",
                "name": "Employee.name",
                "acnt": "Programmer.acnt",
            },
        )
        encoded = encode_and_merge(tree, employee_model)
        rendered = {str(a) for a in encoded.atoms}
        assert rendered == {
            "O:Programmer(ssn)",
            "O:Employee(ssn)",
            "O:name(ssn, name)",
            "O:acnt(ssn, acnt)",
        }

    def test_merge_is_idempotent(self, books_model, books_graph):
        tree = SemanticTree.build(
            books_graph, "Person", [], {"pname": "Person.pname"}
        )
        once = encode_and_merge(tree, books_model)
        twice = apply_key_merge(once, tree, books_model)
        assert set(once.atoms) == set(twice.atoms)


class TestEffectiveKey:
    def test_own_key(self, books_model):
        assert effective_key(books_model, "Person") == ("pname",)

    def test_inherited_key(self, employee_model):
        assert effective_key(employee_model, "Programmer") == ("ssn",)

    def test_no_key(self):
        cm = ConceptualModel("m")
        cm.add_class("Thing", attributes=["note"])
        assert effective_key(cm, "Thing") == ()

    def test_transitive_inheritance(self, employee_model):
        employee_model.add_class("KernelHacker")
        employee_model.add_isa("KernelHacker", "Programmer")
        assert effective_key(employee_model, "KernelHacker") == ("ssn",)
