"""Unit tests for semantic trees."""

import pytest

from repro.exceptions import SemanticsError
from repro.cm import CMGraph
from repro.semantics import STreeEdge, STreeNode, SemanticTree


class TestSTreeNode:
    def test_base_node_id(self):
        assert STreeNode("Person").node_id == "Person"

    def test_copy_node_id(self):
        assert STreeNode("Person", 1).node_id == "Person~1"

    def test_parse_round_trips(self):
        for node_id in ["Person", "Person~1", "Person~12"]:
            assert STreeNode.parse(node_id).node_id == node_id

    def test_parse_bad_copy(self):
        with pytest.raises(SemanticsError):
            STreeNode.parse("Person~x")

    def test_negative_copy_rejected(self):
        with pytest.raises(SemanticsError):
            STreeNode("Person", -1)


class TestBuild:
    def test_writes_tree(self, books_graph):
        tree = SemanticTree.build(
            books_graph,
            "Person",
            [("Person", "writes", "Book")],
            {"pname": "Person.pname", "bid": "Book.bid"},
        )
        assert tree.anchor == STreeNode("Person")
        assert tree.cm_nodes() == {"Person", "Book"}
        assert tree.column_class("pname") == "Person"
        assert tree.column_class("bid") == "Book"
        assert tree.column_attribute("bid") == "bid"

    def test_unknown_root_rejected(self, books_graph):
        with pytest.raises(SemanticsError):
            SemanticTree.build(books_graph, "Ghost")

    def test_edge_target_mismatch_rejected(self, books_graph):
        with pytest.raises(SemanticsError):
            SemanticTree.build(
                books_graph, "Person", [("Person", "writes", "Bookstore")]
            )

    def test_unknown_attribute_rejected(self, books_graph):
        with pytest.raises(SemanticsError):
            SemanticTree.build(
                books_graph, "Person", [], {"c": "Person.ghost"}
            )

    def test_unqualified_column_target_rejected(self, books_graph):
        with pytest.raises(SemanticsError):
            SemanticTree.build(books_graph, "Person", [], {"c": "pname"})

    def test_recursive_tree_with_copies(self, spouse_model):
        graph = CMGraph(spouse_model)
        tree = SemanticTree.build(
            graph,
            "Person",
            [
                ("Person", "hasSpouse", "Person~1"),
                ("Person", "hasBestFriend", "Person~2"),
            ],
            {
                "pid": "Person.pid",
                "spousePid": "Person~1.pid",
                "bestFriendPid": "Person~2.pid",
            },
        )
        assert len(tree.nodes()) == 3
        assert tree.column_node("spousePid") == STreeNode("Person", 1)
        assert tree.cm_nodes() == {"Person"}


class TestTreeValidation:
    def test_disconnected_edge_rejected(self, books_graph):
        with pytest.raises(SemanticsError):
            SemanticTree.build(
                books_graph, "Person", [("Book", "soldAt", "Bookstore")]
            )

    def test_two_parents_rejected(self, books_graph):
        root = STreeNode("Person")
        book = STreeNode("Book")
        writes = books_graph.edge("Person", "writes")
        with pytest.raises(SemanticsError):
            SemanticTree(
                root,
                [
                    STreeEdge(root, book, writes),
                    STreeEdge(root, book, writes),
                ],
            )

    def test_column_outside_tree_rejected(self, books_graph):
        with pytest.raises(SemanticsError):
            SemanticTree(
                STreeNode("Person"),
                [],
                {"bid": (STreeNode("Book"), "bid")},
            )

    def test_bijective_column_association(self, books_graph):
        node = STreeNode("Person")
        with pytest.raises(SemanticsError):
            SemanticTree(
                node,
                [],
                {"a": (node, "pname"), "b": (node, "pname")},
            )


class TestTraversal:
    @pytest.fixture
    def chain_tree(self, books_graph):
        return SemanticTree.build(
            books_graph,
            "Person",
            [
                ("Person", "writes", "Book"),
                ("Book", "soldAt", "Bookstore"),
            ],
            {"pname": "Person.pname", "sid": "Bookstore.sid"},
        )

    def test_nodes_root_first(self, chain_tree):
        assert chain_tree.nodes()[0] == STreeNode("Person")
        assert len(chain_tree.nodes()) == 3

    def test_path_from_root(self, chain_tree):
        path = chain_tree.path_from_root(STreeNode("Bookstore"))
        assert [e.cm_edge.label for e in path] == ["writes", "soldAt"]
        assert chain_tree.path_from_root(STreeNode("Person")) == ()

    def test_path_of_foreign_node_rejected(self, chain_tree):
        with pytest.raises(SemanticsError):
            chain_tree.path_from_root(STreeNode("Ghost"))

    def test_children_and_parent(self, chain_tree):
        (edge,) = chain_tree.children(STreeNode("Person"))
        assert edge.child == STreeNode("Book")
        assert chain_tree.parent_edge(STreeNode("Book")) == edge
        assert chain_tree.parent_edge(STreeNode("Person")) is None

    def test_anchored_functional(self, books_graph, chain_tree):
        # writes/soldAt are non-functional: the chain is not anchored
        # functional.
        assert not chain_tree.is_anchored_functional()
        single = SemanticTree.build(books_graph, "Person")
        assert single.is_anchored_functional()

    def test_columns_of_node(self, chain_tree):
        assert chain_tree.columns_of_node(STreeNode("Person")) == ("pname",)
        assert chain_tree.columns_of_node(STreeNode("Book")) == ()

    def test_unknown_column_lookups(self, chain_tree):
        with pytest.raises(SemanticsError):
            chain_tree.column_class("ghost")
        with pytest.raises(SemanticsError):
            chain_tree.column_node("ghost")
        with pytest.raises(SemanticsError):
            chain_tree.column_attribute("ghost")

    def test_describe(self, chain_tree):
        text = chain_tree.describe()
        assert "Person" in text and "writes" in text and "pname" in text
