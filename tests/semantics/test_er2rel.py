"""Unit tests for er2rel forward engineering."""

import pytest

from repro.cm import ConceptualModel
from repro.relational import Column
from repro.semantics import STreeNode, design_schema


class TestEntityTables:
    def test_simple_entity(self, books_model):
        result = design_schema(books_model, "src")
        person = result.schema.table("person")
        assert person.columns == ("pname",)
        assert person.primary_key == ("pname",)
        tree = result.semantics.tree("person")
        assert tree.anchor == STreeNode("Person")
        assert tree.column_class("pname") == "Person"

    def test_non_key_attributes_follow_key(self):
        cm = ConceptualModel("m")
        cm.add_class("Dept", attributes=["budget", "dno"], key=["dno"])
        result = design_schema(cm, "s")
        assert result.schema.table("dept").columns == ("dno", "budget")

    def test_keyless_class_skipped(self):
        cm = ConceptualModel("m")
        cm.add_class("Thing", attributes=["note"])
        result = design_schema(cm, "s")
        assert not result.schema.has_table("thing")
        assert any("Thing" in reason for reason in result.skipped)


class TestFunctionalMerge:
    @pytest.fixture
    def hr_model(self) -> ConceptualModel:
        cm = ConceptualModel("hr")
        cm.add_class("Dept", attributes=["dno"], key=["dno"])
        cm.add_class("Emp", attributes=["eno", "sal"], key=["eno"])
        cm.add_relationship("worksIn", "Emp", "Dept", "1..1", "0..*")
        cm.add_relationship("manages", "Emp", "Dept", "0..1", "0..1")
        return cm

    def test_functional_relationships_merge_into_domain(self, hr_model):
        result = design_schema(hr_model, "s")
        emp = result.schema.table("emp")
        # Key, own attribute, then one FK column per functional rel
        # (sorted by relationship name: manages before worksIn).
        assert emp.columns == ("eno", "sal", "dno", "worksin_dno")
        assert not result.schema.has_table("worksin")
        assert not result.schema.has_table("manages")

    def test_merge_emits_rics(self, hr_model):
        result = design_schema(hr_model, "s")
        rics = {str(r) for r in result.schema.rics}
        assert "emp.dno -> dept.dno" in rics
        assert "emp.worksin_dno -> dept.dno" in rics

    def test_merged_stree_reaches_target_key(self, hr_model):
        result = design_schema(hr_model, "s")
        tree = result.semantics.tree("emp")
        assert tree.column_class("dno") == "Dept"
        labels = [e.cm_edge.label for e in tree.edges]
        assert sorted(labels) == ["manages", "worksIn"]

    def test_unmerged_design(self, hr_model):
        result = design_schema(hr_model, "s", merge_functional=False)
        assert result.schema.table("emp").columns == ("eno", "sal")
        worksin = result.schema.table("worksin")
        assert worksin.primary_key == ("eno",)  # functional: domain key

    def test_recursive_functional_relationship_uses_copy(self):
        cm = ConceptualModel("m")
        cm.add_class("Person", attributes=["pid"], key=["pid"])
        cm.add_relationship("hasSpouse", "Person", "Person", "0..1", "0..1")
        result = design_schema(cm, "s")
        person = result.schema.table("person")
        assert person.columns == ("pid", "hasspouse_pid")
        tree = result.semantics.tree("person")
        assert tree.column_node("hasspouse_pid") == STreeNode("Person", 1)


class TestRelationshipTables:
    def test_many_many_table(self, books_model):
        result = design_schema(books_model, "src")
        writes = result.schema.table("writes")
        assert writes.columns == ("pname", "bid")
        assert writes.primary_key == ("pname", "bid")
        rics = {str(r) for r in result.schema.rics}
        assert "writes.pname -> person.pname" in rics
        assert "writes.bid -> book.bid" in rics

    def test_stree_of_relationship_table(self, books_model):
        result = design_schema(books_model, "src")
        tree = result.semantics.tree("writes")
        assert tree.anchor == STreeNode("Person")
        assert [e.cm_edge.label for e in tree.edges] == ["writes"]

    def test_self_relationship_column_disambiguation(self):
        cm = ConceptualModel("m")
        cm.add_class("Person", attributes=["pid"], key=["pid"])
        cm.add_relationship("knows", "Person", "Person", "0..*", "0..*")
        result = design_schema(cm, "s")
        knows = result.schema.table("knows")
        assert knows.columns == ("pid", "to_pid")


class TestIsaTables:
    def test_subclass_table_inherits_key(self, employee_model):
        result = design_schema(employee_model, "s")
        programmer = result.schema.table("programmer")
        assert programmer.columns == ("ssn", "acnt")
        assert programmer.primary_key == ("ssn",)
        rics = {str(r) for r in result.schema.rics}
        assert "programmer.ssn -> employee.ssn" in rics

    def test_subclass_stree_climbs_isa(self, employee_model):
        result = design_schema(employee_model, "s")
        tree = result.semantics.tree("engineer")
        assert tree.anchor == STreeNode("Engineer")
        assert [e.cm_edge.label for e in tree.edges] == ["isa"]
        assert tree.column_class("ssn") == "Employee"
        assert tree.column_class("site") == "Engineer"


class TestReifiedTables:
    def test_nary_reified_table(self):
        """Section 3.3's sells(sid, prodid, pid, date) example."""
        cm = ConceptualModel("m")
        cm.add_class("Store", attributes=["sid"], key=["sid"])
        cm.add_class("Product", attributes=["prodid"], key=["prodid"])
        cm.add_class("Person", attributes=["pid"], key=["pid"])
        cm.add_reified_relationship(
            "Sell",
            roles={"seller": "Store", "sold": "Product", "buyer": "Person"},
            attributes=["dateOfPurchase"],
        )
        result = design_schema(cm, "s")
        sell = result.schema.table("sell")
        assert sell.columns == ("sid", "prodid", "pid", "dateOfPurchase")
        assert sell.primary_key == ("sid", "prodid", "pid")
        tree = result.semantics.tree("sell")
        assert tree.anchor == STreeNode("Sell")
        assert {e.cm_edge.label for e in tree.edges} == {
            "seller",
            "sold",
            "buyer",
        }
        assert tree.column_class("dateOfPurchase") == "Sell"

    def test_reified_rics_point_to_participants(self):
        cm = ConceptualModel("m")
        cm.add_class("A", attributes=["aid"], key=["aid"])
        cm.add_class("B", attributes=["bid"], key=["bid"])
        cm.add_reified_relationship("R", roles={"ra": "A", "rb": "B"})
        result = design_schema(cm, "s")
        rics = {str(r) for r in result.schema.rics}
        assert "r.aid -> a.aid" in rics
        assert "r.bid -> b.bid" in rics


class TestSemanticsIntegration:
    def test_views_derivable_from_design(self, books_model):
        result = design_schema(books_model, "src")
        views = {v.name: v for v in result.semantics.views()}
        assert {str(a) for a in views["soldat"].body} == {
            "O:Book(bid)",
            "O:Bookstore(sid)",
            "O:soldAt(bid, sid)",
        }

    def test_column_class_lookup(self, books_model):
        result = design_schema(books_model, "src")
        assert (
            result.semantics.column_class(Column("writes", "pname")) == "Person"
        )
