"""Property tests for the versioned wire format.

Round-trips ``discover_request_from_wire`` (request → parsed options →
request) and ``result_to_wire`` (result fields → payload) over
hypothesis-generated ``DiscoveryOptions`` and trace documents, plus the
version-gate behaviour the server's 400s rely on.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.discovery.mapper import DiscoveryResult
from repro.discovery.options import DiscoveryOptions
from repro.exceptions import WireFormatError
from repro.service.wire import (
    WIRE_VERSION,
    check_wire_version,
    discover_request_from_wire,
    result_to_wire,
)
from repro.trace import TRACE_FORMAT

SCENARIO_SPEC = {"dataset": "DBLP", "case": "dblp-article-in-journal"}

options_strategy = st.builds(
    DiscoveryOptions,
    max_path_edges=st.integers(min_value=1, max_value=12),
    use_partof_filter=st.booleans(),
    use_disjointness_filter=st.booleans(),
    use_cardinality_filter=st.booleans(),
    explain=st.booleans(),
    trace=st.booleans(),
)

trace_strategy = st.one_of(
    st.none(),
    st.fixed_dictionaries(
        {
            "format": st.just(TRACE_FORMAT),
            "explain": st.booleans(),
            "spans": st.lists(
                st.fixed_dictionaries(
                    {
                        "name": st.sampled_from(
                            ["discover", "lift", "rank"]
                        ),
                        "elapsed_s": st.floats(
                            min_value=0, max_value=10, allow_nan=False
                        ),
                    }
                ),
                max_size=3,
            ),
            "prunes": st.lists(
                st.fixed_dictionaries(
                    {
                        "phase": st.sampled_from(["pair_filter", "rank"]),
                        "rule": st.sampled_from(
                            ["partOf", "cardinality", "anchor"]
                        ),
                        "detail": st.text(max_size=20),
                    }
                ),
                max_size=3,
            ),
            "provenance": st.just([]),
        }
    ),
)


class TestRequestRoundTrip:
    @given(
        options=options_strategy,
        mode=st.sampled_from(["sync", "async"]),
        use_cache=st.booleans(),
        timeout=st.one_of(
            st.none(), st.floats(min_value=0.5, max_value=60)
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_options_survive_the_wire(
        self, options, mode, use_cache, timeout
    ):
        payload = {
            "version": WIRE_VERSION,
            "scenario": dict(SCENARIO_SPEC),
            "options": options.to_dict(),
            "mode": mode,
            "use_cache": use_cache,
        }
        if timeout is not None:
            payload["timeout_seconds"] = timeout
        scenario, parsed = discover_request_from_wire(payload)
        assert parsed.discovery == options
        assert parsed.mode == mode
        assert parsed.use_cache is use_cache
        assert parsed.timeout_seconds == (
            None if timeout is None else float(timeout)
        )
        assert scenario.discovery_options() == options

    @given(options=options_strategy)
    @settings(max_examples=60, deadline=None)
    def test_scenario_level_options_win(self, options):
        spec = dict(SCENARIO_SPEC)
        spec["options"] = options.to_dict()
        payload = {"scenario": spec, "options": {"max_path_edges": 11}}
        scenario, parsed = discover_request_from_wire(payload)
        assert scenario.discovery_options() == options
        assert parsed.discovery == DiscoveryOptions(max_path_edges=11)

    @given(options=options_strategy)
    @settings(max_examples=60, deadline=None)
    def test_options_dict_round_trips(self, options):
        assert DiscoveryOptions.from_mapping(options.to_dict()) == options
        assert DiscoveryOptions.from_pairs(options.to_pairs()) == options


class TestResultRoundTrip:
    @given(
        trace=trace_strategy,
        elapsed=st.floats(min_value=0, max_value=100, allow_nan=False),
        notes=st.lists(st.text(max_size=30), max_size=3),
    )
    @settings(max_examples=60, deadline=None)
    def test_result_fields_survive_the_wire(self, trace, elapsed, notes):
        result = DiscoveryResult(
            candidates=[],
            elapsed_seconds=elapsed,
            notes=notes,
            trace=trace,
        )
        payload = result_to_wire(result)
        assert payload["version"] == WIRE_VERSION
        assert payload["mapping"]["notes"] == notes
        assert payload["run"]["elapsed_seconds"] == elapsed
        if trace is None:
            assert "trace" not in payload
        else:
            assert payload["trace"] == trace


class TestVersionGate:
    def test_current_version_accepted(self):
        assert check_wire_version({"version": WIRE_VERSION}) == WIRE_VERSION

    def test_absent_version_means_current(self):
        assert check_wire_version({}) == WIRE_VERSION

    @pytest.mark.parametrize("version", [0, 2, 99, -1])
    def test_other_versions_refused(self, version):
        with pytest.raises(WireFormatError, match="unsupported"):
            check_wire_version({"version": version})

    @pytest.mark.parametrize("version", ["1", 1.0, True, None])
    def test_non_integer_versions_refused(self, version):
        with pytest.raises(WireFormatError, match="integer"):
            check_wire_version({"version": version})

    def test_request_parser_enforces_version(self):
        with pytest.raises(WireFormatError, match="unsupported"):
            discover_request_from_wire(
                {"version": 2, "scenario": dict(SCENARIO_SPEC)}
            )

    def test_responses_declare_version(self):
        payload = result_to_wire(
            DiscoveryResult(candidates=[], elapsed_seconds=0.0)
        )
        assert payload["version"] == WIRE_VERSION
