"""The pre-fork process pool: serving, coherence, metrics, shutdown.

The supervisor forks real processes, so the end-to-end tests drive
``python -m repro serve --processes N`` in a subprocess (forking from
inside the threaded pytest process would be fragile) and talk HTTP to
it. The pure pieces — metric labeling, snapshot files, config
validation — are tested in-process.
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request

import pytest

from repro.service.metrics import (
    label_series,
    parse_exposition,
    read_snapshot_series,
    write_snapshot_file,
)
from repro.service.pool import PreForkSupervisor, snapshot_path
from repro.service.server import ServiceConfig

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))


class TestLabelSeries:
    def test_adds_label_to_bare_series(self):
        text = "repro_service_pool_size 2\n"
        out = label_series(text, worker="1")
        assert out == 'repro_service_pool_size{worker="1"} 2\n'

    def test_merges_into_existing_label_block(self):
        text = 'repro_service_requests_total{endpoint="health"} 3\n'
        out = label_series(text, worker="0")
        assert (
            out
            == 'repro_service_requests_total{endpoint="health",worker="0"} 3\n'
        )

    def test_comments_and_blank_lines_pass_through(self):
        text = "# TYPE x counter\n\nx 1\n"
        out = label_series(text, worker="2")
        assert out.splitlines()[0] == "# TYPE x counter"
        assert out.splitlines()[2] == 'x{worker="2"} 1'

    def test_labeled_document_still_parses(self):
        text = 'a 1\nb{c="d"} 2.5\n'
        values = parse_exposition(label_series(text, worker="7"))
        assert values['a{worker="7"}'] == 1.0
        assert values['b{c="d",worker="7"}'] == 2.5

    def test_no_labels_is_identity(self):
        text = "a 1\n"
        assert label_series(text) == text


class TestSnapshotFiles:
    def test_round_trip(self, tmp_path):
        path = snapshot_path(str(tmp_path), 3)
        assert write_snapshot_file(path, "# TYPE a counter\na 1\nb 2\n")
        assert read_snapshot_series(path) == ["a 1", "b 2"]

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_snapshot_series(snapshot_path(str(tmp_path), 9)) == []

    def test_write_failure_returns_false(self):
        assert (
            write_snapshot_file("/proc/definitely/not/writable", "x")
            is False
        )


class TestConfigValidation:
    def test_worker_index_must_fit_pool(self):
        with pytest.raises(ValueError, match="out of range"):
            ServiceConfig(worker_index=2, pool_size=2)

    def test_negative_worker_index(self):
        with pytest.raises(ValueError, match="out of range"):
            ServiceConfig(worker_index=-1)

    def test_empty_cache_dir(self):
        with pytest.raises(ValueError, match="cache_dir"):
            ServiceConfig(cache_dir="")

    def test_supervisor_needs_a_worker(self):
        with pytest.raises(ValueError, match="processes"):
            PreForkSupervisor(processes=0)


def _post(url: str, path: str, payload: dict, timeout: float = 60.0):
    request = urllib.request.Request(
        url + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def _get(url: str, path: str, timeout: float = 10.0) -> str:
    with urllib.request.urlopen(url + path, timeout=timeout) as response:
        return response.read().decode("utf-8")


@pytest.fixture(scope="module")
def pool_server(tmp_path_factory):
    """One two-worker pre-fork server with a shared cache directory."""
    cache_dir = str(tmp_path_factory.mktemp("pool-cache"))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--processes",
            "2",
            "--workers",
            "1",
            "--cache-dir",
            cache_dir,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    banner = proc.stdout.readline()
    if "listening on " not in banner:
        proc.kill()
        pytest.fail(f"pool server failed to start: {banner!r}")
    url = banner.split("listening on ", 1)[1].split(" ", 1)[0]
    yield proc, url, cache_dir
    if proc.poll() is None:
        proc.kill()
        proc.wait(timeout=10)


class TestPreForkServing:
    SCENARIO = {"dataset": "DBLP", "case": "dblp-article-in-journal"}

    def test_health_and_discover(self, pool_server):
        _, url, _ = pool_server
        health = json.loads(_get(url, "/health"))
        assert health["status"] == "ok"
        result = _post(url, "/discover", {"scenario": self.SCENARIO})
        assert result["status"] == "ok"
        assert result["result"]["mapping"]["candidates"]

    def test_disk_tier_is_the_coherence_point(self, pool_server):
        """A scenario computed once is served warm by *every* worker.

        Which worker accepts each connection is the kernel's choice, so
        assert on the architecture instead: the first discovery writes
        its stage artifacts and result payload into the shared cache
        directory, where any sibling (or a restart) finds them.
        """
        _, url, cache_dir = pool_server
        _post(url, "/discover", {"scenario": self.SCENARIO})
        entries = [
            os.path.join(root, name)
            for root, _, names in os.walk(cache_dir)
            for name in names
            if name.endswith(".entry")
        ]
        assert entries, "no cache entries written to the shared dir"
        stages = {
            os.path.relpath(p, cache_dir).split(os.sep)[0] for p in entries
        }
        assert "rank" in stages  # the full-hit artifact
        assert "service_result" in stages  # the result-cache tier
        # Repeats are cache hits wherever they land.
        repeat = _post(url, "/discover", {"scenario": self.SCENARIO})
        assert repeat["status"] == "ok"

    def test_metrics_aggregate_across_workers(self, pool_server):
        _, url, _ = pool_server
        _get(url, "/metrics")  # ensure at least one scrape happened
        time.sleep(2.5)  # > SNAPSHOT_INTERVAL: every worker publishes
        deadline = time.monotonic() + 10.0
        while True:
            values = parse_exposition(_get(url, "/metrics"))
            up = [
                values.get(f'repro_service_pool_worker_up{{worker="{i}"}}')
                for i in range(2)
            ]
            if up == [1.0, 1.0]:
                break
            if time.monotonic() >= deadline:
                pytest.fail(f"workers never all up: {up}")
            time.sleep(0.5)
        assert values.get("repro_service_pool_size") == 2.0
        workers_seen = {
            series.split('worker="', 1)[1].split('"', 1)[0]
            for series in values
            if 'worker="' in series
        }
        assert workers_seen == {"0", "1"}

    def test_sigint_drains_and_exits_cleanly(self, pool_server):
        proc, url, _ = pool_server
        _post(url, "/discover", {"scenario": self.SCENARIO})
        proc.send_signal(signal.SIGINT)
        assert proc.wait(timeout=30) == 0
