"""Unit tests for the service wire format."""

import json

import pytest

from repro.datasets.paper_examples import bookstore_example
from repro.exceptions import WireFormatError
from repro.mappings.serialize import FORMAT, candidate_to_dict
from repro.service.wire import (
    discover_request_from_wire,
    resolve_dataset,
    result_to_wire,
    scenario_from_wire,
    semantics_from_wire,
    semantics_to_wire,
)


@pytest.fixture(scope="module")
def bookstore():
    return bookstore_example()


class TestDatasetScenarios:
    def test_dataset_case_resolves(self):
        scenario = scenario_from_wire(
            {"dataset": "DBLP", "case": "dblp-article-in-journal"}
        )
        assert scenario.scenario_id == "DBLP/dblp-article-in-journal"
        assert len(scenario.correspondences) > 0

    def test_explicit_id_wins(self):
        scenario = scenario_from_wire(
            {
                "dataset": "DBLP",
                "case": "dblp-article-in-journal",
                "id": "mine",
            }
        )
        assert scenario.scenario_id == "mine"

    def test_dataset_objects_are_shared_across_requests(self):
        first = scenario_from_wire(
            {"dataset": "DBLP", "case": "dblp-article-in-journal"}
        )
        second = scenario_from_wire(
            {"dataset": "DBLP", "case": "dblp-book-publisher"}
        )
        assert first.source is second.source  # warm resolver, not a reload

    def test_adhoc_correspondences(self):
        pair = resolve_dataset("DBLP")
        case = pair.cases[0]
        texts = [
            str(c).replace("↔", "<->") for c in case.correspondences
        ]
        scenario = scenario_from_wire(
            {"dataset": "DBLP", "correspondences": texts}
        )
        assert scenario.scenario_id == "DBLP/adhoc"
        assert len(scenario.correspondences) == len(case.correspondences)

    def test_unknown_dataset(self):
        with pytest.raises(WireFormatError, match="unknown dataset"):
            scenario_from_wire({"dataset": "nope", "case": "x"})

    def test_unknown_case_lists_known_ones(self):
        with pytest.raises(WireFormatError, match="dblp-article-in-journal"):
            scenario_from_wire({"dataset": "DBLP", "case": "nope"})

    def test_dataset_without_case_or_correspondences(self):
        with pytest.raises(WireFormatError, match="needs a 'case'"):
            scenario_from_wire({"dataset": "DBLP"})


class TestInlineScenarios:
    def test_semantics_round_trip_preserves_discovery(self, bookstore):
        rebuilt = semantics_from_wire(semantics_to_wire(bookstore.source))
        assert rebuilt.schema.table_names() == (
            bookstore.source.schema.table_names()
        )
        assert rebuilt.tables_with_semantics() == (
            bookstore.source.tables_with_semantics()
        )
        spec = {
            "source": semantics_to_wire(bookstore.source),
            "target": semantics_to_wire(bookstore.target),
            "correspondences": [
                str(c).replace("↔", "<->")
                for c in bookstore.correspondences
            ],
        }
        scenario = scenario_from_wire(spec)
        assert scenario.scenario_id == "inline"
        inline_result = scenario.run()
        reference = bookstore_example()
        from repro.discovery.mapper import SemanticMapper

        ref_result = SemanticMapper(
            reference.source, reference.target, reference.correspondences
        ).discover()
        assert [str(c.to_tgd("M")) for c in inline_result.candidates] == [
            str(c.to_tgd("M")) for c in ref_result.candidates
        ]

    def test_wire_spec_is_json_serializable(self, bookstore):
        text = json.dumps(semantics_to_wire(bookstore.source))
        rebuilt = semantics_from_wire(json.loads(text))
        assert rebuilt.schema.name == bookstore.source.schema.name

    def test_missing_sections_rejected(self):
        with pytest.raises(WireFormatError, match="needs 'schema'"):
            semantics_from_wire({"model": {"name": "m"}})
        with pytest.raises(WireFormatError, match="needs either"):
            scenario_from_wire({"correspondences": []})

    def test_bad_tree_rejected(self, bookstore):
        spec = semantics_to_wire(bookstore.source)
        table = next(iter(spec["trees"]))
        spec["trees"][table]["root"] = "NoSuchClass"
        with pytest.raises(WireFormatError, match="bad semantics spec"):
            semantics_from_wire(spec)

    def test_non_object_specs_rejected(self):
        with pytest.raises(WireFormatError):
            scenario_from_wire("DBLP")
        with pytest.raises(WireFormatError):
            semantics_from_wire([1, 2, 3])


class TestDiscoverRequest:
    def test_defaults(self):
        scenario, options = discover_request_from_wire(
            {"scenario": {"dataset": "DBLP", "case": "dblp-article-in-journal"}}
        )
        assert scenario.scenario_id == "DBLP/dblp-article-in-journal"
        assert options.mode == "sync"
        assert options.use_cache is True
        assert options.timeout_seconds is None

    def test_options_parsed(self):
        _, options = discover_request_from_wire(
            {
                "scenario": {
                    "dataset": "DBLP",
                    "case": "dblp-article-in-journal",
                },
                "mode": "async",
                "use_cache": False,
                "timeout_seconds": 5,
            }
        )
        assert options.mode == "async"
        assert options.use_cache is False
        assert options.timeout_seconds == 5.0

    @pytest.mark.parametrize(
        "payload, pattern",
        [
            ({}, "needs a 'scenario'"),
            ([], "JSON object"),
            (
                {"scenario": {"dataset": "DBLP", "case": "dblp-article-in-journal"}, "mode": "later"},
                "'mode' must be",
            ),
            (
                {"scenario": {"dataset": "DBLP", "case": "dblp-article-in-journal"}, "use_cache": "yes"},
                "'use_cache' must be",
            ),
            (
                {"scenario": {"dataset": "DBLP", "case": "dblp-article-in-journal"}, "timeout_seconds": -1},
                "'timeout_seconds' must be",
            ),
        ],
    )
    def test_bad_requests(self, payload, pattern):
        with pytest.raises(WireFormatError, match=pattern):
            discover_request_from_wire(payload)

    def test_bad_mapper_options(self):
        with pytest.raises(WireFormatError, match="mapper option"):
            scenario_from_wire(
                {
                    "dataset": "DBLP",
                    "case": "dblp-article-in-journal",
                    "mapper_options": {"cost_model": {"nested": 1}},
                }
            )

    @pytest.mark.parametrize("where", ["request", "scenario"])
    def test_cache_dir_refused_from_clients(self, where):
        # The cache directory is a server deployment setting; a client
        # must not be able to point the process at a filesystem path.
        payload: dict = {
            "scenario": {
                "dataset": "DBLP",
                "case": "dblp-article-in-journal",
            }
        }
        options = {"cache_dir": "/tmp/attacker-controlled"}
        if where == "request":
            payload["options"] = options
        else:
            payload["scenario"]["options"] = options
        with pytest.raises(WireFormatError, match="server-side"):
            discover_request_from_wire(payload)


class TestResultPayloads:
    def test_result_to_wire_reuses_mapping_serializer(self):
        scenario = scenario_from_wire(
            {"dataset": "DBLP", "case": "dblp-article-in-journal"}
        )
        result = scenario.run()
        payload = result_to_wire(result)
        assert payload["mapping"]["format"] == FORMAT
        assert payload["mapping"]["candidates"] == [
            candidate_to_dict(c) for c in result.candidates
        ]
        assert payload["run"]["elapsed_seconds"] == result.elapsed_seconds
        json.dumps(payload)  # must be JSON-clean

    def test_mapping_section_is_deterministic(self):
        scenario = scenario_from_wire(
            {"dataset": "DBLP", "case": "dblp-article-in-journal"}
        )
        first = result_to_wire(scenario.run())["mapping"]
        second = result_to_wire(scenario.run())["mapping"]
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )
