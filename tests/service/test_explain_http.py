"""Explain mode and per-phase metrics over real HTTP.

The PR's second acceptance path: the same span tree / prune log the CLI
prints must come back from ``POST /discover`` when the request carries
``{"options": {"explain": true}}``, byte-stable across identical runs
modulo timings, and ``GET /metrics`` must expose per-phase latency
quantiles fed by the traced runs' stats.
"""

import copy

import pytest

from repro.service.client import ServiceClient
from repro.service.server import ReproServer, ServiceConfig
from repro.service.wire import WIRE_VERSION

#: The CLI acceptance case: one candidate survives, one CSG pair is
#: pruned by the partOf compatibility rule.
SCENARIO = {"dataset": "Network", "case": "network-interface-of-device"}


def scrub_timings(trace):
    trace = copy.deepcopy(trace)

    def scrub(span):
        span.pop("elapsed_s", None)
        for child in span.get("children", ()):
            scrub(child)

    for span in trace["spans"]:
        scrub(span)
    return trace


@pytest.fixture(scope="module")
def server():
    with ReproServer(ServiceConfig(workers=2)) as instance:
        yield instance


@pytest.fixture(scope="module")
def client(server):
    return ServiceClient(server.url)


class TestExplainOverHttp:
    def test_trace_section_with_prune_events(self, client):
        status, payload = client.request(
            "POST",
            "/discover",
            {"scenario": dict(SCENARIO), "options": {"explain": True}},
        )
        assert status == 200
        assert payload["status"] == "ok"
        trace = payload["result"]["trace"]
        assert trace["explain"] is True
        assert trace["spans"][0]["name"] == "discover"
        rules = {event["rule"] for event in trace["prunes"]}
        assert "partOf" in rules
        assert trace["provenance"]

    def test_stable_across_identical_runs_modulo_timings(self, client):
        traces = []
        for use_cache in (False, False):
            status, payload = client.request(
                "POST",
                "/discover",
                {
                    "scenario": dict(SCENARIO),
                    "options": {"explain": True},
                    "use_cache": use_cache,
                },
            )
            assert status == 200
            traces.append(scrub_timings(payload["result"]["trace"]))
        assert traces[0] == traces[1]

    def test_untraced_by_default(self, client):
        status, payload = client.request(
            "POST", "/discover", {"scenario": dict(SCENARIO)}
        )
        assert status == 200
        assert "trace" not in payload["result"]

    def test_clio_engine_selectable_over_the_wire(self, client):
        status, payload = client.request(
            "POST",
            "/discover",
            {
                "scenario": dict(SCENARIO),
                "options": {"engine": "clio"},
                "use_cache": False,
            },
        )
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["result"]["mapping"]["candidates"]

    def test_unknown_engine_is_400(self, client):
        status, payload = client.request(
            "POST",
            "/discover",
            {"scenario": dict(SCENARIO), "options": {"engine": "prehistoric"}},
        )
        assert status == 400
        assert "engine" in payload["error"]["message"]

    def test_bad_options_are_400(self, client):
        status, payload = client.request(
            "POST",
            "/discover",
            {"scenario": dict(SCENARIO), "options": {"max_candidates": 1}},
        )
        assert status == 400
        assert "max_candidates" in payload["error"]["message"]


class TestWireVersionOverHttp:
    def test_responses_declare_version(self, client):
        status, payload = client.request(
            "POST", "/discover", {"scenario": dict(SCENARIO)}
        )
        assert status == 200
        assert payload["version"] == WIRE_VERSION
        assert payload["result"]["version"] == WIRE_VERSION

    def test_health_declares_version(self, client):
        assert client.health()["version"] == WIRE_VERSION

    def test_unknown_version_is_400(self, client):
        status, payload = client.request(
            "POST",
            "/discover",
            {"scenario": dict(SCENARIO), "version": WIRE_VERSION + 1},
        )
        assert status == 400
        assert "unsupported wire version" in payload["error"]["message"]


class TestPhaseMetrics:
    def test_phase_latency_summary_rendered(self, client):
        # at least one discovery has run by now (module-scoped client)
        client.request("POST", "/discover", {"scenario": dict(SCENARIO)})
        text = client.metrics_text()
        assert "repro_service_phase_seconds" in text
        assert 'phase="discover"' in text
        assert 'quantile="0.5"' in text
        assert 'quantile="0.95"' in text
        assert "repro_service_phase_seconds_count" in text
