"""Unit tests for the content-addressed result cache."""

import pytest

from repro.datasets.paper_examples import bookstore_example
from repro.discovery.batch import Scenario, scenario_fingerprint
from repro.discovery.engine.persist import PersistentStageStore
from repro.discovery.options import DiscoveryOptions
from repro.service.cache import RESULT_STAGE, SWEEP_PROBES, ResultCache


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestResultCache:
    def test_put_get_round_trip(self):
        cache = ResultCache(max_entries=4)
        cache.put("a", {"x": 1})
        assert cache.get("a") == {"x": 1}
        assert "a" in cache
        assert len(cache) == 1

    def test_miss_returns_none_and_counts(self):
        cache = ResultCache(max_entries=4)
        assert cache.get("missing") is None
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 0

    def test_lru_eviction_order(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a; b becomes LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats()["evictions"] == 1

    def test_ttl_expiry(self):
        clock = FakeClock()
        cache = ResultCache(max_entries=4, ttl_seconds=10.0, clock=clock)
        cache.put("a", 1)
        clock.advance(9.0)
        assert cache.get("a") == 1
        clock.advance(2.0)
        assert cache.get("a") is None
        stats = cache.stats()
        assert stats["expirations"] == 1
        assert stats["entries"] == 0

    def test_zero_entries_disables_cache(self):
        cache = ResultCache(max_entries=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_clear(self):
        cache = ResultCache(max_entries=4)
        cache.put("a", 1)
        cache.clear()
        assert cache.get("a") is None

    @pytest.mark.parametrize(
        "kwargs",
        [{"max_entries": -1}, {"ttl_seconds": 0.0}, {"ttl_seconds": -5}],
    )
    def test_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            ResultCache(**{"max_entries": 4, **kwargs})


class TestExpirySweep:
    """Expired entries must die even if their keys are never touched.

    The original bug: TTL expiry only ran inside ``get(key)``, so an
    entry whose key never came back stayed in memory forever — a
    skewed access pattern could fill the cache with dead payloads.
    ``put`` now sweeps the LRU cold end.
    """

    def test_put_reclaims_untouched_expired_entries(self):
        clock = FakeClock()
        cache = ResultCache(max_entries=64, ttl_seconds=10.0, clock=clock)
        for i in range(8):
            cache.put(f"dead-{i}", i)
        clock.advance(11.0)  # all eight expire; none is ever get()ed
        cache.put("fresh", "payload")
        stats = cache.stats()
        assert stats["expirations"] == 8
        assert stats["entries"] == 1
        assert len(cache) == 1  # raw occupancy agrees: they are gone
        assert cache.get("fresh") == "payload"

    def test_sweep_is_bounded_per_put(self):
        clock = FakeClock()
        cache = ResultCache(max_entries=256, ttl_seconds=10.0, clock=clock)
        count = SWEEP_PROBES + 5
        for i in range(count):
            cache.put(f"dead-{i}", i)
        clock.advance(11.0)
        cache.put("fresh", 1)
        # One put probes at most SWEEP_PROBES cold-end entries ...
        assert cache.stats()["expirations"] == SWEEP_PROBES
        # ... and the next put finishes the job.
        cache.put("fresh-2", 2)
        assert cache.stats()["expirations"] == count
        assert cache.stats()["entries"] == 2

    def test_sweep_stops_at_the_first_live_entry(self):
        clock = FakeClock()
        cache = ResultCache(max_entries=64, ttl_seconds=10.0, clock=clock)
        cache.put("old", 1)
        clock.advance(6.0)
        cache.put("young", 2)
        clock.advance(5.0)  # "old" expired, "young" (age 5) still live
        cache.put("fresh", 3)
        stats = cache.stats()
        assert stats["expirations"] == 1
        assert cache.get("young") == 2

    def test_no_ttl_means_no_sweep(self):
        cache = ResultCache(max_entries=4, ttl_seconds=None)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.stats()["expirations"] == 0


class TestTTLAwareIntrospection:
    """Satellite (c): expired entries are invisible everywhere."""

    def test_contains_is_ttl_aware(self):
        clock = FakeClock()
        cache = ResultCache(max_entries=4, ttl_seconds=10.0, clock=clock)
        cache.put("a", 1)
        assert "a" in cache
        clock.advance(11.0)
        assert "a" not in cache
        # Membership checks must not mutate: the entry still awaits its
        # sweep, visible only to raw occupancy.
        assert len(cache) == 1

    def test_stats_entries_counts_only_live(self):
        clock = FakeClock()
        cache = ResultCache(max_entries=8, ttl_seconds=10.0, clock=clock)
        cache.put("old", 1)
        clock.advance(6.0)
        cache.put("young", 2)
        clock.advance(5.0)
        stats = cache.stats()
        assert stats["entries"] == 1
        assert len(cache) == 2


class FakeEpochClock(FakeClock):
    def __init__(self) -> None:
        self.now = 1_000_000.0


class TestDiskTier:
    """Write-through + read-through against the persistent store."""

    def _store(self, tmp_path) -> PersistentStageStore:
        return PersistentStageStore(tmp_path / "cache")

    def test_sibling_cache_reads_the_others_writes(self, tmp_path):
        store = self._store(tmp_path)
        writer = ResultCache(max_entries=4, store=store)
        reader = ResultCache(max_entries=4, store=store)
        writer.put("key", {"payload": 1})
        assert reader.get("key") == {"payload": 1}
        stats = reader.stats()
        assert stats["disk_hits"] == 1
        assert stats["misses"] == 1  # the memory miss that fell through

    def test_promotion_serves_from_memory_afterwards(self, tmp_path):
        store = self._store(tmp_path)
        writer = ResultCache(max_entries=4, store=store)
        reader = ResultCache(max_entries=4, store=store)
        writer.put("key", "payload")
        assert reader.get("key") == "payload"
        assert reader.get("key") == "payload"
        stats = reader.stats()
        assert stats["disk_hits"] == 1
        assert stats["hits"] == 1

    def test_disk_entry_past_ttl_is_a_miss(self, tmp_path):
        store = self._store(tmp_path)
        epoch = FakeEpochClock()
        writer = ResultCache(
            max_entries=4, ttl_seconds=10.0, store=store, epoch_clock=epoch
        )
        writer.put("key", "payload")
        epoch.advance(11.0)
        reader = ResultCache(
            max_entries=4, ttl_seconds=10.0, store=store, epoch_clock=epoch
        )
        assert reader.get("key") is None
        assert reader.stats()["disk_misses"] == 1

    def test_promotion_preserves_the_original_age(self, tmp_path):
        store = self._store(tmp_path)
        epoch = FakeEpochClock()
        writer = ResultCache(
            max_entries=4, ttl_seconds=10.0, store=store, epoch_clock=epoch
        )
        writer.put("key", "payload")
        epoch.advance(6.0)
        clock = FakeClock()
        reader = ResultCache(
            max_entries=4,
            ttl_seconds=10.0,
            clock=clock,
            store=store,
            epoch_clock=epoch,
        )
        assert reader.get("key") == "payload"  # promoted at age 6
        # Both clocks tick on: total age 11 > TTL. The promoted copy
        # must expire on its *original* age, not its promotion time,
        # and the disk entry is equally past TTL.
        clock.advance(5.0)
        epoch.advance(5.0)
        assert reader.get("key") is None
        assert reader.stats()["expirations"] == 1

    def test_unexpected_disk_shape_is_a_miss(self, tmp_path):
        store = self._store(tmp_path)
        store.put(RESULT_STAGE, "key", "not-a-(epoch,payload)-tuple")
        reader = ResultCache(max_entries=4, store=store)
        assert reader.get("key") is None
        assert reader.stats()["disk_misses"] == 1

    def test_disabled_cache_skips_the_store(self, tmp_path):
        store = self._store(tmp_path)
        seeded = ResultCache(max_entries=4, store=store)
        seeded.put("key", "payload")
        disabled = ResultCache(max_entries=0, store=store)
        assert disabled.get("key") is None
        assert disabled.stats()["disk_hits"] == 0


class TestScenarioFingerprint:
    def test_content_not_identity(self):
        first = bookstore_example()
        second = bookstore_example()  # distinct objects, equal content
        fp1 = scenario_fingerprint(
            Scenario.create(
                "one", first.source, first.target, first.correspondences
            )
        )
        fp2 = scenario_fingerprint(
            Scenario.create(
                "two", second.source, second.target, second.correspondences
            )
        )
        assert fp1 == fp2  # scenario_id must not matter

    def test_correspondences_change_key(self):
        example = bookstore_example()
        base = Scenario.create(
            "s", example.source, example.target, example.correspondences
        )
        from repro.correspondences import CorrespondenceSet

        trimmed = Scenario.create(
            "s",
            example.source,
            example.target,
            CorrespondenceSet(list(example.correspondences)[:1]),
        )
        assert scenario_fingerprint(base) != scenario_fingerprint(trimmed)

    def test_mapper_options_change_key(self):
        example = bookstore_example()
        plain = Scenario.create(
            "s", example.source, example.target, example.correspondences
        )
        tweaked = Scenario.create(
            "s",
            example.source,
            example.target,
            example.correspondences,
            options=DiscoveryOptions(max_path_edges=4),
        )
        assert scenario_fingerprint(plain) != scenario_fingerprint(tweaked)
