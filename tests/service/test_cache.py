"""Unit tests for the content-addressed result cache."""

import pytest

from repro.datasets.paper_examples import bookstore_example
from repro.discovery.batch import Scenario, scenario_fingerprint
from repro.discovery.options import DiscoveryOptions
from repro.service.cache import ResultCache


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestResultCache:
    def test_put_get_round_trip(self):
        cache = ResultCache(max_entries=4)
        cache.put("a", {"x": 1})
        assert cache.get("a") == {"x": 1}
        assert "a" in cache
        assert len(cache) == 1

    def test_miss_returns_none_and_counts(self):
        cache = ResultCache(max_entries=4)
        assert cache.get("missing") is None
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 0

    def test_lru_eviction_order(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a; b becomes LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats()["evictions"] == 1

    def test_ttl_expiry(self):
        clock = FakeClock()
        cache = ResultCache(max_entries=4, ttl_seconds=10.0, clock=clock)
        cache.put("a", 1)
        clock.advance(9.0)
        assert cache.get("a") == 1
        clock.advance(2.0)
        assert cache.get("a") is None
        stats = cache.stats()
        assert stats["expirations"] == 1
        assert stats["entries"] == 0

    def test_zero_entries_disables_cache(self):
        cache = ResultCache(max_entries=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_clear(self):
        cache = ResultCache(max_entries=4)
        cache.put("a", 1)
        cache.clear()
        assert cache.get("a") is None

    @pytest.mark.parametrize(
        "kwargs",
        [{"max_entries": -1}, {"ttl_seconds": 0.0}, {"ttl_seconds": -5}],
    )
    def test_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            ResultCache(**{"max_entries": 4, **kwargs})


class TestScenarioFingerprint:
    def test_content_not_identity(self):
        first = bookstore_example()
        second = bookstore_example()  # distinct objects, equal content
        fp1 = scenario_fingerprint(
            Scenario.create(
                "one", first.source, first.target, first.correspondences
            )
        )
        fp2 = scenario_fingerprint(
            Scenario.create(
                "two", second.source, second.target, second.correspondences
            )
        )
        assert fp1 == fp2  # scenario_id must not matter

    def test_correspondences_change_key(self):
        example = bookstore_example()
        base = Scenario.create(
            "s", example.source, example.target, example.correspondences
        )
        from repro.correspondences import CorrespondenceSet

        trimmed = Scenario.create(
            "s",
            example.source,
            example.target,
            CorrespondenceSet(list(example.correspondences)[:1]),
        )
        assert scenario_fingerprint(base) != scenario_fingerprint(trimmed)

    def test_mapper_options_change_key(self):
        example = bookstore_example()
        plain = Scenario.create(
            "s", example.source, example.target, example.correspondences
        )
        tweaked = Scenario.create(
            "s",
            example.source,
            example.target,
            example.correspondences,
            options=DiscoveryOptions(max_path_edges=4),
        )
        assert scenario_fingerprint(plain) != scenario_fingerprint(tweaked)
