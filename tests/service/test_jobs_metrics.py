"""Unit tests for the job queue and the metrics sink."""

import pytest

from repro.exceptions import QueueFullError
from repro.service.cache import ResultCache
from repro.service.jobs import JobQueue
from repro.service.metrics import ServiceMetrics, parse_exposition
from repro.service.wire import scenario_from_wire


@pytest.fixture()
def scenario():
    return scenario_from_wire(
        {"dataset": "DBLP", "case": "dblp-article-in-journal"}
    )


@pytest.fixture()
def other_scenario():
    return scenario_from_wire(
        {"dataset": "DBLP", "case": "dblp-book-publisher"}
    )


class TestJobQueue:
    def test_submit_runs_and_caches(self, scenario):
        metrics = ServiceMetrics()
        queue = JobQueue(
            workers=1, capacity=8, cache=ResultCache(), metrics=metrics
        )
        try:
            job, cached = queue.submit(scenario)
            assert cached is False
            assert job.wait(60)
            assert job.state == "done"
            assert job.result["mapping"]["candidates"]
            again, cached = queue.submit(scenario)
            assert cached is True
            assert again.done and again.cached
            assert again.result is job.result  # the exact cached payload
            assert metrics.value("cache_hits_total") == 1
            assert metrics.value("cache_misses_total") == 1
            assert metrics.value("discovery_invocations_total") == 1
        finally:
            queue.stop()

    def test_use_cache_false_recomputes(self, scenario):
        metrics = ServiceMetrics()
        queue = JobQueue(
            workers=1, capacity=8, cache=ResultCache(), metrics=metrics
        )
        try:
            first, _ = queue.submit(scenario)
            assert first.wait(60)
            second, cached = queue.submit(scenario, use_cache=False)
            assert cached is False
            assert second.wait(60)
            assert metrics.value("discovery_invocations_total") == 2
        finally:
            queue.stop()

    def test_backpressure_raises_queue_full(self, scenario, other_scenario):
        # workers=0: nothing drains, so the bounded queue fills up.
        metrics = ServiceMetrics()
        queue = JobQueue(
            workers=0, capacity=1, cache=ResultCache(), metrics=metrics
        )
        queue.submit(scenario)
        with pytest.raises(QueueFullError):
            queue.submit(other_scenario)
        assert metrics.value("jobs_rejected_total") == 1

    def test_identical_inflight_requests_coalesce(self, scenario):
        metrics = ServiceMetrics()
        queue = JobQueue(
            workers=0, capacity=1, cache=ResultCache(), metrics=metrics
        )
        first, cached_first = queue.submit(scenario)
        # Queue is full, but an identical scenario piggybacks anyway.
        second, cached_second = queue.submit(scenario)
        assert cached_first is False and cached_second is True
        assert second is first
        assert metrics.value("cache_coalesced_total") == 1

    def test_failing_scenario_yields_structured_error(self, scenario):
        from repro.correspondences import CorrespondenceSet
        from repro.discovery.batch import Scenario

        empty = Scenario.create(
            "broken",
            scenario.source,
            scenario.target,
            CorrespondenceSet(),
        )
        metrics = ServiceMetrics()
        queue = JobQueue(
            workers=1, capacity=8, cache=ResultCache(), metrics=metrics
        )
        try:
            job, _ = queue.submit(empty)
            assert job.wait(60)
            assert job.state == "error"
            assert job.error["scenario_id"] == "broken"
            assert job.error["type"]
            assert metrics.value("jobs_failed_total") == 1
        finally:
            queue.stop()

    def test_job_lookup_and_history(self, scenario):
        queue = JobQueue(
            workers=1,
            capacity=8,
            cache=ResultCache(),
            metrics=ServiceMetrics(),
        )
        try:
            job, _ = queue.submit(scenario)
            assert queue.job(job.job_id) is job
            assert queue.job("job-unknown") is None
            assert job.wait(60)
            wire = job.to_wire()
            assert wire["state"] == "done"
            assert wire["run_seconds"] >= 0
        finally:
            queue.stop()

    @pytest.mark.parametrize(
        "kwargs",
        [{"workers": -1}, {"capacity": 0}, {"history": 0}],
    )
    def test_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            JobQueue(
                **{
                    "workers": 1,
                    "capacity": 2,
                    "cache": ResultCache(),
                    "metrics": ServiceMetrics(),
                    **kwargs,
                }
            )


class TestServiceMetrics:
    def test_counters_by_label(self):
        metrics = ServiceMetrics()
        metrics.inc("requests_total", endpoint="discover", status="200")
        metrics.inc("requests_total", endpoint="discover", status="200")
        metrics.inc("requests_total", endpoint="discover", status="400")
        assert (
            metrics.value("requests_total", endpoint="discover", status="200")
            == 2
        )
        assert metrics.total("requests_total") == 3

    def test_latency_quantiles(self):
        metrics = ServiceMetrics()
        for ms in range(1, 101):
            metrics.observe("discover", ms / 1000.0)
        p50 = metrics.quantile("discover", 0.5)
        p95 = metrics.quantile("discover", 0.95)
        assert 0.045 <= p50 <= 0.055
        assert 0.090 <= p95 <= 0.100
        assert metrics.quantile("nope", 0.5) is None

    def test_render_and_parse_round_trip(self):
        metrics = ServiceMetrics()
        metrics.inc("requests_total", endpoint="health", status="200")
        metrics.observe("health", 0.002)
        text = metrics.render(gauges={"repro_service_queue_depth": 3})
        values = parse_exposition(text)
        assert (
            values[
                'repro_service_requests_total{endpoint="health",status="200"}'
            ]
            == 1.0
        )
        assert values["repro_service_queue_depth"] == 3.0
        assert (
            'repro_service_request_seconds_count{endpoint="health"}' in values
        )
        assert "# TYPE repro_service_requests_total counter" in text
