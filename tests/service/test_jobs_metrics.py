"""Unit tests for the job queue and the metrics sink."""

import threading
import time

import pytest

from repro.exceptions import QueueFullError
from repro.perf import counters as perf_counters
from repro.service.cache import ResultCache
from repro.service.jobs import JobQueue
from repro.service.metrics import ServiceMetrics, parse_exposition
from repro.service.wire import scenario_from_wire


@pytest.fixture()
def scenario():
    return scenario_from_wire(
        {"dataset": "DBLP", "case": "dblp-article-in-journal"}
    )


@pytest.fixture()
def other_scenario():
    return scenario_from_wire(
        {"dataset": "DBLP", "case": "dblp-book-publisher"}
    )


class TestJobQueue:
    def test_submit_runs_and_caches(self, scenario):
        metrics = ServiceMetrics()
        queue = JobQueue(
            workers=1, capacity=8, cache=ResultCache(), metrics=metrics
        )
        try:
            job, cached = queue.submit(scenario)
            assert cached is False
            assert job.wait(60)
            assert job.state == "done"
            assert job.result["mapping"]["candidates"]
            again, cached = queue.submit(scenario)
            assert cached is True
            assert again.done and again.cached
            assert again.result is job.result  # the exact cached payload
            assert metrics.value("cache_hits_total") == 1
            assert metrics.value("cache_misses_total") == 1
            assert metrics.value("discovery_invocations_total") == 1
        finally:
            queue.stop()

    def test_use_cache_false_recomputes(self, scenario):
        metrics = ServiceMetrics()
        queue = JobQueue(
            workers=1, capacity=8, cache=ResultCache(), metrics=metrics
        )
        try:
            first, _ = queue.submit(scenario)
            assert first.wait(60)
            second, cached = queue.submit(scenario, use_cache=False)
            assert cached is False
            assert second.wait(60)
            assert metrics.value("discovery_invocations_total") == 2
        finally:
            queue.stop()

    def test_backpressure_raises_queue_full(self, scenario, other_scenario):
        # workers=0: nothing drains, so the bounded queue fills up.
        metrics = ServiceMetrics()
        queue = JobQueue(
            workers=0, capacity=1, cache=ResultCache(), metrics=metrics
        )
        queue.submit(scenario)
        with pytest.raises(QueueFullError):
            queue.submit(other_scenario)
        assert metrics.value("jobs_rejected_total") == 1

    def test_identical_inflight_requests_coalesce(self, scenario):
        metrics = ServiceMetrics()
        queue = JobQueue(
            workers=0, capacity=1, cache=ResultCache(), metrics=metrics
        )
        first, cached_first = queue.submit(scenario)
        # Queue is full, but an identical scenario piggybacks anyway.
        second, cached_second = queue.submit(scenario)
        assert cached_first is False and cached_second is True
        assert second is first
        assert metrics.value("cache_coalesced_total") == 1

    def test_failing_scenario_yields_structured_error(self, scenario):
        from repro.correspondences import CorrespondenceSet
        from repro.discovery.batch import Scenario

        empty = Scenario.create(
            "broken",
            scenario.source,
            scenario.target,
            CorrespondenceSet(),
        )
        metrics = ServiceMetrics()
        queue = JobQueue(
            workers=1, capacity=8, cache=ResultCache(), metrics=metrics
        )
        try:
            job, _ = queue.submit(empty)
            assert job.wait(60)
            assert job.state == "error"
            assert job.error["scenario_id"] == "broken"
            assert job.error["type"]
            assert metrics.value("jobs_failed_total") == 1
        finally:
            queue.stop()

    def test_job_lookup_and_history(self, scenario):
        queue = JobQueue(
            workers=1,
            capacity=8,
            cache=ResultCache(),
            metrics=ServiceMetrics(),
        )
        try:
            job, _ = queue.submit(scenario)
            assert queue.job(job.job_id) is job
            assert queue.job("job-unknown") is None
            assert job.wait(60)
            wire = job.to_wire()
            assert wire["state"] == "done"
            assert wire["run_seconds"] >= 0
        finally:
            queue.stop()

    def test_worker_stats_isolated_from_concurrent_scopes(self, scenario):
        """Regression: the perf frame stack was process-global, so a
        concurrent thread's scoped events leaked into a job's
        ``run.stats`` (and vice versa)."""
        stop = threading.Event()
        polluting = threading.Event()

        def pollute():
            with perf_counters.scope():
                polluting.set()
                while not stop.is_set():
                    perf_counters.record("contaminant_event")
                    time.sleep(0)  # yield so the worker makes progress

        thread = threading.Thread(target=pollute)
        thread.start()
        queue = JobQueue(
            workers=1,
            capacity=8,
            cache=ResultCache(),
            metrics=ServiceMetrics(),
        )
        try:
            assert polluting.wait(10)
            job, _ = queue.submit(scenario)
            assert job.wait(60)
            assert job.state == "done"
            stats = job.result["run"]["stats"]
            assert "contaminant_event" not in stats
            # ...while the shared root still aggregates both threads.
            root = perf_counters.global_counters()
            assert root.counts["contaminant_event"] > 0
        finally:
            stop.set()
            thread.join(10)
            queue.stop()

    def test_stop_does_not_block_on_full_queue(
        self, scenario, other_scenario, monkeypatch
    ):
        """Regression: ``stop()`` used a blocking ``put(_STOP)``, so a
        full queue plus a wedged worker blocked shutdown forever."""
        import repro.service.jobs as jobs_mod

        release = threading.Event()
        wedged = threading.Event()

        def blocking_discover(scenarios, workers=1, policy=None):
            wedged.set()
            release.wait(30)
            raise RuntimeError("released by test")

        monkeypatch.setattr(jobs_mod, "discover_many", blocking_discover)
        queue = JobQueue(
            workers=1,
            capacity=1,
            cache=ResultCache(),
            metrics=ServiceMetrics(),
        )
        try:
            first, _ = queue.submit(scenario)  # worker picks this up
            assert wedged.wait(10)
            second, _ = queue.submit(other_scenario)  # fills the queue
            start = time.monotonic()
            with pytest.warns(RuntimeWarning, match="deadline"):
                queue.stop(timeout=0.2)
            assert time.monotonic() - start < 5
            # Submissions after stop() are rejected outright.
            with pytest.raises(QueueFullError):
                queue.submit(scenario)
        finally:
            release.set()
        # Once released, the wedged job fails and the still-queued job
        # is fast-failed instead of running during shutdown.
        assert first.wait(10) and first.state == "error"
        assert second.wait(10) and second.state == "error"
        assert second.error["type"] == "ServiceStopped"

    @pytest.mark.parametrize(
        "kwargs",
        [{"workers": -1}, {"capacity": 0}, {"history": 0}],
    )
    def test_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            JobQueue(
                **{
                    "workers": 1,
                    "capacity": 2,
                    "cache": ResultCache(),
                    "metrics": ServiceMetrics(),
                    **kwargs,
                }
            )


class TestServiceMetrics:
    def test_counters_by_label(self):
        metrics = ServiceMetrics()
        metrics.inc("requests_total", endpoint="discover", status="200")
        metrics.inc("requests_total", endpoint="discover", status="200")
        metrics.inc("requests_total", endpoint="discover", status="400")
        assert (
            metrics.value("requests_total", endpoint="discover", status="200")
            == 2
        )
        assert metrics.total("requests_total") == 3

    def test_latency_quantiles(self):
        metrics = ServiceMetrics()
        for ms in range(1, 101):
            metrics.observe("discover", ms / 1000.0)
        p50 = metrics.quantile("discover", 0.5)
        p95 = metrics.quantile("discover", 0.95)
        assert 0.045 <= p50 <= 0.055
        assert 0.090 <= p95 <= 0.100
        assert metrics.quantile("nope", 0.5) is None

    def test_render_and_parse_round_trip(self):
        metrics = ServiceMetrics()
        metrics.inc("requests_total", endpoint="health", status="200")
        metrics.observe("health", 0.002)
        text = metrics.render(gauges={"repro_service_queue_depth": 3})
        values = parse_exposition(text)
        assert (
            values[
                'repro_service_requests_total{endpoint="health",status="200"}'
            ]
            == 1.0
        )
        assert values["repro_service_queue_depth"] == 3.0
        assert (
            'repro_service_request_seconds_count{endpoint="health"}' in values
        )
        assert "# TYPE repro_service_requests_total counter" in text
