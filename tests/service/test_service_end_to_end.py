"""The PR's acceptance scenario, end to end over real HTTP.

With 2 workers and 20 concurrent ``POST /discover`` requests spread
over 5 distinct scenarios (each repeated 4×), every request must come
back 200, the 15 repeats must be served from the result cache (either a
stored-result hit or a single-flight join onto the in-flight identical
job), and every response's mapping payload must be byte-identical to
what a serial :func:`repro.discovery.batch.discover_many` run produces
for the same scenarios.
"""

import json
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.discovery.batch import discover_many
from repro.service.client import ServiceClient
from repro.service.server import ReproServer, ServiceConfig
from repro.service.wire import result_to_wire, scenario_from_wire

#: Five distinct discovery scenarios drawn from the registered datasets.
CASES = [
    {"dataset": "DBLP", "case": "dblp-article-in-journal"},
    {"dataset": "DBLP", "case": "dblp-book-publisher"},
    {"dataset": "Mondial", "case": "mondial-city-in-country"},
    {"dataset": "Hotel", "case": "hotel-room-of-hotel"},
    {"dataset": "UT", "case": "ut-professor-teaches-course"},
]

#: 20 requests: each of the 5 cases appears 4 times, interleaved so
#: repeats land while the first occurrence may still be in flight.
REQUESTS = [CASES[i % len(CASES)] for i in range(20)]


@pytest.fixture(scope="module")
def serial_mappings():
    """Reference payloads from a plain serial discover_many run."""
    scenarios = [scenario_from_wire(spec) for spec in CASES]
    batch = discover_many(scenarios, workers=1)
    assert not batch.failures
    return {
        scenario_id: json.dumps(
            result_to_wire(result)["mapping"], sort_keys=True
        )
        for scenario_id, result in batch.results
    }


class TestAcceptance:
    def test_twenty_concurrent_discovers_share_five_runs(
        self, serial_mappings
    ):
        config = ServiceConfig(workers=2, queue_capacity=64)
        with ReproServer(config) as server:
            client = ServiceClient(server.url)

            with ThreadPoolExecutor(max_workers=20) as pool:
                responses = list(
                    pool.map(
                        lambda spec: client.request(
                            "POST", "/discover", {"scenario": spec}
                        ),
                        REQUESTS,
                    )
                )

            # 1. Every one of the 20 concurrent requests succeeded.
            statuses = [status for status, _ in responses]
            assert statuses == [200] * 20
            for _, payload in responses:
                assert payload["status"] == "ok"
                assert payload["result"]["mapping"]["candidates"]

            # 2. The 15 repeats were served from the cache: at most one
            #    discovery per distinct scenario, everything else a
            #    stored-result hit or a coalesced join.
            values = client.metrics_values()
            assert values["repro_service_cache_hits_total"] >= 15
            assert values["repro_service_discovery_invocations_total"] <= 5
            cached = sum(
                1 for _, payload in responses if payload["cached"]
            )
            assert cached >= 15

            # 3. Byte-identical to the serial discover_many output —
            #    cached, coalesced, and fresh responses alike.
            for spec, (_, payload) in zip(REQUESTS, responses):
                scenario_id = payload["scenario_id"]
                served = json.dumps(
                    payload["result"]["mapping"], sort_keys=True
                )
                assert served == serial_mappings[scenario_id], (
                    f"served mapping for {scenario_id} differs from the "
                    f"serial reference"
                )

    def test_repeat_traffic_after_warmup_is_all_hits(self):
        config = ServiceConfig(workers=2)
        with ReproServer(config) as server:
            client = ServiceClient(server.url)
            for spec in CASES:
                assert client.discover(spec)["status"] == "ok"
            warm = client.metrics_values()
            for spec in CASES:
                payload = client.discover(spec)
                assert payload["cached"] is True
            after = client.metrics_values()
            assert (
                after["repro_service_discovery_invocations_total"]
                == warm["repro_service_discovery_invocations_total"]
            )
            assert (
                after["repro_service_cache_hits_total"]
                - warm.get("repro_service_cache_hits_total", 0.0)
                == len(CASES)
            )
