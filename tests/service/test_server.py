"""HTTP-level tests for the mapping-discovery server."""

import http.client
import json
import threading

import pytest

from repro.exceptions import ServiceCallError
from repro.service.client import ServiceClient
from repro.service.metrics import parse_exposition
from repro.service.server import MappingService, ReproServer, ServiceConfig

DBLP_CASE = {"dataset": "DBLP", "case": "dblp-article-in-journal"}


@pytest.fixture(scope="module")
def server():
    with ReproServer(ServiceConfig(workers=2)) as running:
        yield running


@pytest.fixture(scope="module")
def client(server):
    return ServiceClient(server.url)


class TestHealthAndMetrics:
    def test_health(self, client):
        payload = client.health()
        assert payload["status"] == "ok"
        assert payload["workers"] == 2
        assert payload["queue_capacity"] == 64
        assert "cache" in payload and "jobs" in payload

    def test_metrics_exposition(self, client):
        client.health()  # guarantee at least one counted request
        client.discover(DBLP_CASE)  # populate the perf-layer counters
        values = client.metrics_values()
        assert values["repro_service_workers"] == 2.0
        assert "repro_service_queue_depth" in values
        assert any(
            series.startswith("repro_service_requests_total")
            for series in values
        )
        assert any(series.startswith("repro_perf_") for series in values)

    def test_unknown_endpoint_404(self, client):
        status, payload = client.request("GET", "/nope")
        assert status == 404
        assert payload["error"]["type"] == "UnknownEndpoint"
        status, payload = client.request("POST", "/nope", {})
        assert status == 404


class TestValidate:
    def test_valid_scenario(self, client):
        payload = client.validate(DBLP_CASE)
        assert payload["ok"] is True
        assert payload["diagnostics"] == []

    def test_invalid_scenario_reports_diagnostics(self, client):
        pair_case = dict(DBLP_CASE)
        pair_case["correspondences"] = ["missing.col <-> alsomissing.col"]
        del pair_case["case"]
        payload = client.validate(pair_case)
        assert payload["ok"] is False
        assert payload["diagnostics"]
        assert all(
            {"severity", "code", "message"} <= set(d)
            for d in payload["diagnostics"]
        )

    def test_unparseable_request_400(self, client):
        status, payload = client.request("POST", "/validate", {"nope": 1})
        assert status == 400
        assert payload["error"]["type"] == "WireFormatError"


class TestDiscover:
    def test_sync_discover_and_cached_repeat(self, client):
        first = client.discover(DBLP_CASE, use_cache=False)
        assert first["status"] == "ok"
        assert first["result"]["mapping"]["format"] == "repro-mappings/1"
        assert first["result"]["mapping"]["candidates"]

        second = client.discover(DBLP_CASE)
        assert second["status"] == "ok"
        assert second["cached"] is True
        assert json.dumps(
            first["result"]["mapping"], sort_keys=True
        ) == json.dumps(second["result"]["mapping"], sort_keys=True)

    def test_async_discover_polls_to_done(self, client):
        spec = {"dataset": "DBLP", "case": "dblp-book-publisher"}
        accepted = client.discover(spec, mode="async")
        assert accepted["status"] == "accepted"
        assert accepted["state"] in ("queued", "running", "done")
        final = client.wait_for_job(accepted["job_id"])
        assert final["state"] == "done"
        assert final["result"]["mapping"]["candidates"]

    def test_validation_gate_rejects_before_queueing(self, client):
        before = client.metrics_values().get(
            "repro_service_discovery_invocations_total", 0.0
        )
        bad = {
            "dataset": "DBLP",
            "correspondences": ["missing.col <-> alsomissing.col"],
        }
        status, payload = client.request(
            "POST", "/discover", {"scenario": bad}
        )
        assert status == 400
        assert payload["status"] == "invalid"
        assert payload["error"]["type"] == "ValidationError"
        assert len(payload["error"]["diagnostics"]) >= 1
        after = client.metrics_values().get(
            "repro_service_discovery_invocations_total", 0.0
        )
        assert after == before  # rejected before any discovery ran

    def test_malformed_body_400(self, client):
        status, payload = client.request("POST", "/discover", {"mode": 3})
        assert status == 400
        assert payload["status"] == "bad-request"

    def test_client_checked_call_raises(self, client):
        with pytest.raises(ServiceCallError) as excinfo:
            client.job("job-does-not-exist")
        assert excinfo.value.status == 404

    def test_jobs_endpoint_unknown_id(self, client):
        status, payload = client.request("GET", "/jobs/job-unknown")
        assert status == 404
        assert payload["error"]["type"] == "UnknownJob"

    def test_async_coalesced_202_echoes_caller_scenario_id(
        self, monkeypatch
    ):
        """Regression: a coalesced async submit returned the *first*
        submitter's scenario_id in the 202 response."""
        import repro.service.jobs as jobs_mod

        release = threading.Event()

        def blocking_discover(scenarios, workers=1, policy=None):
            release.wait(30)
            raise RuntimeError("released by test")

        monkeypatch.setattr(jobs_mod, "discover_many", blocking_discover)
        service = MappingService(ServiceConfig(workers=1))
        try:
            first_status, first = service.handle_discover(
                {"scenario": {**DBLP_CASE, "id": "caller-one"},
                 "mode": "async"}
            )
            second_status, second = service.handle_discover(
                {"scenario": {**DBLP_CASE, "id": "caller-two"},
                 "mode": "async"}
            )
            assert first_status == 202 and second_status == 202
            # Same content → same coalesced job...
            assert second["job_id"] == first["job_id"]
            # ...but each caller sees the id *they* supplied.
            assert first["scenario_id"] == "caller-one"
            assert second["scenario_id"] == "caller-two"
        finally:
            release.set()
            service.close()


def _mapping_document(source, target, covered):
    from repro.correspondences import Correspondence
    from repro.mappings import MappingCandidate, MappingSet
    from repro.mappings.serialize import mapping_set_to_dict
    from repro.queries.parser import parse_query

    candidate = MappingCandidate(
        parse_query(source),
        parse_query(target),
        (Correspondence.parse(covered),),
    )
    return mapping_set_to_dict(MappingSet.of([candidate]))


class TestCompose:
    FIRST = staticmethod(
        lambda: _mapping_document(
            "ans(n) :- person(n)",
            "ans(n) :- emp(n)",
            "person.name <-> emp.name",
        )
    )
    SECOND = staticmethod(
        lambda: _mapping_document(
            "ans(n) :- emp(n)",
            "ans(n) :- worker(n)",
            "emp.name <-> worker.name",
        )
    )

    def test_compose_round_trips_mapping_documents(self, client):
        status, payload = client.request(
            "POST",
            "/compose",
            {"first": self.FIRST(), "second": self.SECOND()},
        )
        assert status == 200 and payload["status"] == "ok"
        assert payload["composed"] == 1
        assert payload["inputs"] == {"first": 1, "second": 1}
        assert payload["mapping"]["format"] == "repro-mappings/1"
        from repro.mappings.serialize import mapping_set_from_dict

        (candidate,) = mapping_set_from_dict(payload["mapping"])
        assert candidate.method == "composed"
        assert [str(c) for c in candidate.covered] == [
            "person.name ↔ worker.name"
        ]

    def test_compose_with_inversion(self, client):
        status, payload = client.request(
            "POST",
            "/compose",
            {
                "first": self.FIRST(),
                "second": self.SECOND(),
                "invert": True,
            },
        )
        assert status == 200
        inversion = payload["inversion"]
        assert inversion["exact"] is True
        assert inversion["reports"][0]["invertible"] is True
        assert inversion["mapping"]["format"] == "repro-mappings/1"

    def test_missing_mapping_set_400(self, client):
        status, payload = client.request(
            "POST", "/compose", {"first": self.FIRST()}
        )
        assert status == 400
        assert payload["error"]["type"] == "WireFormatError"
        assert "second" in payload["error"]["message"]

    def test_malformed_mapping_set_400(self, client):
        status, payload = client.request(
            "POST",
            "/compose",
            {"first": {"format": "other"}, "second": self.SECOND()},
        )
        assert status == 400
        assert "first" in payload["error"]["message"]

    def test_bad_option_types_400(self, client):
        status, payload = client.request(
            "POST",
            "/compose",
            {
                "first": self.FIRST(),
                "second": self.SECOND(),
                "prune": "yes",
            },
        )
        assert status == 400
        assert "prune" in payload["error"]["message"]


class TestHandlerErrorGuards:
    def test_get_handler_exception_returns_500_json(self):
        """Regression: exceptions inside GET dispatch escaped the
        handler, dropping the connection instead of answering 500."""
        with ReproServer(ServiceConfig(workers=1)) as running:

            def boom():
                raise RuntimeError("snapshot race (test)")

            running.service.health = boom
            client = ServiceClient(running.url)
            status, payload = client.request("GET", "/health")
            assert status == 500
            assert payload["status"] == "error"
            assert payload["error"]["type"] == "RuntimeError"
            values = parse_exposition(client.metrics_text())
            assert (
                values[
                    'repro_service_requests_total{endpoint="health",status="500"}'
                ]
                >= 1.0
            )

    def test_negative_content_length_rejected(self, server):
        """Regression: a negative Content-Length reached
        ``rfile.read(-1)``, pinning the handler thread until the client
        hung up."""
        conn = http.client.HTTPConnection(
            server.config.host, server.port, timeout=5
        )
        try:
            conn.putrequest("POST", "/validate")
            conn.putheader("Content-Length", "-1")
            conn.endheaders()
            response = conn.getresponse()
            payload = json.loads(response.read())
            assert response.status == 400
            assert payload["error"]["type"] == "WireFormatError"
            assert "Content-Length" in payload["error"]["message"]
        finally:
            conn.close()


class TestBackpressure:
    def test_full_queue_gets_429_with_retry_after(self):
        # A dedicated server whose submit path always reports a full
        # queue: every discover request must surface as HTTP 429.
        from repro.exceptions import QueueFullError

        with ReproServer(
            ServiceConfig(workers=1, queue_capacity=1)
        ) as running:
            service = running.service

            def always_full(scenario, use_cache=True):
                raise QueueFullError("job queue is at capacity (test)")

            service.jobs.submit = always_full
            client = ServiceClient(running.url)
            status, payload = client.request(
                "POST", "/discover", {"scenario": DBLP_CASE}
            )
            assert status == 429
            assert payload["status"] == "rejected"
            assert payload["error"]["type"] == "QueueFullError"
            text = client.metrics_text()
            values = parse_exposition(text)
            assert (
                values[
                    'repro_service_requests_total{endpoint="discover",status="429"}'
                ]
                >= 1.0
            )


class TestServerLifecycle:
    def test_port_zero_resolves_and_context_manager_cleans_up(self):
        with ReproServer(ServiceConfig(port=0)) as running:
            assert running.port > 0
            assert str(running.port) in running.url
            client = ServiceClient(running.url)
            assert client.health()["status"] == "ok"
        # After shutdown the socket is closed: a new request must fail.
        with pytest.raises(ServiceCallError):
            ServiceClient(running.url, timeout=0.5).health()
