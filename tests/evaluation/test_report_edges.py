"""Edge-case tests for the report renderers."""

from repro.evaluation.report import (
    _bar,
    render_case_details,
    render_figure6,
    render_figure7,
    render_table1,
)


class TestBar:
    def test_full_and_empty(self):
        assert "·" not in _bar(1.0)
        assert "█" not in _bar(0.0)

    def test_half(self):
        bar = _bar(0.5)
        assert bar.count("█") == len(bar) - bar.count("·")


class TestEmptyResults:
    def test_table1_renders_header_only(self):
        text = render_table1([])
        assert text.startswith("Table 1.")

    def test_figures_render_overall_zero(self):
        assert "OVERALL" in render_figure6([])
        assert "OVERALL" in render_figure7([])

    def test_case_details_header_only(self):
        assert render_case_details([]) == "Per-case results:"
