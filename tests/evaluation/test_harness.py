"""Integration tests: the harness reproduces the paper's result shapes.

These run both methods over the reconstructed datasets, so they are the
slowest tests in the suite — but they ARE the reproduction: semantic
recall 1.0 everywhere, semantic precision ≥ RIC everywhere.
"""

import pytest

from repro.datasets.registry import dataset_names, load_dataset
from repro.evaluation import (
    RIC,
    SEMANTIC,
    render_case_details,
    render_figure6,
    render_figure7,
    render_table1,
    run_case,
    run_dataset,
)


@pytest.fixture(scope="module")
def all_results():
    return {name: run_dataset(load_dataset(name)) for name in dataset_names()}


class TestPaperShapes:
    def test_semantic_recall_is_perfect_everywhere(self, all_results):
        """Figure 7's headline: the semantic approach 'did not miss any
        correct mappings' — average recall 1.0 on every domain."""
        for name, result in all_results.items():
            assert result.average_recall(SEMANTIC) == 1.0, name

    def test_semantic_recall_dominates_ric(self, all_results):
        for name, result in all_results.items():
            assert result.average_recall(SEMANTIC) >= result.average_recall(
                RIC
            ), name

    def test_semantic_precision_dominates_ric(self, all_results):
        """Figure 6's headline: significantly improved precision."""
        for name, result in all_results.items():
            assert (
                result.average_precision(SEMANTIC)
                > result.average_precision(RIC)
            ), name

    def test_ric_misses_composition_cases(self, all_results):
        """The RIC technique must fail somewhere (the paper's motivation),
        but not everywhere (it is a credible baseline)."""
        recalls = [r.average_recall(RIC) for r in all_results.values()]
        assert any(recall < 1.0 for recall in recalls)
        assert all(recall > 0.0 for recall in recalls)

    def test_generation_time_insignificant(self, all_results):
        """Per-domain semantic generation stays in interactive range."""
        for name, result in all_results.items():
            assert result.total_time(SEMANTIC) < 30.0, name


class TestHarnessMechanics:
    def test_run_case_semantic_and_ric(self):
        pair = load_dataset("Hotel")
        semantic = run_case(pair, pair.cases[0], SEMANTIC)
        ric = run_case(pair, pair.cases[0], RIC)
        assert semantic.method == SEMANTIC
        assert ric.method == RIC
        assert semantic.measures.recall == 1.0

    def test_unknown_method_rejected(self):
        pair = load_dataset("Hotel")
        with pytest.raises(ValueError):
            run_case(pair, pair.cases[0], "magic")

    def test_dataset_result_accessors(self, all_results):
        hotel = all_results["Hotel"]
        assert len(hotel.results_for(SEMANTIC)) == 5
        assert len(hotel.results_for(RIC)) == 5
        assert hotel.total_time(SEMANTIC) > 0


class TestReports:
    def test_table1_mentions_all_schemas(self, all_results):
        text = render_table1(list(all_results.values()))
        for label in ["DBLP1", "Mondial2", "UTCS", "HotelB", "NetworkA"]:
            assert label in text

    def test_figures_render_bars(self, all_results):
        results = list(all_results.values())
        fig6 = render_figure6(results)
        fig7 = render_figure7(results)
        assert "Average Precision" in fig6
        assert "Average Recall" in fig7
        assert "█" in fig6 and "OVERALL" in fig6

    def test_case_details(self, all_results):
        text = render_case_details(list(all_results.values()))
        assert "hotel-guest-rate" in text


class TestFailureHandling:
    """--fail-fast / --keep-going semantics of the harness."""

    @pytest.fixture
    def broken_ric(self, monkeypatch):
        from repro.baseline import clio

        def _boom(self):
            raise RuntimeError("baseline exploded")

        monkeypatch.setattr(clio.RICBasedMapper, "discover", _boom)

    def test_fail_fast_propagates(self, broken_ric):
        pair = load_dataset("Hotel")
        with pytest.raises(RuntimeError, match="baseline exploded"):
            run_dataset(pair, fail_fast=True)

    def test_keep_going_records_structured_failures(self, broken_ric):
        pair = load_dataset("Hotel")
        result = run_dataset(pair, fail_fast=False)
        assert not result.ok
        assert len(result.failures) == len(pair.cases)
        for failure in result.failures:
            assert failure.error_type == "RuntimeError"
            assert "[ric]" in failure.scenario_id
        # The semantic method still scored every case.
        assert len(result.results_for(SEMANTIC)) == len(pair.cases)
        assert result.average_recall(SEMANTIC) == 1.0

    def test_failures_render_in_reports(self, broken_ric):
        from repro.evaluation import render_failures

        pair = load_dataset("Hotel")
        result = run_dataset(pair, fail_fast=False)
        text = render_failures([result])
        assert "produced no result" in text
        assert "RuntimeError" in text
        details = render_case_details([result])
        assert "FAILED" in details

    def test_clean_run_reports_no_failures(self):
        from repro.evaluation import render_failures

        pair = load_dataset("UT")
        result = run_dataset(pair)
        assert result.ok
        assert render_failures([result]) == "Failures: none"
