"""Unit tests for precision/recall measures and constraint closure."""

import pytest

from repro.correspondences import Correspondence
from repro.evaluation.measures import (
    average,
    constraint_closure,
    intersection_size,
    precision_recall,
)
from repro.mappings import MappingCandidate
from repro.queries.homomorphism import are_equivalent
from repro.queries.parser import parse_query
from repro.relational import ReferentialConstraint, RelationalSchema, Table


def candidate(source_text, target_text, covered=("a.x <-> t.u",)):
    return MappingCandidate(
        parse_query(source_text),
        parse_query(target_text),
        tuple(Correspondence.parse(c) for c in covered),
    )


class TestPrecisionRecall:
    def test_perfect_match(self):
        gold = candidate("ans(x) :- a(x)", "ans(x) :- t(x)")
        result = precision_recall([gold], [gold])
        assert result.precision == 1.0
        assert result.recall == 1.0

    def test_extra_candidates_hurt_precision(self):
        gold = candidate("ans(x) :- a(x)", "ans(x) :- t(x)")
        noise = candidate("ans(x) :- b(x)", "ans(x) :- t(x)")
        result = precision_recall([gold, noise], [gold])
        assert result.precision == 0.5
        assert result.recall == 1.0

    def test_missing_gold_hurts_recall(self):
        gold1 = candidate("ans(x) :- a(x)", "ans(x) :- t(x)")
        gold2 = candidate("ans(x) :- b(x)", "ans(x) :- t(x)")
        result = precision_recall([gold1], [gold1, gold2])
        assert result.recall == 0.5

    def test_empty_generated_scores_zero(self):
        gold = candidate("ans(x) :- a(x)", "ans(x) :- t(x)")
        result = precision_recall([], [gold])
        assert result.precision == 0.0
        assert result.recall == 0.0

    def test_each_gold_matches_once(self):
        gold = candidate("ans(x) :- a(x)", "ans(x) :- t(x)")
        result = precision_recall([gold], [gold, gold])
        assert result.matched == 1

    def test_str(self):
        gold = candidate("ans(x) :- a(x)", "ans(x) :- t(x)")
        text = str(precision_recall([gold], [gold]))
        assert "P=1.00" in text and "R=1.00" in text


class TestConstraintClosure:
    @pytest.fixture
    def schema(self):
        schema = RelationalSchema("s")
        schema.add_table(Table("writes", ["pname", "bid"], ["pname", "bid"]))
        schema.add_table(Table("book", ["bid"], ["bid"]))
        schema.add_ric(ReferentialConstraint.parse("writes.bid -> book.bid"))
        return schema

    def test_chase_adds_implied_atoms(self, schema):
        query = parse_query("ans(x) :- writes(x, y)")
        closed = constraint_closure(query, schema)
        assert {a.bare_predicate for a in closed.body} == {"writes", "book"}

    def test_ric_implied_join_considered_equal(self, schema):
        lean = candidate("ans(x) :- writes(x, y)", "ans(x) :- t(x)")
        fat = candidate("ans(x) :- writes(x, y), book(y)", "ans(x) :- t(x)")
        assert intersection_size([lean], [fat], schema, None) == 1
        # Without the schema they differ.
        assert intersection_size([lean], [fat]) == 0

    def test_closure_without_schema_is_boolean_body(self):
        query = parse_query("ans(x) :- r(x, y)")
        closed = constraint_closure(query, None)
        assert closed.head_terms == ()
        assert are_equivalent(closed, parse_query("ans() :- r(x, y)"))


class TestAverage:
    def test_plain(self):
        assert average([1.0, 0.0]) == 0.5

    def test_empty(self):
        assert average([]) == 0.0
