"""Unit tests for the dataset framework and registry."""

import pytest

from repro.datasets.registry import (
    benchmark_mapping,
    case,
    dataset_names,
    load_all_datasets,
    load_dataset,
)
from repro.exceptions import DatasetError


class TestRegistry:
    def test_all_seven_domains_registered(self):
        assert dataset_names() == (
            "DBLP",
            "Mondial",
            "Amalgam",
            "3Sdb",
            "UT",
            "Hotel",
            "Network",
        )

    def test_load_by_name(self):
        pair = load_dataset("Hotel")
        assert pair.name == "Hotel"

    def test_unknown_name_rejected(self):
        with pytest.raises(DatasetError):
            load_dataset("Ghost")

    def test_load_all(self):
        pairs = load_all_datasets()
        assert len(pairs) == 7

    def test_cold_registry_load_is_thread_safe(self, monkeypatch):
        """Regression: ``_ensure_loaded`` returned as soon as the first
        dataset module registered, so a thread racing a cold load could
        see a partial registry (``unknown dataset 'Hotel'; have
        ['DBLP']`` from the service's handler threads)."""
        import sys
        import threading

        from repro.datasets import registry

        # Simulate a cold process: empty registry, unset flag, and the
        # dataset modules evicted (from sys.modules AND the package's
        # attributes — a stale attribute makes ``from repro.datasets
        # import dblp`` skip the re-import) so their imports re-run.
        import repro.datasets as datasets_pkg

        monkeypatch.setattr(registry, "_BUILDERS", {})
        monkeypatch.setattr(registry, "_LOADED", False)
        for module in list(sys.modules):
            if (
                module.startswith("repro.datasets.")
                and module != "repro.datasets.registry"
            ):
                monkeypatch.delitem(sys.modules, module)
                short = module.rsplit(".", 1)[1]
                if hasattr(datasets_pkg, short):
                    monkeypatch.delattr(datasets_pkg, short)

        barrier = threading.Barrier(8)
        errors: list[BaseException] = []

        def probe():
            barrier.wait(timeout=10)
            try:
                registry.load_dataset("Hotel")
            except BaseException as error:
                errors.append(error)

        threads = [threading.Thread(target=probe) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert len(registry.dataset_names()) == 7


class TestTable1Characteristics:
    """The reconstructed pairs match the paper's Table 1 exactly."""

    EXPECTED = {
        # name: (src tables, tgt tables, src CM nodes, tgt CM nodes, cases)
        "DBLP": (22, 9, 75, 7, 6),
        "Mondial": (28, 26, 52, 26, 5),
        "Amalgam": (15, 27, 8, 26, 7),
        "3Sdb": (9, 9, 9, 11, 3),
        "UT": (8, 13, 105, 62, 2),
        "Hotel": (6, 5, 7, 7, 5),
        "Network": (18, 19, 28, 27, 6),
    }

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_counts(self, name):
        pair = load_dataset(name)
        expected = self.EXPECTED[name]
        actual = (
            pair.source_table_count(),
            pair.target_table_count(),
            pair.source_cm_node_count(),
            pair.target_cm_node_count(),
            pair.mapping_count(),
        )
        assert actual == expected

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_correspondences_validate(self, name):
        pair = load_dataset(name)
        for mapping_case in pair.cases:
            mapping_case.correspondences.validate(
                pair.source.schema, pair.target.schema
            )

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_benchmarks_reference_real_tables(self, name):
        pair = load_dataset(name)
        for mapping_case in pair.cases:
            for gold in mapping_case.benchmark:
                for atom in gold.source_query.body:
                    table = pair.source.schema.table(atom.bare_predicate)
                    assert table.arity == atom.arity, (
                        f"{mapping_case.case_id}: {atom} vs {table}"
                    )
                for atom in gold.target_query.body:
                    table = pair.target.schema.table(atom.bare_predicate)
                    assert table.arity == atom.arity, (
                        f"{mapping_case.case_id}: {atom} vs {table}"
                    )


class TestCaseHelpers:
    def test_benchmark_mapping_builder(self):
        gold = benchmark_mapping(
            "ans(v1) :- person(v1)",
            "ans(v1) :- author(v1)",
            ["person.pname <-> author.aname"],
        )
        assert gold.method == "benchmark"
        assert len(gold.covered) == 1

    def test_case_requires_benchmarks(self):
        with pytest.raises(DatasetError):
            case("empty", "desc", ["a.x <-> b.y"], [])
