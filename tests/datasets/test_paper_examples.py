"""Structural tests for the paper-example scenario builders."""

import pytest

from repro.datasets.paper_examples import (
    bookstore_example,
    employee_example,
    partof_example,
    project_example,
)


class TestBookstore:
    def test_matches_figure_1(self):
        scenario = bookstore_example()
        # er2rel emits entity tables first, then relationship tables.
        assert set(scenario.source.schema.table_names()) == {
            "person",
            "writes",
            "book",
            "soldat",
            "bookstore",
        }
        rics = {str(r) for r in scenario.source.schema.rics}
        assert rics == {
            "writes.pname -> person.pname",
            "writes.bid -> book.bid",
            "soldat.bid -> book.bid",
            "soldat.sid -> bookstore.sid",
        }
        assert len(scenario.correspondences) == 2

    def test_target_relationship_is_many_many(self):
        scenario = bookstore_example()
        rel = scenario.target.model.relationship("hasBookSoldAt")
        assert rel.is_many_many


class TestEmployee:
    def test_source_tables_match_example_1_2(self):
        scenario = employee_example()
        assert scenario.source.schema.table("programmer").columns == (
            "ssn",
            "name",
            "acnt",
        )
        assert scenario.source.schema.table("engineer").columns == (
            "ssn",
            "name",
            "site",
        )

    def test_keys_do_not_correspond(self):
        scenario = employee_example()
        sources = {c.source.name for c in scenario.correspondences}
        targets = {c.target.name for c in scenario.correspondences}
        assert "ssn" not in sources
        assert "eid" not in targets

    def test_disjoint_variant_declares_disjointness(self):
        plain = employee_example()
        disjoint = employee_example(disjoint_subclasses=True)
        assert not plain.source.model.disjointness_groups
        assert disjoint.source.model.disjointness_groups == (
            frozenset({"Engineer", "Programmer"}),
        )


class TestPartOf:
    def test_chairof_is_partof_deanof_is_not(self):
        from repro.cm import SemanticType

        scenario = partof_example()
        model = scenario.source.model
        assert (
            model.relationship("chairOf").semantic_type
            is SemanticType.PART_OF
        )
        assert (
            model.relationship("deanOf").semantic_type is SemanticType.PLAIN
        )

    def test_target_flag_controls_foo(self):
        from repro.cm import SemanticType

        partof = partof_example(target_is_partof=True)
        plain = partof_example(target_is_partof=False)
        assert (
            partof.target.model.relationship("foo").semantic_type
            is SemanticType.PART_OF
        )
        assert (
            plain.target.model.relationship("foo").semantic_type
            is SemanticType.PLAIN
        )


class TestProject:
    def test_target_table_is_merged_wide(self):
        scenario = project_example()
        assert scenario.target.schema.table("proj").columns == (
            "pnum",
            "dept",
            "emp",
        )

    def test_anchored_target_stree(self):
        scenario = project_example()
        tree = scenario.target.tree("proj")
        assert tree.is_anchored_functional()
        assert tree.anchor.cm_node == "Proj"


@pytest.mark.parametrize(
    "builder",
    [bookstore_example, employee_example, partof_example, project_example],
)
def test_scenarios_validate(builder):
    scenario = builder()
    scenario.correspondences.validate(
        scenario.source.schema, scenario.target.schema
    )
    assert scenario.name
    assert scenario.description
