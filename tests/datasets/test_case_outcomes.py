"""Regression pins: the measured outcome of every benchmark case.

These are the numbers EXPERIMENTS.md reports. Pinning them per case
means any algorithm change that silently shifts the reproduction —
a missed composition, a new spurious candidate — fails loudly here.

Semantic recall must be 1.0 on every case (the paper's headline);
the RIC-based recall pattern encodes *which* phenomena the baseline
handles and which it provably cannot.
"""

import pytest

from repro.datasets.registry import load_dataset
from repro.evaluation.harness import RIC, SEMANTIC, run_case

#: case id → (semantic generated-count, RIC recall)
EXPECTED = {
    # DBLP
    "dblp-article-in-journal": (1, 1.0),
    "dblp-author-of-publication": (1, 1.0),
    "dblp-author-in-journal": (1, 0.0),
    "dblp-paper-at-conference": (1, 1.0),
    "dblp-book-publisher": (1, 1.0),
    "dblp-author-at-conference": (1, 0.0),
    # Mondial
    "mondial-city-in-country": (1, 1.0),
    "mondial-river-through-country": (1, 1.0),
    "mondial-language-spoken": (1, 1.0),
    "mondial-org-hq-city": (1, 1.0),
    "mondial-mountain-continent": (1, 0.0),
    # Amalgam
    "amalgam-article-basic": (1, 1.0),
    "amalgam-author-of-article": (1, 1.0),
    "amalgam-author-journal": (1, 0.0),
    "amalgam-techreport-institution": (2, 1.0),
    "amalgam-author-trivial": (1, 1.0),
    "amalgam-author-publisher": (1, 0.0),
    "amalgam-author-institution": (5, 0.0),
    # 3Sdb
    "sdb-assay-in-experiment": (1, 1.0),
    "sdb-measurement-levels": (1, 1.0),
    "sdb-sample-gene": (1, 0.0),
    # UT
    "ut-professor-teaches-course": (1, 1.0),
    "ut-course-project-of-person": (2, 0.0),
    # Hotel
    "hotel-room-of-hotel": (1, 1.0),
    "hotel-guest-stays-at-hotel": (1, 1.0),
    "hotel-rate-of-room": (1, 1.0),
    "hotel-guest-rate": (1, 0.0),
    "hotel-trivial-hotel-property": (1, 1.0),
    # Network
    "network-interface-of-device": (1, 1.0),
    "network-router-switch-merge": (1, 0.0),
    "network-device-at-site": (1, 1.0),
    "network-link-carrier": (1, 1.0),
    "network-vlan-membership": (1, 1.0),
    "network-vlan-link": (1, 0.0),
}

DATASET_OF_CASE = {
    case_id: case_id.split("-")[0] for case_id in EXPECTED
}
_DATASET_NAMES = {
    "dblp": "DBLP",
    "mondial": "Mondial",
    "amalgam": "Amalgam",
    "sdb": "3Sdb",
    "ut": "UT",
    "hotel": "Hotel",
    "network": "Network",
}


@pytest.fixture(scope="module")
def pairs():
    return {
        name: load_dataset(name) for name in set(_DATASET_NAMES.values())
    }


@pytest.mark.parametrize("case_id", sorted(EXPECTED))
def test_case_outcome(pairs, case_id):
    expected_generated, expected_ric_recall = EXPECTED[case_id]
    pair = pairs[_DATASET_NAMES[DATASET_OF_CASE[case_id]]]
    (mapping_case,) = [c for c in pair.cases if c.case_id == case_id]

    semantic = run_case(pair, mapping_case, SEMANTIC)
    assert semantic.measures.recall == 1.0, "semantic recall must hold"
    assert semantic.measures.generated == expected_generated

    ric = run_case(pair, mapping_case, RIC)
    assert ric.measures.recall == expected_ric_recall
