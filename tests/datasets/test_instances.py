"""Unit tests for the synthetic instance generator."""

import pytest

from repro.datasets.instances import generate_instance, referential_order
from repro.datasets.registry import dataset_names, load_dataset
from repro.exceptions import DatasetError
from repro.relational import ReferentialConstraint, RelationalSchema, Table


class TestReferentialOrder:
    def test_parents_precede_children(self):
        schema = RelationalSchema("s")
        schema.add_table(Table("child", ["k", "p"], ["k"]))
        schema.add_table(Table("parent", ["p"], ["p"]))
        schema.add_ric(ReferentialConstraint.parse("child.p -> parent.p"))
        order = referential_order(schema)
        assert order.index("parent") < order.index("child")

    def test_cycles_handled(self):
        schema = RelationalSchema("s")
        schema.add_table(Table("emp", ["eid", "mgr"], ["eid"]))
        schema.add_ric(ReferentialConstraint.parse("emp.mgr -> emp.eid"))
        assert referential_order(schema) == ["emp"]


class TestGenerateInstance:
    def test_rejects_nonpositive_rows(self):
        schema = RelationalSchema("s", [Table("t", ["a"], ["a"])])
        with pytest.raises(DatasetError):
            generate_instance(schema, rows_per_table=0)

    def test_deterministic(self):
        pair = load_dataset("Hotel")
        first = generate_instance(pair.source.schema, rows_per_table=4)
        second = generate_instance(pair.source.schema, rows_per_table=4)
        for name in pair.source.schema.table_names():
            assert first.rows(name) == second.rows(name)

    def test_seed_changes_data(self):
        pair = load_dataset("Hotel")
        first = generate_instance(pair.source.schema, seed=1)
        second = generate_instance(pair.source.schema, seed=2)
        assert any(
            first.rows(name) != second.rows(name)
            for name in pair.source.schema.table_names()
        )

    @pytest.mark.parametrize("name", sorted(dataset_names()))
    def test_all_dataset_schemas_get_consistent_instances(self, name):
        pair = load_dataset(name)
        for semantics in (pair.source, pair.target):
            instance = generate_instance(semantics.schema, rows_per_table=3)
            assert instance.is_consistent(), semantics.schema.name
            for table in semantics.schema:
                assert instance.size(table.name) >= 1
