"""Synthetic scale-family generators: sizes, determinism, coverage."""

from __future__ import annotations

import pytest

from repro.datasets import synthetic
from repro.discovery.mapper import SemanticMapper


def test_class_counts_match_formulas():
    assert synthetic.class_count(synthetic.chain_model("m", 4)) == 10
    assert (
        synthetic.class_count(synthetic.isa_fan_model("m", 3, 4))
        == 4 * 5
    )
    assert synthetic.class_count(synthetic.reified_web_model("m", 4)) == 9


def test_scale_point_respects_budget():
    for family in synthetic.FAMILY_NAMES:
        for budget in (10, 40, 120):
            actual, _ = synthetic.scale_point(family, budget)
            assert actual <= budget, (family, budget, actual)


def test_generators_are_deterministic():
    for family in synthetic.FAMILY_NAMES:
        _, (source, _, correspondences) = synthetic.scale_point(family, 12)
        _, (again, _, same_correspondences) = synthetic.scale_point(
            family, 12
        )
        assert [str(v) for v in source.views()] == [
            str(v) for v in again.views()
        ]
        assert [str(c) for c in correspondences] == [
            str(c) for c in same_correspondences
        ]


@pytest.mark.parametrize("family", synthetic.FAMILY_NAMES)
def test_smallest_point_discovers_a_candidate(family):
    _, (source, target, correspondences) = synthetic.scale_point(family, 10)
    result = SemanticMapper(source, target, correspondences).discover()
    assert len(result) >= 1
