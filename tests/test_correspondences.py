"""Unit tests for correspondences and lifting."""

import pytest

from repro.cm import CMGraph, ConceptualModel
from repro.correspondences import (
    Correspondence,
    CorrespondenceSet,
)
from repro.exceptions import CorrespondenceError
from repro.relational import Column, RelationalSchema, Table
from repro.semantics import SchemaSemantics, SemanticTree


class TestCorrespondence:
    def test_parse_ascii_arrow(self):
        corr = Correspondence.parse("person.pname <-> hasBookSoldAt.aname")
        assert corr.source == Column("person", "pname")
        assert corr.target == Column("hasBookSoldAt", "aname")

    def test_parse_unicode_arrow(self):
        corr = Correspondence.parse("a.x ↔ b.y")
        assert corr.source == Column("a", "x")

    def test_parse_requires_arrow(self):
        with pytest.raises(CorrespondenceError):
            Correspondence.parse("a.x = b.y")

    def test_str_round_trips(self):
        text = "person.pname ↔ author.aname"
        assert str(Correspondence.parse(text)) == text


class TestCorrespondenceSet:
    def make(self):
        return CorrespondenceSet.parse(
            [
                "person.pname <-> books.aname",
                "store.sid <-> books.sid",
                "person.pname <-> books.aname",  # duplicate
            ]
        )

    def test_deduplication_preserves_order(self):
        corrs = self.make()
        assert len(corrs) == 2
        assert corrs[0].source == Column("person", "pname")

    def test_column_accessors(self):
        corrs = self.make()
        assert corrs.source_columns() == (
            Column("person", "pname"),
            Column("store", "sid"),
        )
        assert corrs.source_tables() == ("person", "store")
        assert corrs.target_tables() == ("books",)

    def test_contains_and_iteration(self):
        corrs = self.make()
        assert Correspondence.parse("store.sid <-> books.sid") in corrs
        assert len(list(corrs)) == 2

    def test_restrict(self):
        corrs = self.make()
        subset = corrs.restrict([corrs[1]])
        assert len(subset) == 1
        assert subset[0] == corrs[1]

    def test_validate_against_schemas(self):
        source = RelationalSchema(
            "s",
            [Table("person", ["pname"]), Table("store", ["sid"])],
        )
        target = RelationalSchema("t", [Table("books", ["aname", "sid"])])
        self.make().validate(source, target)

    def test_validate_rejects_dangling_source(self):
        source = RelationalSchema("s", [Table("person", ["pname"])])
        target = RelationalSchema("t", [Table("books", ["aname", "sid"])])
        with pytest.raises(CorrespondenceError):
            self.make().validate(source, target)

    def test_validate_rejects_dangling_target(self):
        source = RelationalSchema(
            "s", [Table("person", ["pname"]), Table("store", ["sid"])]
        )
        target = RelationalSchema("t", [Table("books", ["aname"])])
        with pytest.raises(CorrespondenceError):
            self.make().validate(source, target)


class TestLifting:
    @pytest.fixture
    def semantics(self):
        cm = ConceptualModel("m")
        cm.add_class("Person", attributes=["pname"], key=["pname"])
        cm.add_class("Book", attributes=["bid"], key=["bid"])
        cm.add_relationship("writes", "Person", "Book", "0..*", "1..*")
        graph = CMGraph(cm)
        schema = RelationalSchema(
            "s", [Table("writes", ["pname", "bid"], ["pname", "bid"])]
        )
        tree = SemanticTree.build(
            graph,
            "Person",
            [("Person", "writes", "Book")],
            {"pname": "Person.pname", "bid": "Book.bid"},
        )
        return SchemaSemantics(schema, graph, {"writes": tree})

    def test_lift(self, semantics):
        corrs = CorrespondenceSet.parse(["writes.bid <-> writes.bid"])
        (lifted,) = corrs.lift(semantics, semantics)
        assert lifted.source_class == "Book"
        assert lifted.target_class == "Book"
        assert lifted.source_attribute == "bid"
        assert "Book.bid" in str(lifted)
