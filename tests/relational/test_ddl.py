"""Unit tests for SQL DDL emission and parsing."""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SchemaError
from repro.relational import ReferentialConstraint, RelationalSchema, Table
from repro.relational.ddl import emit_ddl, emit_table_ddl, parse_ddl


@pytest.fixture
def schema() -> RelationalSchema:
    schema = RelationalSchema("src")
    schema.add_table(Table("person", ["pname", "age"], ["pname"]))
    schema.add_table(Table("writes", ["pname", "bid"], ["pname", "bid"]))
    schema.add_table(Table("book", ["bid"], ["bid"]))
    schema.add_ric(ReferentialConstraint.parse("writes.pname -> person.pname"))
    schema.add_ric(ReferentialConstraint.parse("writes.bid -> book.bid"))
    return schema


class TestEmit:
    def test_table_ddl_structure(self, schema):
        text = emit_table_ddl(schema.table("writes"), schema)
        assert text.startswith("CREATE TABLE writes (")
        assert "PRIMARY KEY (pname, bid)" in text
        assert "FOREIGN KEY (pname) REFERENCES person (pname)" in text
        assert "FOREIGN KEY (bid) REFERENCES book (bid)" in text
        assert text.endswith(");")

    def test_emit_covers_all_tables(self, schema):
        text = emit_ddl(schema)
        assert text.count("CREATE TABLE") == 3

    def test_keyless_table_has_no_pk_clause(self):
        schema = RelationalSchema("s", [Table("log", ["entry"])])
        assert "PRIMARY KEY" not in emit_ddl(schema)


class TestParse:
    def test_round_trip(self, schema):
        parsed = parse_ddl(emit_ddl(schema))
        assert parsed.table_names() == schema.table_names()
        for name in schema.table_names():
            assert parsed.table(name).columns == schema.table(name).columns
            assert (
                parsed.table(name).primary_key
                == schema.table(name).primary_key
            )
        assert {str(r) for r in parsed.rics} == {str(r) for r in schema.rics}

    def test_double_round_trip_stable(self, schema):
        once = emit_ddl(parse_ddl(emit_ddl(schema)))
        assert once == emit_ddl(schema)

    def test_case_insensitive_keywords(self):
        text = "create table t (a text, primary key (a));"
        parsed = parse_ddl(text)
        assert parsed.table("t").primary_key == ("a",)

    def test_garbage_rejected(self):
        with pytest.raises(SchemaError):
            parse_ddl("DROP EVERYTHING;")

    def test_empty_text_gives_empty_schema(self):
        assert len(parse_ddl("")) == 0


class TestQuotedIdentifiers:
    """The parser accepts quoted/mixed-case dialects (ingest fixtures)."""

    def test_double_quoted_identifiers(self):
        parsed = parse_ddl(
            'CREATE TABLE "Order" ("Id" TEXT, "Total" REAL,'
            ' PRIMARY KEY ("Id"));'
        )
        assert parsed.table_names() == ("Order",)
        assert parsed.table("Order").columns == ("Id", "Total")
        assert parsed.table("Order").primary_key == ("Id",)

    def test_bracketed_and_backticked_identifiers(self):
        parsed = parse_ddl(
            "CREATE TABLE [LineItems] ([item_id] TEXT);"
            "CREATE TABLE `select` (`from` TEXT);"
        )
        assert parsed.table("LineItems").columns == ("item_id",)
        assert parsed.table("select").columns == ("from",)

    def test_escaped_quote_inside_identifier(self):
        parsed = parse_ddl('CREATE TABLE "a""b" (c TEXT);')
        assert parsed.table_names() == ('a"b',)

    def test_mixed_case_preserved(self):
        parsed = parse_ddl("CREATE TABLE CamelCase (someColumn TEXT);")
        assert parsed.table("CamelCase").columns == ("someColumn",)

    def test_quoted_foreign_key_references(self):
        parsed = parse_ddl(
            'CREATE TABLE "Parent" ("K" TEXT, PRIMARY KEY ("K"));'
            'CREATE TABLE "Child" ("K" TEXT,'
            ' FOREIGN KEY ("K") REFERENCES "Parent" ("K"));'
        )
        assert [str(r) for r in parsed.rics] == ["Child.K -> Parent.K"]

    def test_if_not_exists_and_named_constraints(self):
        parsed = parse_ddl(
            "CREATE TABLE IF NOT EXISTS t (a TEXT, b TEXT,"
            " CONSTRAINT t_pk PRIMARY KEY (a),"
            " CONSTRAINT t_fk FOREIGN KEY (b) REFERENCES t (a));"
        )
        assert parsed.table("t").primary_key == ("a",)
        assert [str(r) for r in parsed.rics] == ["t.b -> t.a"]

    def test_composite_foreign_key_both_sides(self):
        parsed = parse_ddl(
            "CREATE TABLE p (x TEXT, y TEXT, PRIMARY KEY (x, y));"
            "CREATE TABLE c (u TEXT, v TEXT,"
            " FOREIGN KEY (u, v) REFERENCES p (x, y));"
        )
        (ric,) = parsed.rics
        assert ric.child_columns == ("u", "v")
        assert ric.parent_columns == ("x", "y")

    def test_sqlite_fixture_dialect_round_trips(self, schema):
        from repro.ingest.fixture import sqlite_ddl

        parsed = parse_ddl(sqlite_ddl(schema))
        assert parsed.table_names() == schema.table_names()
        for name in schema.table_names():
            assert parsed.table(name).columns == schema.table(name).columns
            assert (
                parsed.table(name).primary_key
                == schema.table(name).primary_key
            )
        assert {str(r) for r in parsed.rics} == {str(r) for r in schema.rics}


_IDENT_ALPHABET = string.ascii_letters + string.digits + "_"

identifiers = st.text(
    alphabet=_IDENT_ALPHABET, min_size=1, max_size=8
).filter(lambda s: s[0].isalpha())


@st.composite
def schemas(draw) -> RelationalSchema:
    """Random mixed-case schemas with composite keys and foreign keys."""
    table_names = draw(
        st.lists(identifiers, min_size=1, max_size=4, unique=True)
    )
    schema = RelationalSchema("gen")
    for name in table_names:
        columns = draw(
            st.lists(identifiers, min_size=1, max_size=5, unique=True)
        )
        pk_size = draw(st.integers(min_value=0, max_value=len(columns)))
        schema.add_table(Table(name, columns, columns[:pk_size]))
    keyed = [t for t in schema if t.primary_key]
    for child in list(schema):
        if not keyed or not draw(st.booleans()):
            continue
        parent = draw(st.sampled_from(keyed))
        arity = len(parent.primary_key)
        if arity == 0 or arity > len(child.columns):
            continue
        child_columns = draw(
            st.lists(
                st.sampled_from(child.columns),
                min_size=arity,
                max_size=arity,
                unique=True,
            )
        )
        ric = ReferentialConstraint(
            child.name, child_columns, parent.name, list(parent.primary_key)
        )
        if str(ric) not in {str(r) for r in schema.rics}:
            schema.add_ric(ric)
    return schema


class TestRoundTripProperty:
    @settings(max_examples=60, deadline=None)
    @given(schema=schemas())
    def test_parse_inverts_emit(self, schema):
        parsed = parse_ddl(emit_ddl(schema))
        assert parsed.table_names() == schema.table_names()
        for name in schema.table_names():
            assert parsed.table(name).columns == schema.table(name).columns
            assert (
                parsed.table(name).primary_key
                == schema.table(name).primary_key
            )
        assert {str(r) for r in parsed.rics} == {str(r) for r in schema.rics}

    @settings(max_examples=30, deadline=None)
    @given(schema=schemas())
    def test_parse_inverts_sqlite_fixture_dialect(self, schema):
        from repro.ingest.fixture import sqlite_ddl

        parsed = parse_ddl(sqlite_ddl(schema))
        assert parsed.table_names() == schema.table_names()
        for name in schema.table_names():
            assert parsed.table(name).columns == schema.table(name).columns
        assert {str(r) for r in parsed.rics} == {str(r) for r in schema.rics}


class TestDatasetsRoundTrip:
    def test_all_dataset_schemas_round_trip(self):
        from repro.datasets.registry import load_all_datasets

        for pair in load_all_datasets():
            for semantics in (pair.source, pair.target):
                parsed = parse_ddl(emit_ddl(semantics.schema))
                assert parsed.table_names() == semantics.schema.table_names()
                assert len(parsed.rics) == len(semantics.schema.rics)
