"""Unit tests for SQL DDL emission and parsing."""

import pytest

from repro.exceptions import SchemaError
from repro.relational import ReferentialConstraint, RelationalSchema, Table
from repro.relational.ddl import emit_ddl, emit_table_ddl, parse_ddl


@pytest.fixture
def schema() -> RelationalSchema:
    schema = RelationalSchema("src")
    schema.add_table(Table("person", ["pname", "age"], ["pname"]))
    schema.add_table(Table("writes", ["pname", "bid"], ["pname", "bid"]))
    schema.add_table(Table("book", ["bid"], ["bid"]))
    schema.add_ric(ReferentialConstraint.parse("writes.pname -> person.pname"))
    schema.add_ric(ReferentialConstraint.parse("writes.bid -> book.bid"))
    return schema


class TestEmit:
    def test_table_ddl_structure(self, schema):
        text = emit_table_ddl(schema.table("writes"), schema)
        assert text.startswith("CREATE TABLE writes (")
        assert "PRIMARY KEY (pname, bid)" in text
        assert "FOREIGN KEY (pname) REFERENCES person (pname)" in text
        assert "FOREIGN KEY (bid) REFERENCES book (bid)" in text
        assert text.endswith(");")

    def test_emit_covers_all_tables(self, schema):
        text = emit_ddl(schema)
        assert text.count("CREATE TABLE") == 3

    def test_keyless_table_has_no_pk_clause(self):
        schema = RelationalSchema("s", [Table("log", ["entry"])])
        assert "PRIMARY KEY" not in emit_ddl(schema)


class TestParse:
    def test_round_trip(self, schema):
        parsed = parse_ddl(emit_ddl(schema))
        assert parsed.table_names() == schema.table_names()
        for name in schema.table_names():
            assert parsed.table(name).columns == schema.table(name).columns
            assert (
                parsed.table(name).primary_key
                == schema.table(name).primary_key
            )
        assert {str(r) for r in parsed.rics} == {str(r) for r in schema.rics}

    def test_double_round_trip_stable(self, schema):
        once = emit_ddl(parse_ddl(emit_ddl(schema)))
        assert once == emit_ddl(schema)

    def test_case_insensitive_keywords(self):
        text = "create table t (a text, primary key (a));"
        parsed = parse_ddl(text)
        assert parsed.table("t").primary_key == ("a",)

    def test_garbage_rejected(self):
        with pytest.raises(SchemaError):
            parse_ddl("DROP EVERYTHING;")

    def test_empty_text_gives_empty_schema(self):
        assert len(parse_ddl("")) == 0


class TestDatasetsRoundTrip:
    def test_all_dataset_schemas_round_trip(self):
        from repro.datasets.registry import load_all_datasets

        for pair in load_all_datasets():
            for semantics in (pair.source, pair.target):
                parsed = parse_ddl(emit_ddl(semantics.schema))
                assert parsed.table_names() == semantics.schema.table_names()
                assert len(parsed.rics) == len(semantics.schema.rics)
