"""Unit tests for relational schemas, tables, and columns."""

import pytest

from repro.exceptions import SchemaError
from repro.relational import Column, ReferentialConstraint, RelationalSchema, Table


class TestColumn:
    def test_str_is_qualified(self):
        assert str(Column("person", "pname")) == "person.pname"

    def test_parse_round_trips(self):
        col = Column.parse("person.pname")
        assert col == Column("person", "pname")

    def test_parse_rejects_unqualified(self):
        with pytest.raises(SchemaError):
            Column.parse("pname")

    def test_parse_rejects_extra_dots(self):
        with pytest.raises(SchemaError):
            Column.parse("db.person.pname")

    def test_rejects_whitespace(self):
        with pytest.raises(SchemaError):
            Column("per son", "pname")

    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError):
            Column("person", "")

    def test_ordering_is_lexicographic(self):
        assert Column("a", "x") < Column("b", "a")
        assert Column("a", "x") < Column("a", "y")

    def test_hashable_and_equal(self):
        assert {Column("t", "c"), Column("t", "c")} == {Column("t", "c")}


class TestTable:
    def test_basic_construction(self):
        table = Table("writes", ["pname", "bid"], ["pname", "bid"])
        assert table.arity == 2
        assert table.primary_key == ("pname", "bid")
        assert table.non_key_columns == ()

    def test_non_key_columns_preserve_order(self):
        table = Table("proj", ["pnum", "dept", "emp"], ["pnum"])
        assert table.non_key_columns == ("dept", "emp")

    def test_requires_columns(self):
        with pytest.raises(SchemaError):
            Table("empty", [])

    def test_rejects_duplicate_columns(self):
        with pytest.raises(SchemaError):
            Table("t", ["a", "a"])

    def test_rejects_pk_outside_columns(self):
        with pytest.raises(SchemaError):
            Table("t", ["a"], ["b"])

    def test_rejects_repeated_pk_columns(self):
        with pytest.raises(SchemaError):
            Table("t", ["a", "b"], ["a", "a"])

    def test_column_lookup(self):
        table = Table("person", ["pname"], ["pname"])
        assert table.column("pname") == Column("person", "pname")
        with pytest.raises(SchemaError):
            table.column("nope")

    def test_qualified_columns(self):
        table = Table("t", ["a", "b"])
        assert table.qualified_columns() == (Column("t", "a"), Column("t", "b"))

    def test_str_marks_key_columns(self):
        assert str(Table("t", ["a", "b"], ["a"])) == "t(_a_, b)"

    def test_empty_primary_key_allowed(self):
        table = Table("t", ["a"])
        assert table.primary_key == ()
        assert table.non_key_columns == ("a",)


def bookstore_schema() -> RelationalSchema:
    """The source schema of the paper's Example 1.1."""
    schema = RelationalSchema("source")
    schema.add_table(Table("person", ["pname"], ["pname"]))
    schema.add_table(Table("writes", ["pname", "bid"], ["pname", "bid"]))
    schema.add_table(Table("book", ["bid"], ["bid"]))
    schema.add_table(Table("soldAt", ["bid", "sid"], ["bid", "sid"]))
    schema.add_table(Table("bookstore", ["sid"], ["sid"]))
    schema.add_ric(ReferentialConstraint.parse("writes.pname -> person.pname"))
    schema.add_ric(ReferentialConstraint.parse("writes.bid -> book.bid"))
    schema.add_ric(ReferentialConstraint.parse("soldAt.bid -> book.bid"))
    schema.add_ric(ReferentialConstraint.parse("soldAt.sid -> bookstore.sid"))
    return schema


class TestRelationalSchema:
    def test_table_registration_and_lookup(self):
        schema = bookstore_schema()
        assert len(schema) == 5
        assert schema.table("person").primary_key == ("pname",)
        assert "writes" in schema
        assert "nope" not in schema

    def test_duplicate_table_rejected(self):
        schema = RelationalSchema("s", [Table("t", ["a"])])
        with pytest.raises(SchemaError):
            schema.add_table(Table("t", ["b"]))

    def test_unknown_table_lookup_raises(self):
        schema = RelationalSchema("s")
        with pytest.raises(SchemaError):
            schema.table("ghost")

    def test_ric_validation_rejects_unknown_table(self):
        schema = RelationalSchema("s", [Table("t", ["a"])])
        with pytest.raises(SchemaError):
            schema.add_ric(ReferentialConstraint.parse("t.a -> ghost.b"))

    def test_ric_validation_rejects_unknown_column(self):
        schema = RelationalSchema(
            "s", [Table("t", ["a"]), Table("u", ["b"])]
        )
        with pytest.raises(SchemaError):
            schema.add_ric(ReferentialConstraint.parse("t.nope -> u.b"))

    def test_rics_from_and_to(self):
        schema = bookstore_schema()
        from_writes = schema.rics_from("writes")
        assert {r.parent_table for r in from_writes} == {"person", "book"}
        to_book = schema.rics_to("book")
        assert {r.child_table for r in to_book} == {"writes", "soldAt"}

    def test_has_column_and_check_column(self):
        schema = bookstore_schema()
        assert schema.has_column(Column("person", "pname"))
        assert not schema.has_column(Column("person", "ghost"))
        with pytest.raises(SchemaError):
            schema.check_column(Column("ghost", "x"))

    def test_table_names_preserve_insertion_order(self):
        schema = bookstore_schema()
        assert schema.table_names() == (
            "person",
            "writes",
            "book",
            "soldAt",
            "bookstore",
        )

    def test_describe_mentions_every_table_and_ric(self):
        schema = bookstore_schema()
        text = schema.describe()
        for name in schema.table_names():
            assert name in text
        assert "writes.pname -> person.pname" in text

    def test_iteration_yields_tables(self):
        schema = bookstore_schema()
        assert [t.name for t in schema] == list(schema.table_names())

    def test_tables_view_is_a_copy(self):
        schema = bookstore_schema()
        view = schema.tables
        view.pop("person")
        assert schema.has_table("person")
