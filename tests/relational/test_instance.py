"""Unit tests for in-memory relational instances."""

import pytest

from repro.exceptions import InstanceError
from repro.relational import (
    Instance,
    LabeledNull,
    ReferentialConstraint,
    RelationalSchema,
    Table,
)


@pytest.fixture
def schema() -> RelationalSchema:
    schema = RelationalSchema("s")
    schema.add_table(Table("person", ["pname", "age"], ["pname"]))
    schema.add_table(Table("writes", ["pname", "bid"], ["pname", "bid"]))
    schema.add_ric(ReferentialConstraint.parse("writes.pname -> person.pname"))
    return schema


class TestLabeledNull:
    def test_equality_by_label(self):
        assert LabeledNull("x") == LabeledNull("x")
        assert LabeledNull("x") != LabeledNull("y")

    def test_not_equal_to_plain_values(self):
        assert LabeledNull("x") != "x"

    def test_hash_consistent_with_equality(self):
        assert {LabeledNull("x"), LabeledNull("x")} == {LabeledNull("x")}

    def test_sorts_after_concrete_values(self):
        row = sorted(["zzz", LabeledNull("a")], key=lambda v: (isinstance(v, LabeledNull), str(v)))
        assert row[0] == "zzz"


class TestMutation:
    def test_add_and_rows(self, schema):
        inst = Instance(schema)
        inst.add("person", ("ann", 30))
        inst.add("person", ("bob", 40))
        assert inst.rows("person") == (("ann", 30), ("bob", 40))

    def test_duplicates_collapse(self, schema):
        inst = Instance(schema)
        inst.add("person", ("ann", 30))
        inst.add("person", ("ann", 30))
        assert inst.size("person") == 1

    def test_arity_enforced(self, schema):
        inst = Instance(schema)
        with pytest.raises(InstanceError):
            inst.add("person", ("ann",))

    def test_add_all(self, schema):
        inst = Instance(schema)
        inst.add_all("person", [("ann", 30), ("bob", 40)])
        assert inst.size("person") == 2

    def test_add_named_fills_missing_with_nulls(self, schema):
        inst = Instance(schema)
        inst.add_named("person", pname="ann")
        ((pname, age),) = inst.rows("person")
        assert pname == "ann"
        assert isinstance(age, LabeledNull)

    def test_add_named_rejects_unknown_column(self, schema):
        inst = Instance(schema)
        with pytest.raises(InstanceError):
            inst.add_named("person", ghost=1)

    def test_fresh_nulls_are_distinct(self, schema):
        inst = Instance(schema)
        assert inst.fresh_null() != inst.fresh_null()


class TestAccess:
    def test_dicts(self, schema):
        inst = Instance(schema)
        inst.add("person", ("ann", 30))
        assert inst.dicts("person") == ({"pname": "ann", "age": 30},)

    def test_size_whole_instance(self, schema):
        inst = Instance(schema)
        inst.add("person", ("ann", 30))
        inst.add("writes", ("ann", "b1"))
        assert inst.size() == 2

    def test_contains(self, schema):
        inst = Instance(schema)
        inst.add("person", ("ann", 30))
        assert ("person", ("ann", 30)) in inst
        assert ("person", ("bob", 1)) not in inst

    def test_rows_of_unknown_table_raise(self, schema):
        inst = Instance(schema)
        with pytest.raises(Exception):
            inst.rows("ghost")

    def test_copy_is_independent(self, schema):
        inst = Instance(schema)
        inst.add("person", ("ann", 30))
        clone = inst.copy()
        clone.add("person", ("bob", 40))
        assert inst.size("person") == 1
        assert clone.size("person") == 2

    def test_from_dict(self, schema):
        inst = Instance.from_dict(schema, {"person": [("ann", 30)]})
        assert inst.rows("person") == (("ann", 30),)


class TestConstraintChecking:
    def test_consistent_instance(self, schema):
        inst = Instance.from_dict(
            schema,
            {"person": [("ann", 30)], "writes": [("ann", "b1")]},
        )
        assert inst.is_consistent()

    def test_key_violation_detected(self, schema):
        inst = Instance.from_dict(
            schema, {"person": [("ann", 30), ("ann", 31)]}
        )
        problems = inst.violations()
        assert len(problems) == 1
        assert "key violation" in problems[0]

    def test_ric_violation_detected(self, schema):
        inst = Instance.from_dict(schema, {"writes": [("ghost", "b1")]})
        problems = inst.violations()
        assert any("RIC violation" in p for p in problems)

    def test_labeled_null_keys_are_ignored(self, schema):
        inst = Instance(schema)
        inst.add("person", (LabeledNull("x"), 1))
        inst.add("person", (LabeledNull("y"), 2))
        assert inst.is_consistent()

    def test_labeled_null_fk_values_are_ignored(self, schema):
        inst = Instance(schema)
        inst.add("writes", (LabeledNull("p"), "b1"))
        assert inst.is_consistent()

    def test_describe_lists_rows(self, schema):
        inst = Instance.from_dict(schema, {"person": [("ann", 30)]})
        text = inst.describe()
        assert "person" in text
        assert "ann" in text
