"""Unit and property-based tests for the relational algebra evaluator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import QueryError
from repro.relational import (
    BaseRelation,
    FullOuterJoin,
    Instance,
    LabeledNull,
    LeftOuterJoin,
    NaturalJoin,
    Projection,
    RelationalSchema,
    Rename,
    Selection,
    Table,
    ThetaJoin,
    Union,
)


@pytest.fixture
def instance() -> Instance:
    schema = RelationalSchema("s")
    schema.add_table(Table("person", ["pname", "city"], ["pname"]))
    schema.add_table(Table("writes", ["pname", "bid"], ["pname", "bid"]))
    schema.add_table(Table("book", ["bid", "title"], ["bid"]))
    inst = Instance(schema)
    inst.add_all(
        "person", [("ann", "toronto"), ("bob", "boston"), ("cal", "toronto")]
    )
    inst.add_all("writes", [("ann", "b1"), ("ann", "b2"), ("bob", "b1")])
    inst.add_all("book", [("b1", "Logic"), ("b2", "Graphs"), ("b3", "Unread")])
    return inst


class TestBaseAndSelection:
    def test_scan(self, instance):
        result = BaseRelation("person").evaluate(instance)
        assert result.columns == ("pname", "city")
        assert len(result) == 3

    def test_selection_constant(self, instance):
        expr = Selection(BaseRelation("person"), "city", "toronto")
        result = expr.evaluate(instance)
        assert {r[0] for r in result.rows} == {"ann", "cal"}

    def test_selection_unknown_column(self, instance):
        with pytest.raises(QueryError):
            Selection(BaseRelation("person"), "ghost", 1).evaluate(instance)

    def test_where_combinator(self, instance):
        result = BaseRelation("person").where("pname", "ann").evaluate(instance)
        assert len(result) == 1


class TestProjectionAndRename:
    def test_projection_reorders(self, instance):
        expr = Projection(BaseRelation("person"), ["city", "pname"])
        result = expr.evaluate(instance)
        assert result.columns == ("city", "pname")
        assert ("toronto", "ann") in result.rows

    def test_projection_deduplicates(self, instance):
        result = Projection(BaseRelation("person"), ["city"]).evaluate(instance)
        assert len(result) == 2

    def test_projection_unknown_column(self, instance):
        with pytest.raises(QueryError):
            Projection(BaseRelation("person"), ["ghost"]).evaluate(instance)

    def test_rename(self, instance):
        expr = Rename(BaseRelation("person"), {"pname": "author"})
        result = expr.evaluate(instance)
        assert result.columns == ("author", "city")

    def test_rename_unknown_column(self, instance):
        with pytest.raises(QueryError):
            Rename(BaseRelation("person"), {"ghost": "x"}).evaluate(instance)

    def test_rename_collision_rejected(self, instance):
        with pytest.raises(QueryError):
            Rename(BaseRelation("person"), {"pname": "city"}).evaluate(instance)


class TestJoins:
    def test_natural_join_on_shared_column(self, instance):
        expr = NaturalJoin(BaseRelation("person"), BaseRelation("writes"))
        result = expr.evaluate(instance)
        assert result.columns == ("pname", "city", "bid")
        assert len(result) == 3

    def test_natural_join_without_shared_is_cross_product(self, instance):
        expr = NaturalJoin(BaseRelation("person"), BaseRelation("book"))
        assert len(expr.evaluate(instance)) == 9

    def test_three_way_join(self, instance):
        expr = BaseRelation("person").join(BaseRelation("writes")).join(
            BaseRelation("book")
        )
        result = expr.evaluate(instance)
        assert ("ann", "toronto", "b1", "Logic") in result.rows

    def test_theta_join(self, instance):
        right = Rename(BaseRelation("writes"), {"pname": "author"})
        expr = ThetaJoin(BaseRelation("person"), right, [("pname", "author")])
        result = expr.evaluate(instance)
        assert result.columns == ("pname", "city", "bid")
        assert len(result) == 3

    def test_theta_join_requires_conditions(self, instance):
        with pytest.raises(QueryError):
            ThetaJoin(BaseRelation("person"), BaseRelation("book"), [])

    def test_theta_join_unknown_column(self, instance):
        with pytest.raises(QueryError):
            ThetaJoin(
                BaseRelation("person"), BaseRelation("book"), [("ghost", "bid")]
            ).evaluate(instance)

    def test_left_outer_join_pads_unmatched(self, instance):
        expr = LeftOuterJoin(BaseRelation("person"), BaseRelation("writes"))
        result = expr.evaluate(instance)
        cal_rows = [r for r in result.rows if r[0] == "cal"]
        assert len(cal_rows) == 1
        assert isinstance(cal_rows[0][2], LabeledNull)

    def test_full_outer_join_pads_both_sides(self, instance):
        expr = FullOuterJoin(BaseRelation("writes"), BaseRelation("book"))
        result = expr.evaluate(instance)
        # b3 has no writer: present with a null pname.
        b3_rows = [r for r in result.rows if r[1] == "b3"]
        assert len(b3_rows) == 1
        assert isinstance(b3_rows[0][0], LabeledNull)
        # Matched rows keep their values.
        assert ("ann", "b1", "Logic") in result.rows

    def test_full_outer_join_is_superset_of_inner(self, instance):
        inner = NaturalJoin(BaseRelation("writes"), BaseRelation("book"))
        outer = FullOuterJoin(BaseRelation("writes"), BaseRelation("book"))
        assert inner.evaluate(instance).rows <= outer.evaluate(instance).rows


class TestUnion:
    def test_union_of_projections(self, instance):
        left = Projection(BaseRelation("person"), ["pname"])
        right = Projection(BaseRelation("writes"), ["pname"])
        result = Union(left, right).evaluate(instance)
        assert {r[0] for r in result.rows} == {"ann", "bob", "cal"}

    def test_union_incompatible_rejected(self, instance):
        with pytest.raises(QueryError):
            Union(BaseRelation("person"), BaseRelation("book")).evaluate(instance)


class TestRendering:
    def test_render_mentions_operators(self, instance):
        expr = Projection(
            Selection(
                NaturalJoin(BaseRelation("person"), BaseRelation("writes")),
                "city",
                "toronto",
            ),
            ["pname", "bid"],
        )
        text = expr.render()
        assert "⋈" in text and "σ" in text and "π" in text
        assert str(expr) == text


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------

names = st.sampled_from(["ann", "bob", "cal", "dia", "eli"])
cities = st.sampled_from(["toronto", "boston", "paris"])
bids = st.sampled_from(["b1", "b2", "b3", "b4"])


def build_instance(people, writes) -> Instance:
    schema = RelationalSchema("s")
    schema.add_table(Table("person", ["pname", "city"]))
    schema.add_table(Table("writes", ["pname", "bid"]))
    inst = Instance(schema)
    inst.add_all("person", people)
    inst.add_all("writes", writes)
    return inst


people_rows = st.lists(st.tuples(names, cities), max_size=8)
writes_rows = st.lists(st.tuples(names, bids), max_size=8)


@settings(max_examples=50, deadline=None)
@given(people=people_rows, writes=writes_rows)
def test_natural_join_commutes_modulo_column_order(people, writes):
    inst = build_instance(people, writes)
    left = NaturalJoin(BaseRelation("person"), BaseRelation("writes"))
    right = NaturalJoin(BaseRelation("writes"), BaseRelation("person"))
    cols = ("pname", "city", "bid")
    assert (
        left.evaluate(inst).project(cols).rows
        == right.evaluate(inst).project(cols).rows
    )


@settings(max_examples=50, deadline=None)
@given(people=people_rows, writes=writes_rows)
def test_join_size_bounded_by_product(people, writes):
    inst = build_instance(people, writes)
    joined = NaturalJoin(BaseRelation("person"), BaseRelation("writes"))
    assert len(joined.evaluate(inst)) <= inst.size("person") * inst.size("writes")


@settings(max_examples=50, deadline=None)
@given(people=people_rows)
def test_projection_idempotent(people):
    inst = build_instance(people, [])
    once = Projection(BaseRelation("person"), ["pname"]).evaluate(inst)
    twice = Projection(
        Projection(BaseRelation("person"), ["pname"]), ["pname"]
    ).evaluate(inst)
    assert once == twice


@settings(max_examples=50, deadline=None)
@given(people=people_rows, writes=writes_rows)
def test_left_outer_join_covers_all_left_rows(people, writes):
    inst = build_instance(people, writes)
    result = LeftOuterJoin(BaseRelation("person"), BaseRelation("writes")).evaluate(
        inst
    )
    left_projection = {r[:2] for r in result.rows}
    assert left_projection == set(inst.rows("person"))


@settings(max_examples=50, deadline=None)
@given(people=people_rows, writes=writes_rows)
def test_selection_then_projection_commute(people, writes):
    inst = build_instance(people, writes)
    base = BaseRelation("person")
    a = Projection(Selection(base, "city", "toronto"), ["pname", "city"]).evaluate(
        inst
    )
    b = Selection(Projection(base, ["pname", "city"]), "city", "toronto").evaluate(
        inst
    )
    assert a == b
