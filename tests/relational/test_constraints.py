"""Unit tests for referential integrity constraints."""

import pytest

from repro.exceptions import SchemaError
from repro.relational import ReferentialConstraint


class TestConstruction:
    def test_single_column(self):
        ric = ReferentialConstraint("writes", ["pname"], "person", ["pname"])
        assert ric.column_pairs == (("pname", "pname"),)

    def test_multi_column_pairs_positionally(self):
        ric = ReferentialConstraint(
            "enrol", ["sid", "cid"], "offering", ["student", "course"]
        )
        assert ric.column_pairs == (("sid", "student"), ("cid", "course"))

    def test_requires_at_least_one_column(self):
        with pytest.raises(SchemaError):
            ReferentialConstraint("a", [], "b", [])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(SchemaError):
            ReferentialConstraint("a", ["x"], "b", ["y", "z"])

    def test_rejects_repeated_child_columns(self):
        with pytest.raises(SchemaError):
            ReferentialConstraint("a", ["x", "x"], "b", ["y", "z"])

    def test_rejects_repeated_parent_columns(self):
        with pytest.raises(SchemaError):
            ReferentialConstraint("a", ["x", "y"], "b", ["z", "z"])

    def test_frozen_and_hashable(self):
        ric1 = ReferentialConstraint("a", ["x"], "b", ["y"])
        ric2 = ReferentialConstraint("a", ["x"], "b", ["y"])
        assert ric1 == ric2
        assert {ric1, ric2} == {ric1}


class TestParsing:
    def test_parse_single(self):
        ric = ReferentialConstraint.parse("writes.pname -> person.pname")
        assert ric.child_table == "writes"
        assert ric.parent_table == "person"

    def test_parse_multi_column(self):
        ric = ReferentialConstraint.parse(
            "enrol.sid, enrol.cid -> offering.student, offering.course"
        )
        assert ric.child_columns == ("sid", "cid")
        assert ric.parent_columns == ("student", "course")

    def test_parse_round_trips_through_str(self):
        text = "soldAt.bid -> book.bid"
        assert str(ReferentialConstraint.parse(text)) == text

    def test_parse_requires_arrow(self):
        with pytest.raises(SchemaError):
            ReferentialConstraint.parse("a.x b.y")

    def test_parse_rejects_mixed_tables_on_one_side(self):
        with pytest.raises(SchemaError):
            ReferentialConstraint.parse("a.x, c.y -> b.u, b.v")

    def test_parse_rejects_unqualified_column(self):
        with pytest.raises(SchemaError):
            ReferentialConstraint.parse("x -> b.y")

    def test_parse_rejects_empty_side(self):
        with pytest.raises(SchemaError):
            ReferentialConstraint.parse(" -> b.y")
