"""Property-based tests for the relational algebra expression trees.

Two families of invariants:

* **construction/rendering round-trips** — an expression rebuilt from
  its own parts is equal to (and hashes with) the original, renders to
  the identical string, and evaluates to the identical
  :class:`~repro.relational.algebra.ResultSet`;
* **determinism under dict-ordering perturbation** — :class:`Rename`
  built from any insertion order of the same mapping, and instances
  populated in any row order, produce identical expressions, renderings,
  and results. The discovery pipeline fingerprints rendered expressions,
  so rendering must never depend on hash or insertion order.
"""

from __future__ import annotations

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.relational import (
    BaseRelation,
    FullOuterJoin,
    Instance,
    LeftOuterJoin,
    NaturalJoin,
    Projection,
    RelationalSchema,
    Rename,
    Selection,
    Table,
    Union,
)

#: Base tables the generated trees scan. Shared column names (``b``,
#: ``c``) make the natural joins non-trivial.
TABLES = {
    "r": ("a", "b"),
    "s": ("b", "c"),
    "t": ("c", "d"),
}

#: Fresh names renames can map to (disjoint from every table column).
FRESH = ("x", "y", "z", "w")

VALUES = ("v0", "v1", "v2", 0, 1)


def _schema() -> RelationalSchema:
    schema = RelationalSchema("props")
    for name, columns in TABLES.items():
        schema.add_table(Table(name, list(columns), [columns[0]]))
    return schema


def _instance(rows_by_table: dict[str, list[tuple]]) -> Instance:
    instance = Instance(_schema())
    for name, rows in rows_by_table.items():
        instance.add_all(name, rows)
    return instance


@st.composite
def instances(draw) -> Instance:
    rows_by_table = {}
    for name, columns in TABLES.items():
        rows = draw(
            st.lists(
                st.tuples(
                    *[st.sampled_from(VALUES) for _ in columns]
                ),
                max_size=5,
            )
        )
        rows_by_table[name] = rows
    return _instance(rows_by_table)


@st.composite
def expressions(draw, depth: int = 3):
    """A well-formed expression plus the column tuple it produces.

    Tracking the output columns while generating keeps every selection,
    projection, and rename valid by construction, so evaluation never
    raises and the properties test semantics, not error paths.
    """
    if depth == 0:
        name = draw(st.sampled_from(sorted(TABLES)))
        return BaseRelation(name), TABLES[name]
    kind = draw(
        st.sampled_from(
            ["base", "select", "project", "rename", "join", "outer", "union"]
        )
    )
    if kind == "base":
        name = draw(st.sampled_from(sorted(TABLES)))
        return BaseRelation(name), TABLES[name]
    child, columns = draw(expressions(depth=depth - 1))
    if kind == "select":
        column = draw(st.sampled_from(columns))
        value = draw(st.sampled_from(VALUES))
        return Selection(child, column, value), columns
    if kind == "project":
        keep = draw(
            st.lists(
                st.sampled_from(columns),
                min_size=1,
                max_size=len(columns),
                unique=True,
            )
        )
        return Projection(child, keep), tuple(keep)
    if kind == "rename":
        # Only rename to fresh names absent from the child's columns —
        # a clash would (correctly) raise at evaluation time.
        available = [f for f in FRESH if f not in columns]
        if not available:
            return child, columns
        renamed = draw(
            st.lists(
                st.sampled_from(columns),
                min_size=1,
                max_size=min(len(columns), len(available)),
                unique=True,
            )
        )
        mapping = {old: available[i] for i, old in enumerate(renamed)}
        out = tuple(mapping.get(c, c) for c in columns)
        return Rename(child, mapping), out
    if kind == "union":
        # Union requires identical columns; a selection of the same
        # child is the simplest guaranteed-compatible sibling.
        column = draw(st.sampled_from(columns))
        value = draw(st.sampled_from(VALUES))
        return Union(child, Selection(child, column, value)), columns
    other, other_columns = draw(expressions(depth=depth - 1))
    out = columns + tuple(c for c in other_columns if c not in columns)
    if kind == "join":
        return NaturalJoin(child, other), out
    join_type = draw(st.sampled_from([LeftOuterJoin, FullOuterJoin]))
    return join_type(child, other), out


def _rebuild(expr):
    """A structurally identical copy assembled from the node's parts."""
    if isinstance(expr, BaseRelation):
        return BaseRelation(expr.table_name)
    if isinstance(expr, Selection):
        return Selection(_rebuild(expr.child), expr.column, expr.value)
    if isinstance(expr, Projection):
        return Projection(_rebuild(expr.child), expr.columns)
    if isinstance(expr, Rename):
        return Rename(_rebuild(expr.child), dict(expr.mapping))
    if isinstance(expr, Union):
        return Union(_rebuild(expr.left), _rebuild(expr.right))
    if isinstance(expr, NaturalJoin):
        return NaturalJoin(_rebuild(expr.left), _rebuild(expr.right))
    if isinstance(expr, LeftOuterJoin):
        return LeftOuterJoin(_rebuild(expr.left), _rebuild(expr.right))
    if isinstance(expr, FullOuterJoin):
        return FullOuterJoin(_rebuild(expr.left), _rebuild(expr.right))
    raise AssertionError(f"unhandled node {type(expr).__name__}")


@settings(max_examples=80, deadline=None)
@given(data=st.data())
def test_construction_round_trips(data):
    expr, columns = data.draw(expressions())
    rebuilt = _rebuild(expr)
    assert rebuilt == expr
    assert hash(rebuilt) == hash(expr)
    assert rebuilt.render() == expr.render()
    assert str(expr) == expr.render()


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_evaluation_is_deterministic(data):
    expr, columns = data.draw(expressions())
    instance = data.draw(instances())
    first = expr.evaluate(instance)
    second = expr.evaluate(instance)
    assert first == second
    assert first.sorted_rows() == second.sorted_rows()
    assert first.columns == expr.output_columns(instance)
    assert first.columns == columns


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_rename_ignores_mapping_insertion_order(data):
    expr, columns = data.draw(expressions(depth=2))
    available = [f for f in FRESH if f not in columns]
    assume(len(columns) >= 2 and len(available) >= 2)
    renamed = data.draw(
        st.lists(
            st.sampled_from(columns),
            min_size=2,
            max_size=min(len(columns), len(available)),
            unique=True,
        )
    )
    items = [(old, available[i]) for i, old in enumerate(renamed)]
    permuted = data.draw(st.permutations(items))
    forward = Rename(expr, dict(items))
    shuffled = Rename(expr, dict(permuted))
    assert forward == shuffled
    assert forward.render() == shuffled.render()
    instance = data.draw(instances())
    assert forward.evaluate(instance) == shuffled.evaluate(instance)


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_results_ignore_row_insertion_order(data):
    expr, _ = data.draw(expressions())
    rows_by_table = {
        name: data.draw(
            st.lists(
                st.tuples(*[st.sampled_from(VALUES) for _ in columns]),
                max_size=4,
                unique=True,
            )
        )
        for name, columns in TABLES.items()
    }
    shuffled = {
        name: data.draw(st.permutations(rows))
        for name, rows in rows_by_table.items()
    }
    first = expr.evaluate(_instance(rows_by_table))
    second = expr.evaluate(_instance(shuffled))
    assert first == second
    assert first.sorted_rows() == second.sorted_rows()
