"""Unit tests for the name-based correspondence matcher."""

import pytest

from repro.correspondences import Correspondence
from repro.datasets.paper_examples import employee_example
from repro.datasets.registry import load_dataset
from repro.discovery import discover_mappings
from repro.matching import (
    MatchSuggestion,
    as_correspondence_set,
    normalize,
    suggest_correspondences,
)
from repro.relational import RelationalSchema, Table


class TestNormalize:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("PubName2", "pubname"),
            ("has_book_sold_at", "hasbooksoldat"),
            ("SSN", "ssn"),
            ("year5", "year"),
        ],
    )
    def test_normalize(self, raw, expected):
        assert normalize(raw) == expected


class TestSchemaOnlyMatching:
    @pytest.fixture
    def schemas(self):
        source = RelationalSchema(
            "s", [Table("person", ["pname", "homepage"], ["pname"])]
        )
        target = RelationalSchema(
            "t", [Table("author", ["pname", "web_page"], ["pname"])]
        )
        return source, target

    def test_exact_names_match(self, schemas):
        source, target = schemas
        suggestions = suggest_correspondences(source, target)
        pairs = {str(s.correspondence) for s in suggestions}
        assert "person.pname ↔ author.pname" in pairs

    def test_synonyms_bridge_vocabulary(self, schemas):
        source, target = schemas
        suggestions = suggest_correspondences(
            source, target, synonyms={"web_page": "homepage"}
        )
        pairs = {str(s.correspondence) for s in suggestions}
        assert "person.homepage ↔ author.web_page" in pairs

    def test_threshold_filters(self, schemas):
        source, target = schemas
        strict = suggest_correspondences(source, target, threshold=1.0)
        assert all(s.score >= 1.0 for s in strict)

    def test_sorted_by_score(self, schemas):
        source, target = schemas
        suggestions = suggest_correspondences(source, target, threshold=0.5)
        scores = [s.score for s in suggestions]
        assert scores == sorted(scores, reverse=True)


class TestSemanticsAwareMatching:
    def test_attribute_names_bridge_columns(self):
        """employee example: programmer.name ↔ employee.name comes from
        the shared CM attribute even though tables differ."""
        scenario = employee_example()
        suggestions = suggest_correspondences(scenario.source, scenario.target)
        pairs = {str(s.correspondence) for s in suggestions}
        assert "programmer.name ↔ employee.name" in pairs
        assert "engineer.site ↔ employee.site" in pairs

    def test_end_to_end_match_then_map(self):
        """The full two-phase pipeline: match, then derive mappings."""
        pair = load_dataset("3Sdb")
        suggestions = suggest_correspondences(
            pair.source, pair.target, synonyms={"gname2": "genename"}
        )
        wanted = [
            s
            for s in suggestions
            if str(s.correspondence)
            in {
                "gene.genename ↔ gene2.gname2",
                "measurement.level ↔ quantification.value2",
            }
        ]
        matched = as_correspondence_set(wanted)
        if len(matched) < 1:
            pytest.skip("matcher found no usable pair")
        result = discover_mappings(pair.source, pair.target, matched)
        assert result.candidates


class TestSuggestionType:
    def test_ordering_and_str(self):
        suggestion = MatchSuggestion(
            0.9,
            Correspondence.parse("a.x <-> b.x"),
            "exact name",
        )
        assert "0.90" in str(suggestion)
        assert "exact name" in str(suggestion)
