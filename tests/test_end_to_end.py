"""End-to-end integration: discover → exchange → verify, on every case.

For every benchmark case of every reconstructed dataset pair: run the
semantic mapper, turn each discovered candidate into an s-t tgd, execute
it over a synthetic source instance, and check the defining property of
data exchange — every source answer appears among the target answers of
the exchanged instance.
"""

import pytest

from repro.datasets.instances import generate_instance
from repro.datasets.registry import dataset_names, load_dataset
from repro.discovery import discover_mappings
from repro.mappings import exchange
from repro.queries.datalog import evaluate_query


@pytest.mark.parametrize("name", sorted(dataset_names()))
def test_discovered_mappings_execute_correctly(name):
    pair = load_dataset(name)
    source_instance = generate_instance(pair.source.schema, rows_per_table=4)
    for mapping_case in pair.cases:
        result = discover_mappings(
            pair.source, pair.target, mapping_case.correspondences
        )
        assert result.candidates, mapping_case.case_id
        for candidate in result.candidates:
            tgd = candidate.to_tgd(mapping_case.case_id)
            target_instance = exchange(
                [tgd], source_instance, pair.target.schema
            )
            source_answers = evaluate_query(tgd.source, source_instance)
            target_answers = evaluate_query(tgd.target, target_instance)
            assert source_answers <= target_answers, (
                f"{mapping_case.case_id}: tgd not satisfied by its own "
                f"canonical solution"
            )


@pytest.mark.parametrize("name", sorted(dataset_names()))
def test_algebra_agrees_with_datalog_on_discovered_queries(name):
    """The algebra translation of every discovered source query computes
    the same answers as the datalog evaluator."""
    from repro.mappings import query_to_algebra

    pair = load_dataset(name)
    instance = generate_instance(pair.source.schema, rows_per_table=4)
    for mapping_case in pair.cases:
        result = discover_mappings(
            pair.source, pair.target, mapping_case.correspondences
        )
        for candidate in result.candidates:
            query = candidate.source_query
            if any(
                not hasattr(term, "name")
                for atom in query.body
                for term in atom.terms
            ):
                continue  # constants not supported by the converter
            plan = query_to_algebra(query, pair.source.schema)
            assert plan.evaluate(instance).rows == evaluate_query(
                query, instance
            ), mapping_case.case_id
