"""Smoke tests: every example script runs cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "bookstore_example.py",
        "isa_employee_example.py",
        "partof_example.py",
        "project_management.py",
        "data_exchange_demo.py",
        "match_and_map.py",
        "legacy_recovery.py",
    ],
)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip()


def test_bookstore_example_finds_m5():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / "bookstore_example.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert "M5" in completed.stdout
    assert "hasbooksoldat(v1, v2)" in completed.stdout
    assert "no labeled nulls" in completed.stdout
