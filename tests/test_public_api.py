"""Snapshot of the top-level public API.

``repro.__all__`` is a compatibility contract: names may be added, but a
missing or broken name is an API break this test catches before users
do. The snapshot below is the intended surface — update it deliberately,
in the same change that updates ``docs/api.md``.
"""

import pytest

import repro

EXPECTED_ALL = {
    "__version__",
    "ReproError",
    # Conceptual models
    "Cardinality",
    "CMGraph",
    "CMReasoner",
    "ConceptualModel",
    "ConnectionCategory",
    "SemanticType",
    "model_from_dict",
    "model_to_dict",
    # Relational
    "Column",
    "Instance",
    "ReferentialConstraint",
    "RelationalSchema",
    "Table",
    # Semantics
    "SchemaSemantics",
    "SemanticTree",
    "design_schema",
    "recover_semantics",
    # Correspondences
    "Correspondence",
    "CorrespondenceSet",
    "suggest_correspondences",
    "as_correspondence_set",
    # Discovery
    "BatchPolicy",
    "BatchResult",
    "DiscoveryOptions",
    "DiscoveryResult",
    "Rediscovery",
    "STAGE_NAMES",
    "Scenario",
    "SemanticMapper",
    "Tracer",
    "discover",
    "discover_many",
    "discover_mappings",
    "rediscover",
    "rediscover_many",
    # Baseline
    "RICBasedMapper",
    "discover_ric_mappings",
    # Mappings
    "MappingCandidate",
    "MappingSet",
    "SourceToTargetTGD",
    "exchange",
    "query_to_algebra",
    # Lifecycle algebra
    "InversionResult",
    "compose",
    "contains",
    "equivalent",
    "implies",
    "invert",
}


def test_all_matches_snapshot():
    assert set(repro.__all__) == EXPECTED_ALL


def test_every_name_importable():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


def test_no_duplicates():
    assert len(repro.__all__) == len(set(repro.__all__))


class TestDiscoverFacade:
    @pytest.fixture(scope="class")
    def example(self):
        from repro.datasets.paper_examples import partof_example

        return partof_example(target_is_partof=True)

    @pytest.fixture(scope="class")
    def scenario(self, example):
        return repro.Scenario.create(
            "facade",
            example.source,
            example.target,
            example.correspondences,
        )

    def test_runs_scenario(self, scenario):
        result = repro.discover(scenario)
        assert result.candidates
        assert result.trace is None

    def test_options_override(self, scenario):
        result = repro.discover(
            scenario, options=repro.DiscoveryOptions(explain=True)
        )
        assert result.trace is not None
        assert result.trace["prunes"]

    def test_caller_owned_tracer(self, scenario):
        tracer = repro.Tracer(explain=True)
        result = repro.discover(scenario, trace=tracer)
        assert tracer.span_count > 0
        assert result.trace is not None
