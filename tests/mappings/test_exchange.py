"""Unit tests for data exchange (mapping execution)."""

import pytest

from repro.mappings import SourceToTargetTGD, certain_rows, exchange
from repro.queries.parser import parse_query
from repro.relational import Instance, LabeledNull, RelationalSchema, Table


@pytest.fixture
def source_instance():
    schema = RelationalSchema("source")
    schema.add_table(Table("person", ["pname"], ["pname"]))
    schema.add_table(Table("writes", ["pname", "bid"], ["pname", "bid"]))
    schema.add_table(Table("soldat", ["bid", "sid"], ["bid", "sid"]))
    schema.add_table(Table("bookstore", ["sid"], ["sid"]))
    inst = Instance(schema)
    inst.add_all("person", [("ann",), ("bob",), ("cal",)])
    inst.add_all("writes", [("ann", "b1"), ("bob", "b2")])
    inst.add_all("soldat", [("b1", "s1"), ("b2", "s2"), ("b1", "s2")])
    inst.add_all("bookstore", [("s1",), ("s2",)])
    return inst


@pytest.fixture
def target_schema():
    return RelationalSchema(
        "target", [Table("hasbooksoldat", ["aname", "sid"], ["aname", "sid"])]
    )


class TestExchange:
    def test_m5_produces_complete_tuples(self, source_instance, target_schema):
        m5 = SourceToTargetTGD(
            parse_query(
                "ans(v1, v2) :- person(v1), writes(v1, y), soldat(y, v2), "
                "bookstore(v2)"
            ),
            parse_query("ans(v1, v2) :- hasbooksoldat(v1, v2)"),
            "M5",
        )
        target = exchange([m5], source_instance, target_schema)
        assert set(target.rows("hasbooksoldat")) == {
            ("ann", "s1"),
            ("ann", "s2"),
            ("bob", "s2"),
        }
        # No nulls anywhere: M5 fills complete tuples.
        assert certain_rows(target, "hasbooksoldat") == target.rows(
            "hasbooksoldat"
        )

    def test_m3_generates_labeled_nulls(self, source_instance, target_schema):
        m3 = SourceToTargetTGD(
            parse_query("ans(v1) :- person(v1)"),
            parse_query("ans(v1) :- hasbooksoldat(v1, x)"),
            "M3",
        )
        target = exchange([m3], source_instance, target_schema)
        assert target.size("hasbooksoldat") == 3
        assert certain_rows(target, "hasbooksoldat") == ()
        for _, sid in target.rows("hasbooksoldat"):
            assert isinstance(sid, LabeledNull)

    def test_nulls_deterministic_across_runs(
        self, source_instance, target_schema
    ):
        m3 = SourceToTargetTGD(
            parse_query("ans(v1) :- person(v1)"),
            parse_query("ans(v1) :- hasbooksoldat(v1, x)"),
            "M3",
        )
        first = exchange([m3], source_instance, target_schema)
        second = exchange([m3], source_instance, target_schema)
        assert first.rows("hasbooksoldat") == second.rows("hasbooksoldat")

    def test_multiple_tgds_combine(self, source_instance, target_schema):
        m3 = SourceToTargetTGD(
            parse_query("ans(v1) :- person(v1)"),
            parse_query("ans(v1) :- hasbooksoldat(v1, x)"),
            "M3",
        )
        m4 = SourceToTargetTGD(
            parse_query("ans(v2) :- bookstore(v2)"),
            parse_query("ans(v2) :- hasbooksoldat(y, v2)"),
            "M4",
        )
        target = exchange([m3, m4], source_instance, target_schema)
        assert target.size("hasbooksoldat") == 5

    def test_shared_exports_share_nulls(self, source_instance):
        target_schema = RelationalSchema(
            "t",
            [
                Table("a", ["k", "p"]),
                Table("b", ["k", "q"]),
            ],
        )
        tgd = SourceToTargetTGD(
            parse_query("ans(v1) :- person(v1)"),
            parse_query("ans(v1) :- a(v1, shared), b(v1, shared)"),
        )
        target = exchange([tgd], source_instance, target_schema)
        a_rows = {row[0]: row[1] for row in target.rows("a")}
        b_rows = {row[0]: row[1] for row in target.rows("b")}
        for key, value in a_rows.items():
            assert b_rows[key] == value  # same labeled null on both sides

    def test_exchange_result_satisfies_tgd(self, source_instance, target_schema):
        """The canonical solution must satisfy the mapping it came from."""
        from repro.queries.datalog import evaluate_query

        m5 = SourceToTargetTGD(
            parse_query(
                "ans(v1, v2) :- writes(v1, y), soldat(y, v2)"
            ),
            parse_query("ans(v1, v2) :- hasbooksoldat(v1, v2)"),
        )
        target = exchange([m5], source_instance, target_schema)
        source_answers = evaluate_query(m5.source, source_instance)
        target_answers = evaluate_query(m5.target, target)
        assert source_answers <= target_answers
