"""Unit tests for mapping-set JSON serialization."""

import pytest

from repro.datasets.paper_examples import bookstore_example, employee_example
from repro.discovery import discover_mappings
from repro.exceptions import QueryError
from repro.mappings.expression import MappingSet
from repro.mappings.serialize import (
    candidate_from_dict,
    candidate_to_dict,
    dump_candidates,
    dump_mapping_set,
    load_candidates,
    load_mapping_set,
)
from repro.queries.parser import parse_query


class TestRoundTrip:
    @pytest.fixture(scope="class")
    def result(self):
        scenario = bookstore_example()
        return discover_mappings(
            scenario.source, scenario.target, scenario.correspondences
        )

    @pytest.fixture(scope="class")
    def candidates(self, result):
        return result.candidates

    def test_round_trip_preserves_identity(self, candidates):
        restored = load_mapping_set(dump_mapping_set(candidates))
        assert len(restored) == len(candidates)
        for original, back in zip(candidates, restored):
            assert back.same_mapping_as(original)
            assert back.method == original.method
            assert back.covered == original.covered

    def test_round_trip_preserves_optional_tables(self):
        scenario = employee_example()
        candidates = discover_mappings(
            scenario.source, scenario.target, scenario.correspondences
        ).candidates
        restored = load_mapping_set(dump_mapping_set(candidates))
        assert restored[0].source_optional_tables == {
            "engineer",
            "programmer",
        }

    def test_output_is_deterministic(self, candidates):
        assert dump_mapping_set(candidates) == dump_mapping_set(candidates)

    def test_tgd_still_renders_after_round_trip(self, candidates):
        restored = load_mapping_set(dump_mapping_set(candidates))
        assert "→" in restored[0].to_tgd("M").render()

    def test_provenance_round_trips(self, result):
        mapping = result.mappings
        assert mapping.fingerprint
        restored = MappingSet.loads(mapping.dumps())
        assert restored == mapping
        assert restored.fingerprint == result.fingerprint

    def test_bare_set_matches_candidate_document_bytes(self, candidates):
        """Fingerprint-less sets keep the pre-MappingSet document bytes."""
        bare = MappingSet.of(candidates)
        with pytest.warns(DeprecationWarning):
            legacy = dump_candidates(candidates)
        assert bare.dumps() == legacy


class TestDeprecatedShims:
    def test_dump_candidates_warns(self):
        with pytest.warns(DeprecationWarning, match="dump_mapping_set"):
            dump_candidates([])

    def test_load_candidates_warns(self):
        with pytest.warns(DeprecationWarning, match="load_mapping_set"):
            text = dump_mapping_set(())
            assert load_candidates(text) == []


class TestErrors:
    def test_bad_format_rejected(self):
        with pytest.raises(QueryError):
            load_mapping_set('{"format": "other", "candidates": []}')

    def test_skolem_terms_unserializable(self):
        from repro.correspondences import Correspondence
        from repro.mappings import MappingCandidate
        from repro.queries.conjunctive import (
            Atom,
            ConjunctiveQuery,
            SkolemTerm,
            Variable,
        )

        x = Variable("x")
        weird = MappingCandidate(
            ConjunctiveQuery(
                [x], [Atom("T:r", [x, SkolemTerm("f", (x,))])]
            ),
            parse_query("ans(x) :- t(x)"),
            (Correspondence.parse("r.a <-> t.b"),),
        )
        with pytest.raises(QueryError):
            candidate_to_dict(weird)

    def test_constants_survive(self):
        from repro.correspondences import Correspondence
        from repro.mappings import MappingCandidate

        candidate = MappingCandidate(
            parse_query("ans(x) :- r(x, 'fixed')"),
            parse_query("ans(x) :- t(x, 42)"),
            (Correspondence.parse("r.a <-> t.b"),),
        )
        restored = candidate_from_dict(candidate_to_dict(candidate))
        assert restored.same_mapping_as(candidate)
