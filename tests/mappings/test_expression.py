"""Unit tests for mapping candidates, dedup, trimming, and algebra."""

import pytest

from repro.correspondences import Correspondence
from repro.mappings import (
    MappingCandidate,
    deduplicate_candidates,
    query_to_algebra,
    trim_redundant_joins,
)
from repro.queries.datalog import evaluate_query
from repro.queries.parser import parse_query
from repro.relational import Instance, RelationalSchema, Table


def corr(text):
    return Correspondence.parse(text)


def candidate(source_text, target_text, covered):
    return MappingCandidate(
        parse_query(source_text),
        parse_query(target_text),
        tuple(corr(c) for c in covered),
    )


CORRS = ["a.x <-> t.u", "b.y <-> t.w"]


class TestSameMapping:
    def test_renamed_copies_equal(self):
        first = candidate("ans(x, y) :- a(x), b(y)", "ans(x, y) :- t(x, y)", CORRS)
        second = candidate(
            "ans(p, q) :- a(p), b(q)", "ans(p, q) :- t(p, q)", CORRS
        )
        assert first.same_mapping_as(second)

    def test_different_tables_differ(self):
        first = candidate("ans(x, y) :- a(x), b(y)", "ans(x, y) :- t(x, y)", CORRS)
        second = candidate(
            "ans(x, y) :- a(x), c(y)", "ans(x, y) :- t(x, y)", CORRS
        )
        assert not first.same_mapping_as(second)

    def test_different_coverage_differs(self):
        first = candidate("ans(x, y) :- a(x), b(y)", "ans(x, y) :- t(x, y)", CORRS)
        second = candidate(
            "ans(x, y) :- a(x), b(y)", "ans(x, y) :- t(x, y)", CORRS[:1]
        )
        assert not first.same_mapping_as(second)

    def test_join_structure_matters(self):
        joined = candidate(
            "ans(x, y) :- a(x, z), b(z, y)", "ans(x, y) :- t(x, y)", CORRS
        )
        cross = candidate(
            "ans(x, y) :- a(x, z), b(w, y)", "ans(x, y) :- t(x, y)", CORRS
        )
        assert not joined.same_mapping_as(cross)


class TestDeduplicate:
    def test_keeps_first_of_equals(self):
        first = candidate("ans(x, y) :- a(x), b(y)", "ans(x, y) :- t(x, y)", CORRS)
        second = candidate(
            "ans(p, q) :- a(p), b(q)", "ans(p, q) :- t(p, q)", CORRS
        )
        assert deduplicate_candidates([first, second]) == [first]

    def test_distinct_all_kept(self):
        first = candidate("ans(x, y) :- a(x), b(y)", "ans(x, y) :- t(x, y)", CORRS)
        second = candidate(
            "ans(x, y) :- a(x), c(y)", "ans(x, y) :- t(x, y)", CORRS
        )
        assert len(deduplicate_candidates([first, second])) == 2


class TestTrimRedundantJoins:
    def test_superset_join_dropped(self):
        lean = candidate("ans(x, y) :- a(x), b(y)", "ans(x, y) :- t(x, y)", CORRS)
        fat = candidate(
            "ans(x, y) :- a(x), b(y), extra(x)", "ans(x, y) :- t(x, y)", CORRS
        )
        assert trim_redundant_joins([fat, lean]) == [lean]

    def test_different_coverage_not_compared(self):
        lean = candidate(
            "ans(x) :- a(x)", "ans(x) :- t(x, w)", CORRS[:1]
        )
        fat = candidate(
            "ans(x, y) :- a(x), b(y), extra(x)", "ans(x, y) :- t(x, y)", CORRS
        )
        assert len(trim_redundant_joins([fat, lean])) == 2

    def test_incomparable_table_sets_kept(self):
        first = candidate("ans(x, y) :- a(x), b(y)", "ans(x, y) :- t(x, y)", CORRS)
        second = candidate(
            "ans(x, y) :- a2(x), b(y)", "ans(x, y) :- t(x, y)", CORRS
        )
        assert len(trim_redundant_joins([first, second])) == 2


class TestQueryToAlgebra:
    @pytest.fixture
    def instance(self):
        schema = RelationalSchema("s")
        schema.add_table(Table("writes", ["pname", "bid"]))
        schema.add_table(Table("soldat", ["bid", "sid"]))
        inst = Instance(schema)
        inst.add_all("writes", [("ann", "b1"), ("bob", "b2")])
        inst.add_all("soldat", [("b1", "s1"), ("b2", "s2"), ("b1", "s3")])
        return inst

    def test_algebra_matches_datalog(self, instance):
        query = parse_query("ans(v1, v2) :- writes(v1, y), soldat(y, v2)")
        algebra = query_to_algebra(query, instance.schema)
        assert (
            algebra.evaluate(instance).rows == evaluate_query(query, instance)
        )

    def test_rendering_mentions_joins(self, instance):
        query = parse_query("ans(v1, v2) :- writes(v1, y), soldat(y, v2)")
        text = query_to_algebra(query, instance.schema).render()
        assert "⋈" in text and "π" in text

    def test_empty_query_rejected(self, instance):
        from repro.queries.conjunctive import ConjunctiveQuery

        with pytest.raises(ValueError):
            query_to_algebra(ConjunctiveQuery([], []), instance.schema)
