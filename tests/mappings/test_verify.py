"""Unit tests for mapping verification against instances."""

import pytest

from repro.datasets.instances import generate_instance
from repro.datasets.registry import load_dataset
from repro.discovery import discover_mappings
from repro.mappings import exchange
from repro.mappings.verify import (
    VerificationReport,
    satisfies,
    tgd_violations,
    verify_mappings,
)
from repro.queries.parser import parse_query
from repro.mappings.tgd import SourceToTargetTGD
from repro.relational import Instance, RelationalSchema, Table


@pytest.fixture
def simple():
    source_schema = RelationalSchema("s", [Table("a", ["x"], ["x"])])
    target_schema = RelationalSchema("t", [Table("b", ["x"], ["x"])])
    tgd = SourceToTargetTGD(
        parse_query("ans(x) :- a(x)"),
        parse_query("ans(x) :- b(x)"),
        "copy",
    )
    source = Instance.from_dict(source_schema, {"a": [("1",), ("2",)]})
    return tgd, source, target_schema


class TestTgdViolations:
    def test_satisfied_pair(self, simple):
        tgd, source, target_schema = simple
        target = Instance.from_dict(
            target_schema, {"b": [("1",), ("2",), ("3",)]}
        )
        assert tgd_violations(tgd, source, target) == []
        assert satisfies(tgd, source, target)

    def test_missing_tuple_reported(self, simple):
        tgd, source, target_schema = simple
        target = Instance.from_dict(target_schema, {"b": [("1",)]})
        violations = tgd_violations(tgd, source, target)
        assert len(violations) == 1
        assert violations[0].exported == ("2",)
        assert not satisfies(tgd, source, target)
        assert "no target tuple" in str(violations[0])

    def test_limit_respected(self, simple):
        tgd, _, target_schema = simple
        big_source = Instance.from_dict(
            RelationalSchema("s", [Table("a", ["x"], ["x"])]),
            {"a": [(str(i),) for i in range(20)]},
        )
        target = Instance(target_schema)
        assert len(tgd_violations(tgd, big_source, target, limit=5)) == 5


class TestVerifyMappings:
    def test_exchange_output_always_verifies(self):
        pair = load_dataset("Hotel")
        source = generate_instance(pair.source.schema, rows_per_table=3)
        tgds = []
        for mapping_case in pair.cases:
            result = discover_mappings(
                pair.source, pair.target, mapping_case.correspondences
            )
            tgds.append(result.best().to_tgd(mapping_case.case_id))
        target = exchange(tgds, source, pair.target.schema)
        report = verify_mappings(tgds, source, target)
        assert report.ok
        assert len(report.satisfied) == len(tgds)

    def test_empty_target_reports_everything(self, simple):
        tgd, source, target_schema = simple
        report = verify_mappings([tgd], source, Instance(target_schema))
        assert not report.ok
        assert report.satisfied == ()
        assert "violation" in str(report)


class TestSampledLiveInstances:
    """Verification against instances sampled from live SQLite files.

    The ingest path feeds ``verify_mappings`` rows read back through
    ``PRAGMA`` introspection and deterministic sampling rather than
    in-memory fixtures; both the satisfied and the violated-with-witness
    outcomes must survive that round trip.
    """

    def _sampled(self, schema, rows):
        from repro.ingest import (
            introspect_sqlite,
            materialize_sqlite,
            sample_instance,
        )

        instance = Instance.from_dict(schema, rows)
        connection = materialize_sqlite(schema, instance=instance)
        try:
            introspection = introspect_sqlite(connection)
            return sample_instance(connection, introspection)
        finally:
            connection.close()

    def test_satisfied_on_sampled_pair(self, simple):
        tgd, source, target_schema = simple
        sampled_source = self._sampled(
            source.schema, {"a": [("1",), ("2",)]}
        )
        sampled_target = self._sampled(
            target_schema, {"b": [("1",), ("2",)]}
        )
        report = verify_mappings([tgd], sampled_source, sampled_target)
        assert report.ok
        assert len(report.satisfied) == 1

    def test_violation_carries_witness_from_live_rows(self, simple):
        tgd, source, target_schema = simple
        sampled_source = self._sampled(
            source.schema, {"a": [("1",), ("2",)]}
        )
        sampled_target = self._sampled(target_schema, {"b": [("1",)]})
        report = verify_mappings([tgd], sampled_source, sampled_target)
        assert not report.ok
        (violation,) = report.violated
        assert violation.exported == ("2",)

    def test_dataset_exchange_verifies_after_sqlite_round_trip(self):
        """Hotel end to end: generated instance → SQLite → sampled back
        → exchanged target also round-tripped → every TGD satisfied."""
        pair = load_dataset("Hotel")
        source = generate_instance(pair.source.schema, rows_per_table=3)
        case = pair.cases[0]
        result = discover_mappings(
            pair.source, pair.target, case.correspondences
        )
        tgd = result.best().to_tgd(case.case_id)
        sampled_source = self._sampled(
            pair.source.schema,
            {
                name: list(source.rows(name))
                for name in pair.source.schema.table_names()
            },
        )
        target = exchange([tgd], sampled_source, pair.target.schema)
        report = verify_mappings([tgd], sampled_source, target)
        assert report.ok
