"""Unit tests for outer-join refinement (the paper's Section 6 hints)."""

import pytest

from repro.datasets.paper_examples import employee_example, project_example
from repro.discovery import discover_mappings
from repro.mappings import outer_join_algebra
from repro.mappings.refinement import optional_classes, optional_tables
from repro.queries.parser import parse_query
from repro.relational import Instance, LabeledNull, RelationalSchema, Table


@pytest.fixture(scope="module")
def employee_candidate():
    scenario = employee_example()
    result = discover_mappings(
        scenario.source, scenario.target, scenario.correspondences
    )
    return scenario, result.best()


class TestOptionalHints:
    def test_isa_down_edges_are_optional(self, employee_candidate):
        _, candidate = employee_candidate
        assert candidate.source_optional_tables == {"engineer", "programmer"}

    def test_mandatory_chain_has_no_hints(self):
        scenario = project_example()
        result = discover_mappings(
            scenario.source, scenario.target, scenario.correspondences
        )
        # controlledBy and hasManager are total (1..1): nothing optional.
        assert result.best().source_optional_tables == frozenset()

    def test_optional_classes_cover_subtrees(self):
        from repro.cm import CMGraph, ConceptualModel
        from repro.discovery.csg import CSG
        from repro.semantics.stree import (
            STreeEdge,
            STreeNode,
            SemanticTree,
        )

        cm = ConceptualModel("m")
        for name in ["A", "B", "C"]:
            cm.add_class(name, attributes=[name.lower()], key=[name.lower()])
        cm.add_relationship("maybe", "A", "B", "0..1", "0..*")
        cm.add_relationship("always", "B", "C", "1..1", "0..*")
        graph = CMGraph(cm)
        a, b, c = STreeNode("A"), STreeNode("B"), STreeNode("C")
        tree = SemanticTree(
            a,
            [
                STreeEdge(a, b, graph.edge("A", "maybe")),
                STreeEdge(b, c, graph.edge("B", "always")),
            ],
        )
        csg = CSG(tree, (("A", a), ("C", c)), "test")
        # B is optional (min 0) and drags its whole subtree (C) along.
        assert optional_classes(csg) == {"B", "C"}


class TestOuterJoinAlgebra:
    @pytest.fixture
    def employee_instance(self, employee_candidate):
        scenario, _ = employee_candidate
        instance = Instance(scenario.source.schema)
        instance.add_all("employee", [("1", "ann"), ("2", "bob"), ("3", "cal")])
        instance.add_all("engineer", [("1", "ann", "siteA"), ("2", "bob", "siteB")])
        instance.add_all(
            "programmer", [("1", "ann", "acct1"), ("3", "cal", "acct3")]
        )
        return instance

    def test_full_outer_join_keeps_both_sides(
        self, employee_candidate, employee_instance
    ):
        scenario, candidate = employee_candidate
        plan = outer_join_algebra(
            candidate.source_query,
            scenario.source.schema,
            candidate.source_optional_tables,
        )
        rows = plan.evaluate(employee_instance).sorted_rows()
        # Three people survive: ann (both), bob (engineer only),
        # cal (programmer only).
        assert len(rows) == 3
        assert any(isinstance(v, LabeledNull) for row in rows for v in row)

    def test_inner_join_drops_singletons(
        self, employee_candidate, employee_instance
    ):
        from repro.mappings import query_to_algebra

        scenario, candidate = employee_candidate
        plan = query_to_algebra(
            candidate.source_query, scenario.source.schema
        )
        rows = plan.evaluate(employee_instance).sorted_rows()
        assert len(rows) == 1  # only ann is both

    def test_mixed_mandatory_and_optional(self):
        schema = RelationalSchema(
            "s",
            [
                Table("base", ["k", "v"], ["k"]),
                Table("extra", ["k", "w"], ["k"]),
            ],
        )
        instance = Instance(schema)
        instance.add_all("base", [("1", "a"), ("2", "b")])
        instance.add_all("extra", [("1", "x")])
        query = parse_query("ans(v, w) :- base(k, v), extra(k, w)")
        plan = outer_join_algebra(query, schema, {"extra"})
        rows = plan.evaluate(instance).sorted_rows()
        assert len(rows) == 2
        padded = [row for row in rows if isinstance(row[1], LabeledNull)]
        assert len(padded) == 1

    def test_render_shows_outer_operators(self, employee_candidate):
        scenario, candidate = employee_candidate
        plan = outer_join_algebra(
            candidate.source_query,
            scenario.source.schema,
            candidate.source_optional_tables,
        )
        assert "⟗" in plan.render()
