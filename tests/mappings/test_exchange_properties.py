"""Property-based tests: exchange always produces a satisfying solution."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mappings import exchange
from repro.mappings.tgd import SourceToTargetTGD
from repro.mappings.verify import verify_mappings
from repro.queries.parser import parse_query
from repro.relational import Instance, RelationalSchema, Table


def source_schema() -> RelationalSchema:
    schema = RelationalSchema("s")
    schema.add_table(Table("r", ["a", "b"]))
    schema.add_table(Table("s", ["b", "c"]))
    return schema


def target_schema() -> RelationalSchema:
    schema = RelationalSchema("t")
    schema.add_table(Table("u", ["x", "y"]))
    schema.add_table(Table("w", ["x", "y", "z"]))
    return schema


TGDS = [
    SourceToTargetTGD(
        parse_query("ans(a, b) :- r(a, b)"),
        parse_query("ans(a, b) :- u(a, b)"),
        "copy",
    ),
    SourceToTargetTGD(
        parse_query("ans(a, c) :- r(a, b), s(b, c)"),
        parse_query("ans(a, c) :- u(a, c)"),
        "join",
    ),
    SourceToTargetTGD(
        parse_query("ans(a) :- r(a, b)"),
        parse_query("ans(a) :- w(a, fresh, also)"),
        "skolemizing",
    ),
    SourceToTargetTGD(
        parse_query("ans(a, c) :- r(a, b), s(b, c)"),
        parse_query("ans(a, c) :- u(a, mid), w(mid, c, pad)"),
        "shared-existential",
    ),
]

values = st.sampled_from(["p", "q", "r", "1", "2"])
rows2 = st.lists(st.tuples(values, values), max_size=8)


@settings(max_examples=40, deadline=None)
@given(r_rows=rows2, s_rows=rows2, picks=st.lists(st.integers(0, 3), min_size=1, max_size=4))
def test_exchange_result_satisfies_all_tgds(r_rows, s_rows, picks):
    source = Instance(source_schema())
    source.add_all("r", r_rows)
    source.add_all("s", s_rows)
    tgds = [TGDS[i] for i in sorted(set(picks))]
    target = exchange(tgds, source, target_schema())
    report = verify_mappings(tgds, source, target)
    assert report.ok, str(report)


@settings(max_examples=40, deadline=None)
@given(r_rows=rows2)
def test_exchange_is_monotone(r_rows):
    """More source rows never produce fewer target rows."""
    schema = source_schema()
    small = Instance(schema)
    small.add_all("r", r_rows[: len(r_rows) // 2])
    large = Instance(schema)
    large.add_all("r", r_rows)
    tgd = TGDS[0]
    target_small = exchange([tgd], small, target_schema())
    target_large = exchange([tgd], large, target_schema())
    assert set(target_small.rows("u")) <= set(target_large.rows("u"))


@settings(max_examples=40, deadline=None)
@given(r_rows=rows2, s_rows=rows2)
def test_exchange_idempotent_on_rerun(r_rows, s_rows):
    source = Instance(source_schema())
    source.add_all("r", r_rows)
    source.add_all("s", s_rows)
    first = exchange(TGDS, source, target_schema())
    second = exchange(TGDS, source, target_schema())
    for table in ("u", "w"):
        assert first.rows(table) == second.rows(table)
