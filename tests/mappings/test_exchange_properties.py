"""Property-based tests: exchange always produces a satisfying solution."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mappings import exchange, isomorphic_instances
from repro.mappings.tgd import SourceToTargetTGD
from repro.mappings.verify import verify_mappings
from repro.queries.parser import parse_query
from repro.relational import Instance, RelationalSchema, Table


def source_schema() -> RelationalSchema:
    schema = RelationalSchema("s")
    schema.add_table(Table("r", ["a", "b"]))
    schema.add_table(Table("s", ["b", "c"]))
    return schema


def target_schema() -> RelationalSchema:
    schema = RelationalSchema("t")
    schema.add_table(Table("u", ["x", "y"]))
    schema.add_table(Table("w", ["x", "y", "z"]))
    return schema


TGDS = [
    SourceToTargetTGD(
        parse_query("ans(a, b) :- r(a, b)"),
        parse_query("ans(a, b) :- u(a, b)"),
        "copy",
    ),
    SourceToTargetTGD(
        parse_query("ans(a, c) :- r(a, b), s(b, c)"),
        parse_query("ans(a, c) :- u(a, c)"),
        "join",
    ),
    SourceToTargetTGD(
        parse_query("ans(a) :- r(a, b)"),
        parse_query("ans(a) :- w(a, fresh, also)"),
        "skolemizing",
    ),
    SourceToTargetTGD(
        parse_query("ans(a, c) :- r(a, b), s(b, c)"),
        parse_query("ans(a, c) :- u(a, mid), w(mid, c, pad)"),
        "shared-existential",
    ),
]

values = st.sampled_from(["p", "q", "r", "1", "2"])
rows2 = st.lists(st.tuples(values, values), max_size=8)


@settings(max_examples=40, deadline=None)
@given(r_rows=rows2, s_rows=rows2, picks=st.lists(st.integers(0, 3), min_size=1, max_size=4))
def test_exchange_result_satisfies_all_tgds(r_rows, s_rows, picks):
    source = Instance(source_schema())
    source.add_all("r", r_rows)
    source.add_all("s", s_rows)
    tgds = [TGDS[i] for i in sorted(set(picks))]
    target = exchange(tgds, source, target_schema())
    report = verify_mappings(tgds, source, target)
    assert report.ok, str(report)


@settings(max_examples=40, deadline=None)
@given(r_rows=rows2)
def test_exchange_is_monotone(r_rows):
    """More source rows never produce fewer target rows."""
    schema = source_schema()
    small = Instance(schema)
    small.add_all("r", r_rows[: len(r_rows) // 2])
    large = Instance(schema)
    large.add_all("r", r_rows)
    tgd = TGDS[0]
    target_small = exchange([tgd], small, target_schema())
    target_large = exchange([tgd], large, target_schema())
    assert set(target_small.rows("u")) <= set(target_large.rows("u"))


@settings(max_examples=40, deadline=None)
@given(r_rows=rows2, s_rows=rows2)
def test_exchange_idempotent_on_rerun(r_rows, s_rows):
    source = Instance(source_schema())
    source.add_all("r", r_rows)
    source.add_all("s", s_rows)
    first = exchange(TGDS, source, target_schema())
    second = exchange(TGDS, source, target_schema())
    for table in ("u", "w"):
        assert first.rows(table) == second.rows(table)


@settings(max_examples=40, deadline=None)
@given(r_rows=rows2, s_rows=rows2, picks=st.lists(st.integers(0, 3), min_size=1, max_size=4))
def test_repeated_exchange_yields_isomorphic_nulls(r_rows, s_rows, picks):
    """Skolem-null identity: re-running exchange — even with the tgds
    renamed, which relabels every null — produces the same canonical
    universal solution up to a bijection of labeled nulls."""
    source = Instance(source_schema())
    source.add_all("r", r_rows)
    source.add_all("s", s_rows)
    tgds = [TGDS[i] for i in sorted(set(picks))]
    renamed = [
        SourceToTargetTGD(tgd.source, tgd.target, f"renamed-{tgd.name}")
        for tgd in tgds
    ]
    first = exchange(tgds, source, target_schema())
    again = exchange(tgds, source, target_schema())
    relabeled = exchange(renamed, source, target_schema())
    assert isomorphic_instances(first, again)
    assert isomorphic_instances(first, relabeled)


@settings(max_examples=25, deadline=None)
@given(r_rows=rows2)
def test_distinct_solutions_are_not_isomorphic(r_rows):
    """Sanity direction: dropping a tgd changes the solution whenever
    that tgd produced any row."""
    source = Instance(source_schema())
    source.add_all("r", r_rows)
    full = exchange([TGDS[0], TGDS[2]], source, target_schema())
    partial = exchange([TGDS[0]], source, target_schema())
    if full.size() != partial.size():
        assert not isomorphic_instances(full, partial)
