"""Property test: mapping serialization round-trips losslessly.

For any structurally valid :class:`MappingSet`, ``load_mapping_set``
applied to ``dump_mapping_set`` must reproduce the original set exactly
(dataclass equality covers queries, covered correspondences, method,
notes, optional tables, and the set's fingerprint/scenario_id
provenance), and re-serializing the restored set must produce the
identical document text.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mappings.expression import MappingCandidate, MappingSet
from repro.mappings.serialize import dump_mapping_set, load_mapping_set
from repro.queries.conjunctive import (
    Atom,
    ConjunctiveQuery,
    Constant,
    Variable,
)

#: Bare identifiers as accepted by correspondence/atom parsing: no
#: whitespace, no dots.
names = st.from_regex(r"[a-z][a-z0-9_]{0,7}", fullmatch=True)

#: JSON-stable constant values (ints and strings survive a JSON trip
#: with their types intact).
constants = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.text(
        alphabet=st.characters(
            whitelist_categories=("Ll", "Lu", "Nd"), max_codepoint=0x024F
        ),
        max_size=12,
    ),
)


@st.composite
def safe_queries(draw):
    """A safe conjunctive query: every head variable occurs in the body."""
    body_vars = draw(
        st.lists(names, min_size=1, max_size=4, unique=True)
    ).copy()
    atoms = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        terms = [
            Variable(draw(st.sampled_from(body_vars)))
            if draw(st.booleans())
            else Constant(draw(constants))
            for _ in range(draw(st.integers(min_value=1, max_value=3)))
        ]
        # Guarantee at least one variable somewhere in the body.
        if not atoms and not any(isinstance(t, Variable) for t in terms):
            terms[0] = Variable(body_vars[0])
        atoms.append(Atom(draw(names), terms))
    usable = sorted(
        {t.name for atom in atoms for t in atom.terms if isinstance(t, Variable)}
    )
    head = [
        Variable(name)
        for name in draw(
            st.lists(st.sampled_from(usable), min_size=1, max_size=3)
        )
    ]
    return ConjunctiveQuery(head, atoms, draw(names))


@st.composite
def candidates(draw):
    covered_texts = draw(
        st.lists(
            st.tuples(names, names, names, names).map(
                lambda parts: f"{parts[0]}.{parts[1]} <-> {parts[2]}.{parts[3]}"
            ),
            max_size=3,
            unique=True,
        )
    )
    from repro.correspondences import Correspondence

    return MappingCandidate(
        source_query=draw(safe_queries()),
        target_query=draw(safe_queries()),
        covered=tuple(Correspondence.parse(t) for t in covered_texts),
        method=draw(st.sampled_from(["semantic", "syntactic", "manual"])),
        notes=draw(st.text(max_size=30)),
        source_optional_tables=frozenset(
            draw(st.lists(names, max_size=3))
        ),
    )


@st.composite
def mapping_sets(draw):
    """A MappingSet with optional provenance stamps."""
    return MappingSet(
        candidates=tuple(draw(st.lists(candidates(), max_size=4))),
        fingerprint=draw(
            st.one_of(st.none(), st.from_regex(r"[0-9a-f]{16}", fullmatch=True))
        ),
        scenario_id=draw(st.one_of(st.none(), names)),
    )


class TestSerializeRoundTrip:
    @settings(max_examples=150, deadline=None)
    @given(mapping_sets())
    def test_load_after_dump_is_identity(self, original):
        text = dump_mapping_set(original)
        restored = load_mapping_set(text)
        assert restored == original
        # And the round trip is a fixed point of serialization itself.
        assert dump_mapping_set(restored) == text

    @settings(max_examples=50, deadline=None)
    @given(candidates())
    def test_single_candidate_fields_survive(self, candidate):
        (restored,) = load_mapping_set(
            dump_mapping_set([candidate])
        ).candidates
        assert restored.source_query == candidate.source_query
        assert restored.target_query == candidate.target_query
        assert restored.covered == candidate.covered
        assert restored.method == candidate.method
        assert restored.notes == candidate.notes
        assert (
            restored.source_optional_tables
            == candidate.source_optional_tables
        )
