"""SQL generation tests — executed for real on stdlib SQLite.

The strongest check possible offline: load a synthetic instance into an
in-memory SQLite database (via the emitted DDL), run the generated
``SELECT``/``INSERT`` statements, and compare against this library's own
evaluators.
"""

import sqlite3

import pytest

from repro.datasets.instances import generate_instance
from repro.datasets.registry import load_dataset
from repro.discovery import discover_mappings
from repro.exceptions import QueryError
from repro.mappings import exchange
from repro.mappings.sql import insert_sql, select_sql
from repro.queries.datalog import evaluate_query
from repro.queries.parser import parse_query
from repro.relational import Instance, RelationalSchema
from repro.relational.ddl import emit_ddl
from repro.relational.instance import LabeledNull


def load_sqlite(instance: Instance) -> sqlite3.Connection:
    connection = sqlite3.connect(":memory:")
    connection.executescript(emit_ddl(instance.schema))
    for table in instance.schema:
        placeholders = ", ".join("?" for _ in table.columns)
        for row in instance.rows(table.name):
            connection.execute(
                f"INSERT INTO {table.name} VALUES ({placeholders})",
                tuple(str(value) for value in row),
            )
    return connection


@pytest.fixture(scope="module")
def hotel():
    pair = load_dataset("Hotel")
    instance = generate_instance(pair.source.schema, rows_per_table=4)
    return pair, instance


@pytest.mark.parametrize("name", ["3Sdb", "Network"])
def test_other_datasets_match_sqlite(name):
    """Cross-validate every discovered source query on more domains."""
    pair = load_dataset(name)
    instance = generate_instance(pair.source.schema, rows_per_table=3)
    connection = load_sqlite(instance)
    for mapping_case in pair.cases:
        result = discover_mappings(
            pair.source, pair.target, mapping_case.correspondences
        )
        for candidate in result.candidates:
            sql = select_sql(candidate.source_query, pair.source.schema)
            sqlite_rows = set(connection.execute(sql).fetchall())
            our_rows = {
                tuple(str(v) for v in row)
                for row in evaluate_query(candidate.source_query, instance)
            }
            assert sqlite_rows == our_rows, mapping_case.case_id


class TestSelectSql:
    def test_simple_join_matches_evaluator(self, hotel):
        pair, instance = hotel
        query = parse_query(
            "ans(v1, v2) :- room(v1, b, a, h), hotel(h, v2, c)"
        )
        sql = select_sql(query, pair.source.schema)
        connection = load_sqlite(instance)
        sqlite_rows = set(connection.execute(sql).fetchall())
        our_rows = {
            tuple(str(v) for v in row)
            for row in evaluate_query(query, instance)
        }
        assert sqlite_rows == our_rows

    def test_all_hotel_case_queries_match_sqlite(self, hotel):
        pair, instance = hotel
        connection = load_sqlite(instance)
        for mapping_case in pair.cases:
            result = discover_mappings(
                pair.source, pair.target, mapping_case.correspondences
            )
            for candidate in result.candidates:
                sql = select_sql(candidate.source_query, pair.source.schema)
                sqlite_rows = set(connection.execute(sql).fetchall())
                our_rows = {
                    tuple(str(v) for v in row)
                    for row in evaluate_query(
                        candidate.source_query, instance
                    )
                }
                assert sqlite_rows == our_rows, mapping_case.case_id

    def test_constant_condition(self, hotel):
        pair, instance = hotel
        some_hotel = instance.rows("hotel")[0][0]
        query = parse_query(f"ans(v1) :- hotel(h, v1, c), hotel(h, v1, c)")
        sql = select_sql(query, pair.source.schema)
        assert "SELECT DISTINCT" in sql

    def test_empty_query_rejected(self, hotel):
        pair, _ = hotel
        from repro.queries.conjunctive import ConjunctiveQuery

        with pytest.raises(QueryError):
            select_sql(ConjunctiveQuery([], []), pair.source.schema)


class TestInsertSql:
    def test_insert_script_populates_target(self, hotel):
        pair, instance = hotel
        mapping_case = pair.cases[0]  # hotel-room-of-hotel
        result = discover_mappings(
            pair.source, pair.target, mapping_case.correspondences
        )
        tgd = result.best().to_tgd("m")
        script = insert_sql(tgd, pair.source.schema, pair.target.schema)

        connection = load_sqlite(instance)
        connection.executescript(emit_ddl(pair.target.schema))
        connection.executescript(script)

        # Cross-check against the library's own exchange engine.
        exchanged = exchange([tgd], instance, pair.target.schema)
        for table in pair.target.schema:
            sqlite_count = connection.execute(
                f"SELECT COUNT(*) FROM {table.name}"
            ).fetchone()[0]
            assert sqlite_count == exchanged.size(table.name), table.name

    def test_exported_values_identical_to_exchange(self, hotel):
        pair, instance = hotel
        mapping_case = pair.cases[4]  # trivial hotel → property
        result = discover_mappings(
            pair.source, pair.target, mapping_case.correspondences
        )
        tgd = result.best().to_tgd("m")
        script = insert_sql(tgd, pair.source.schema, pair.target.schema)
        connection = load_sqlite(instance)
        connection.executescript(emit_ddl(pair.target.schema))
        connection.executescript(script)
        sqlite_names = {
            row[0]
            for row in connection.execute("SELECT pname FROM property")
        }
        exchanged = exchange([tgd], instance, pair.target.schema)
        our_names = {
            row[1]
            for row in exchanged.rows("property")
            if not isinstance(row[1], LabeledNull)
        }
        assert sqlite_names == {str(v) for v in our_names}

    def test_skolem_expressions_mentioned(self, hotel):
        pair, _ = hotel
        mapping_case = pair.cases[4]
        result = discover_mappings(
            pair.source, pair.target, mapping_case.correspondences
        )
        tgd = result.best().to_tgd("m")
        script = insert_sql(tgd, pair.source.schema, pair.target.schema)
        assert "_sk:m:" in script
        assert "INSERT OR IGNORE INTO property" in script
