"""Unit tests for the mapping lifecycle algebra.

Covers the three operations — containment/equivalence, composition, and
inversion — plus the MappingSet pruning helpers built on them.
"""

import pytest

from repro.correspondences import Correspondence
from repro.mappings import (
    MappingCandidate,
    MappingSet,
    compose,
    contains,
    equivalent,
    exchange,
    implies,
    invert,
    minimize_mapping_set,
)
from repro.mappings.expression import deduplicate_candidates
from repro.queries.parser import parse_query
from repro.relational import Instance, RelationalSchema, Table


def candidate(source_text, target_text, covered=("p.a <-> q.a",)):
    return MappingCandidate(
        parse_query(source_text),
        parse_query(target_text),
        tuple(Correspondence.parse(c) for c in covered),
    )


class TestImplication:
    def test_weaker_premise_implies_stronger(self):
        weak = candidate("ans(x) :- p(x)", "ans(x) :- q(x)")
        strong = candidate("ans(x) :- p(x), r(x)", "ans(x) :- q(x)")
        assert implies(weak, strong)
        assert not implies(strong, weak)
        assert contains(weak, strong)
        assert not contains(strong, weak)

    def test_renamed_variables_are_equivalent(self):
        first = candidate("ans(x) :- p(x, y)", "ans(x) :- q(x)")
        second = candidate("ans(u) :- p(u, v)", "ans(u) :- q(u)")
        assert equivalent(first, second)

    def test_redundant_atom_is_equivalent(self):
        lean = candidate("ans(x) :- p(x)", "ans(x) :- q(x)")
        padded = candidate("ans(x) :- p(x), p(y)", "ans(x) :- q(x)")
        assert equivalent(lean, padded)

    def test_crossed_exports_not_equivalent(self):
        """Per-side boolean equivalence is not tgd equivalence."""
        straight = candidate("ans(x, y) :- p(x, y)", "ans(x, y) :- q(x, y)")
        crossed = candidate("ans(x, y) :- p(x, y)", "ans(x, y) :- q(y, x)")
        assert not equivalent(straight, crossed)

    def test_existential_conclusion_implied_by_stronger(self):
        """q(x, y) entails ∃z q(x, z)."""
        concrete = candidate("ans(x, y) :- p(x, y)", "ans(x, y) :- q(x, y)")
        skolemizing = candidate("ans(x) :- p(x, y)", "ans(x) :- q(x, z)")
        assert implies(concrete, skolemizing)
        assert not implies(skolemizing, concrete)

    def test_set_level_implication_needs_every_candidate(self):
        copier = candidate("ans(x) :- p(x)", "ans(x) :- q(x)")
        other = candidate("ans(x) :- r(x)", "ans(x) :- s(x)")
        assert not implies(copier, [copier, other])
        assert implies([copier, other], [copier])

    def test_minimize_mapping_set_drops_entailed(self):
        general = candidate("ans(x) :- p(x)", "ans(x) :- q(x)")
        special = candidate("ans(x) :- p(x), r(x)", "ans(x) :- q(x)")
        minimized = minimize_mapping_set([general, special])
        assert list(minimized) == [general]

    def test_minimize_keeps_independent_candidates(self):
        first = candidate("ans(x) :- p(x)", "ans(x) :- q(x)")
        second = candidate("ans(x) :- r(x)", "ans(x) :- s(x)")
        assert len(minimize_mapping_set([first, second])) == 2

    def test_minimize_preserves_provenance(self):
        mapping = MappingSet.of(
            [candidate("ans(x) :- p(x)", "ans(x) :- q(x)")],
            fingerprint="abc123",
        )
        assert minimize_mapping_set(mapping).fingerprint == "abc123"


class TestCompose:
    def test_simple_chain(self):
        first = candidate(
            "ans(n) :- person(n)",
            "ans(n) :- emp(n)",
            covered=("person.name <-> emp.name",),
        )
        second = candidate(
            "ans(n) :- emp(n)",
            "ans(n) :- worker(n)",
            covered=("emp.name <-> worker.name",),
        )
        composed = compose(first, second)
        assert len(composed) == 1
        direct = candidate(
            "ans(n) :- person(n)",
            "ans(n) :- worker(n)",
            covered=("person.name <-> worker.name",),
        )
        assert equivalent(composed, direct)
        assert composed.best().method == "composed"
        assert composed.best().covered == direct.covered

    def test_shared_existential_forces_skolem_unification(self):
        """p(x) → ∃y r(x,y)∧t(y) composed with r(u,v)∧t(v) → q(u)
        collapses to p(x) → q(u=x): both premise atoms must resolve to
        the *same* firing because the Skolem for y is shared."""
        first = candidate("ans(x) :- p(x)", "ans(x) :- r(x, y), t(y)")
        second = candidate("ans(u) :- r(u, v), t(v)", "ans(u) :- q(u)")
        composed = compose(first, second)
        assert len(composed) == 1
        assert equivalent(
            composed, candidate("ans(x) :- p(x)", "ans(x) :- q(x)")
        )

    def test_null_carried_export_is_dropped(self):
        """An export only a labeled null would carry through the middle
        schema becomes an existential; the head position disappears."""
        first = candidate("ans(x) :- p(x)", "ans(x) :- t(x, y)")
        second = candidate(
            "ans(u, v) :- t(u, v)", "ans(u, v) :- w(u, v)"
        )
        composed = compose(first, second)
        assert len(composed) == 1
        result = composed.best()
        assert "lost to nulls" in result.notes
        assert equivalent(
            result, candidate("ans(x) :- p(x)", "ans(x) :- w(x, e)")
        )

    def test_unmatchable_premise_composes_to_nothing(self):
        first = candidate("ans(x) :- p(x)", "ans(x) :- r(x)")
        second = candidate("ans(x) :- other(x)", "ans(x) :- q(x)")
        assert len(compose(first, second)) == 0

    def test_covered_correspondences_join_on_middle_schema(self):
        first = candidate(
            "ans(a, b) :- src(a, b)",
            "ans(a, b) :- mid(a, b)",
            covered=("src.a <-> mid.a", "src.b <-> mid.b"),
        )
        second = candidate(
            "ans(a, b) :- mid(a, b)",
            "ans(a, b) :- dst(a, b)",
            covered=("mid.a <-> dst.a",),
        )
        (result,) = compose(first, second)
        assert [str(c) for c in result.covered] == ["src.a ↔ dst.a"]

    def test_prune_collapses_redundant_unfoldings(self):
        """Two first-hop candidates producing the same middle table give
        two raw unfoldings; pruning keeps only inequivalent ones."""
        narrow = candidate("ans(x) :- p(x)", "ans(x) :- m(x)")
        wide = candidate("ans(x) :- p(x), r(x)", "ans(x) :- m(x)")
        second = candidate("ans(x) :- m(x)", "ans(x) :- q(x)")
        pruned = compose([narrow, wide], second)
        assert len(pruned) == 1
        raw = compose([narrow, wide], second, prune=False)
        assert len(raw) == 2

    def test_composition_commutes_with_exchange(self):
        """Chaining two exchanges equals one exchange of the composition
        (on the null-free fragment)."""
        s = RelationalSchema("s")
        s.add_table(Table("person", ["name"]))
        t = RelationalSchema("t")
        t.add_table(Table("emp", ["name"]))
        u = RelationalSchema("u")
        u.add_table(Table("worker", ["name"]))
        first = candidate("ans(n) :- person(n)", "ans(n) :- emp(n)")
        second = candidate("ans(n) :- emp(n)", "ans(n) :- worker(n)")
        source = Instance(s)
        source.add_all("person", [("ada",), ("grace",)])
        mid = exchange([first.to_tgd("M1")], source, t)
        chained = exchange([second.to_tgd("M2")], mid, u)
        direct = exchange(compose(first, second).to_tgds(), source, u)
        assert direct.rows("worker") == chained.rows("worker")


class TestInvert:
    def test_exact_inverse(self):
        forward = candidate(
            "ans(a, b) :- p(a, b)",
            "ans(a, b) :- q(a, b)",
            covered=("p.a <-> q.a",),
        )
        result = invert(forward)
        assert result.exact
        (report,) = result.reports
        assert report.inverse.source_query == forward.target_query
        assert report.inverse.target_query == forward.source_query
        assert [str(c) for c in report.inverse.covered] == [
            "q.a ↔ p.a"
        ]
        assert report.inverse.method == "inverted"
        assert "exact inverse" in result.render()

    def test_quasi_inverse_reports_losses(self):
        lossy = candidate(
            "ans(a) :- p(a, hidden)", "ans(a) :- q(a, fresh)"
        )
        result = invert(lossy)
        assert not result.exact
        (report,) = result.reports
        assert report.inverse is not None
        assert report.lost_source_variables == ("hidden",)
        assert report.null_joined_variables == ("fresh",)
        assert "quasi" in report.inverse.notes
        assert "restored as nulls" in result.render()

    def test_exportless_candidate_refused(self):
        boolean = candidate("ans() :- p(x)", "ans() :- q(y)")
        result = invert(boolean)
        assert not result.exact
        (report,) = result.reports
        assert report.inverse is None
        assert "exports nothing" in report.reason
        assert len(result.mappings) == 0

    def test_inverse_of_inverse_is_original(self):
        forward = candidate(
            "ans(a, b) :- p(a, b)", "ans(a, b) :- q(a, b)"
        )
        twice = invert(invert(forward).mappings).mappings.best()
        assert twice.same_mapping_as(forward)


class TestSemanticDedup:
    def test_equivalent_candidates_collapse(self):
        lean = candidate("ans(x) :- p(x)", "ans(x) :- q(x)")
        padded = candidate("ans(x) :- p(x), p(y)", "ans(x) :- q(x)")
        assert deduplicate_candidates([lean, padded]) == [lean]

    def test_non_equivalent_candidates_all_survive(self):
        """The safety gate: dedup must never drop a candidate that is
        not logically equivalent to a kept one — even when the per-side
        queries are boolean-equivalent (crossed exports)."""
        straight = candidate(
            "ans(x, y) :- p(x, y)", "ans(x, y) :- q(x, y)"
        )
        crossed = candidate(
            "ans(x, y) :- p(x, y)", "ans(x, y) :- q(y, x)"
        )
        kept = deduplicate_candidates([straight, crossed])
        assert kept == [straight, crossed]

    def test_different_covered_sets_never_merge(self):
        first = candidate(
            "ans(x) :- p(x)", "ans(x) :- q(x)", covered=("p.a <-> q.a",)
        )
        second = candidate(
            "ans(x) :- p(x)", "ans(x) :- q(x)", covered=("p.b <-> q.b",)
        )
        assert len(deduplicate_candidates([first, second])) == 2


class TestMappingSetBehaviour:
    def test_of_coerces_and_stamps(self):
        one = candidate("ans(x) :- p(x)", "ans(x) :- q(x)")
        mapping = MappingSet.of([one], fingerprint="f00d")
        assert MappingSet.of(one).candidates == (one,)
        assert MappingSet.of(mapping).fingerprint == "f00d"
        assert MappingSet.of(mapping, fingerprint="beef").fingerprint == (
            "beef"
        )

    def test_sequence_protocol(self):
        one = candidate("ans(x) :- p(x)", "ans(x) :- q(x)")
        mapping = MappingSet.of([one])
        assert len(mapping) == 1 and bool(mapping)
        assert mapping[0] is one and list(mapping) == [one]
        assert not MappingSet()
        assert MappingSet().best() is None

    def test_render_uses_tgd_names(self):
        mapping = MappingSet.of(
            [
                candidate("ans(x) :- p(x)", "ans(x) :- q(x)"),
                candidate("ans(x) :- r(x)", "ans(x) :- s(x)"),
            ]
        )
        rendered = mapping.render()
        assert "M1" in rendered and "M2" in rendered

    def test_frozen(self):
        mapping = MappingSet()
        with pytest.raises(AttributeError):
            mapping.fingerprint = "nope"
