"""Unit tests for target-coverage analysis."""

import pytest

from repro.datasets.registry import load_dataset
from repro.discovery import discover_mappings
from repro.mappings.coverage import (
    ColumnStatus,
    coverage_summary,
    target_coverage,
)
from repro.mappings.tgd import SourceToTargetTGD
from repro.queries.parser import parse_query
from repro.relational import RelationalSchema, Table


@pytest.fixture
def target_schema():
    return RelationalSchema(
        "t",
        [
            Table("u", ["x", "y"], ["x"]),
            Table("untended", ["z"], ["z"]),
        ],
    )


class TestTargetCoverage:
    def test_exported_skolem_and_untouched(self, target_schema):
        tgd = SourceToTargetTGD(
            parse_query("ans(a) :- r(a)"),
            parse_query("ans(a) :- u(a, invented)"),
            "m1",
        )
        coverage = {
            (c.table, c.column): c
            for c in target_coverage([tgd], target_schema)
        }
        assert coverage[("u", "x")].status is ColumnStatus.EXPORTED
        assert coverage[("u", "x")].writers == ("m1",)
        assert coverage[("u", "y")].status is ColumnStatus.SKOLEM_ONLY
        assert coverage[("untended", "z")].status is ColumnStatus.UNTOUCHED

    def test_exported_wins_over_skolem(self, target_schema):
        skolemizing = SourceToTargetTGD(
            parse_query("ans(a) :- r(a)"),
            parse_query("ans(a) :- u(a, invented)"),
            "m1",
        )
        exporting = SourceToTargetTGD(
            parse_query("ans(a, b) :- s(a, b)"),
            parse_query("ans(a, b) :- u(a, b)"),
            "m2",
        )
        coverage = {
            (c.table, c.column): c
            for c in target_coverage([skolemizing, exporting], target_schema)
        }
        assert coverage[("u", "y")].status is ColumnStatus.EXPORTED
        assert coverage[("u", "y")].writers == ("m2",)

    def test_summary_counts(self, target_schema):
        tgd = SourceToTargetTGD(
            parse_query("ans(a) :- r(a)"),
            parse_query("ans(a) :- u(a, invented)"),
            "m1",
        )
        summary = coverage_summary(target_coverage([tgd], target_schema))
        assert summary[ColumnStatus.EXPORTED] == 1
        assert summary[ColumnStatus.SKOLEM_ONLY] == 1
        assert summary[ColumnStatus.UNTOUCHED] == 1

    def test_rendering(self, target_schema):
        tgd = SourceToTargetTGD(
            parse_query("ans(a) :- r(a)"),
            parse_query("ans(a) :- u(a, invented)"),
            "m1",
        )
        (first, *_) = target_coverage([tgd], target_schema)
        assert "u.x: exported (m1)" == str(first)


class TestOnDatasets:
    def test_hotel_full_pipeline_coverage(self):
        """The discovered Hotel mapping set exports every corresponded
        target column and leaves keys to Skolems."""
        pair = load_dataset("Hotel")
        tgds = []
        for mapping_case in pair.cases:
            result = discover_mappings(
                pair.source, pair.target, mapping_case.correspondences
            )
            tgds.append(result.best().to_tgd(mapping_case.case_id))
        coverage = {
            (c.table, c.column): c.status
            for c in target_coverage(tgds, pair.target.schema)
        }
        assert coverage[("property", "pname")] is ColumnStatus.EXPORTED
        assert coverage[("customer", "cname")] is ColumnStatus.EXPORTED
        assert coverage[("tariff", "amount")] is ColumnStatus.EXPORTED
        # Target surrogate keys are never exported (ssn/eid-style).
        assert coverage[("property", "pid")] is ColumnStatus.SKOLEM_ONLY
