"""Unit tests for s-t tgds and query alignment."""

import pytest

from repro.exceptions import QueryError
from repro.mappings import SourceToTargetTGD, align_queries
from repro.queries.parser import parse_query
from repro.queries.conjunctive import Variable


class TestSourceToTargetTGD:
    def make(self):
        source = parse_query("ans(v1, v2) :- writes(v1, y), soldat(y, v2)")
        target = parse_query("ans(v1, v2) :- hasbooksoldat(v1, v2)")
        return SourceToTargetTGD(source, target, "M5")

    def test_arity_must_match(self):
        source = parse_query("ans(x) :- r(x)")
        target = parse_query("ans(x, y) :- s(x, y)")
        with pytest.raises(QueryError):
            SourceToTargetTGD(source, target)

    def test_quantifier_partition(self):
        tgd = self.make()
        assert set(tgd.universal_variables()) == {
            Variable("v1"),
            Variable("y"),
            Variable("v2"),
        }
        assert tgd.existential_variables() == ()

    def test_existential_variables(self):
        source = parse_query("ans(v1) :- person(v1)")
        target = parse_query("ans(v1) :- hasbooksoldat(v1, x)")
        tgd = SourceToTargetTGD(source, target, "M3")
        assert tgd.existential_variables() == (Variable("x"),)
        assert "∃x" in tgd.render()

    def test_render_matches_paper_style(self):
        text = self.make().render()
        assert text.startswith("M5: ∀")
        assert "→" in text
        assert "writes(v1, y)" in text
        # No namespace prefixes in the human-facing rendering.
        assert "T:" not in text

    def test_exported_arity(self):
        assert self.make().exported_arity == 2


class TestAlignQueries:
    def test_target_head_renamed_to_source_head(self):
        source = parse_query("ans(a, b) :- r(a, b)")
        target = parse_query("ans(x, y) :- s(x, y)")
        tgd = align_queries(source, target)
        assert tgd.target.head_terms == (Variable("a"), Variable("b"))

    def test_clashing_body_variables_freshened(self):
        source = parse_query("ans(a) :- r(a, z)")
        target = parse_query("ans(x) :- s(x, z)")
        tgd = align_queries(source, target)
        target_vars = set(tgd.target.variables())
        # The target's z must not capture the source's z.
        assert Variable("z") not in target_vars
        assert Variable("a") in target_vars

    def test_arity_mismatch_rejected(self):
        with pytest.raises(QueryError):
            align_queries(
                parse_query("ans(a) :- r(a)"),
                parse_query("ans(x, y) :- s(x, y)"),
            )

    def test_already_aligned_is_stable(self):
        source = parse_query("ans(v1) :- r(v1)")
        target = parse_query("ans(v1) :- s(v1, w)")
        tgd = align_queries(source, target)
        assert tgd.target.head_terms == (Variable("v1"),)
