"""Unit tests for mapping-set diffing."""

from repro.correspondences import Correspondence
from repro.datasets.paper_examples import partof_example
from repro.discovery import discover_mappings
from repro.mappings import MappingCandidate
from repro.mappings.diff import diff_candidates
from repro.queries.parser import parse_query


def candidate(source_text, covered=("a.x <-> t.u",)):
    return MappingCandidate(
        parse_query(source_text),
        parse_query("ans(x) :- t(x)"),
        tuple(Correspondence.parse(c) for c in covered),
    )


class TestDiff:
    def test_identical_sets_are_empty_diff(self):
        first = [candidate("ans(x) :- a(x)")]
        second = [candidate("ans(y) :- a(y)")]  # renamed copy
        diff = diff_candidates(first, second)
        assert diff.is_empty
        assert len(diff.unchanged) == 1

    def test_added_and_removed(self):
        old = [candidate("ans(x) :- a(x)")]
        new = [candidate("ans(x) :- b(x)")]
        diff = diff_candidates(old, new)
        assert len(diff.added) == 1
        assert len(diff.removed) == 1
        assert "+ " in diff.render() and "- " in diff.render()

    def test_duplicates_matched_one_to_one(self):
        one = candidate("ans(x) :- a(x)")
        diff = diff_candidates([one, one], [one])
        assert len(diff.unchanged) == 1
        assert len(diff.removed) == 1

    def test_semantic_match_ignores_redundant_atoms(self):
        """A logically equivalent regeneration is not churn."""
        lean = candidate("ans(x) :- a(x)")
        padded = candidate("ans(x) :- a(x), a(y)")
        diff = diff_candidates([lean], [padded])
        assert diff.is_empty

    def test_mapping_sets_accepted(self):
        from repro.mappings import MappingSet

        old = MappingSet.of([candidate("ans(x) :- a(x)")])
        new = MappingSet.of([candidate("ans(x) :- b(x)")])
        diff = diff_candidates(old, new)
        assert len(diff.added) == 1 and len(diff.removed) == 1

    def test_render_is_order_independent(self):
        """Byte-stable output regardless of candidate input order."""
        candidates = [
            candidate("ans(x) :- a(x)", covered=("a.x <-> t.u",)),
            candidate("ans(x) :- b(x)", covered=("b.y <-> t.u",)),
            candidate("ans(x) :- c(x)", covered=("c.z <-> t.v",)),
        ]
        forward = diff_candidates([], candidates)
        backward = diff_candidates([], list(reversed(candidates)))
        assert forward.render() == backward.render()
        removed_f = diff_candidates(candidates, [])
        removed_b = diff_candidates(list(reversed(candidates)), [])
        assert removed_f.render() == removed_b.render()

    def test_render_groups_by_covered_key(self):
        shared = candidate("ans(x) :- b(x)", covered=("a.x <-> t.u",))
        other = candidate("ans(x) :- c(x)", covered=("c.z <-> t.v",))
        rendered = diff_candidates(
            [], [other, shared, candidate("ans(x) :- a(x)")]
        ).render()
        lines = rendered.splitlines()[1:]
        # Both a.x<->t.u candidates render adjacently, before c.z<->t.v.
        assert "a(x)" in lines[0] and "b(x)" in lines[1]
        assert "c(x)" in lines[2]

    def test_schema_evolution_scenario(self):
        """Toggling the partOf flag changes the candidate set: the diff
        reports exactly the deanOf candidate appearing."""
        strict = partof_example(target_is_partof=True)
        loose = partof_example(target_is_partof=False)
        old = discover_mappings(
            strict.source, strict.target, strict.correspondences
        ).candidates
        new = discover_mappings(
            loose.source, loose.target, loose.correspondences
        ).candidates
        diff = diff_candidates(old, new)
        assert len(diff.unchanged) == 1
        assert len(diff.added) == 1
        assert "deanof" in str(diff.added[0])
        assert diff.removed == ()
        assert "1 added" in diff.summary()
