"""Unit tests for mapping-set diffing."""

from repro.correspondences import Correspondence
from repro.datasets.paper_examples import partof_example
from repro.discovery import discover_mappings
from repro.mappings import MappingCandidate
from repro.mappings.diff import diff_candidates
from repro.queries.parser import parse_query


def candidate(source_text, covered=("a.x <-> t.u",)):
    return MappingCandidate(
        parse_query(source_text),
        parse_query("ans(x) :- t(x)"),
        tuple(Correspondence.parse(c) for c in covered),
    )


class TestDiff:
    def test_identical_sets_are_empty_diff(self):
        first = [candidate("ans(x) :- a(x)")]
        second = [candidate("ans(y) :- a(y)")]  # renamed copy
        diff = diff_candidates(first, second)
        assert diff.is_empty
        assert len(diff.unchanged) == 1

    def test_added_and_removed(self):
        old = [candidate("ans(x) :- a(x)")]
        new = [candidate("ans(x) :- b(x)")]
        diff = diff_candidates(old, new)
        assert len(diff.added) == 1
        assert len(diff.removed) == 1
        assert "+ " in diff.render() and "- " in diff.render()

    def test_duplicates_matched_one_to_one(self):
        one = candidate("ans(x) :- a(x)")
        diff = diff_candidates([one, one], [one])
        assert len(diff.unchanged) == 1
        assert len(diff.removed) == 1

    def test_schema_evolution_scenario(self):
        """Toggling the partOf flag changes the candidate set: the diff
        reports exactly the deanOf candidate appearing."""
        strict = partof_example(target_is_partof=True)
        loose = partof_example(target_is_partof=False)
        old = discover_mappings(
            strict.source, strict.target, strict.correspondences
        ).candidates
        new = discover_mappings(
            loose.source, loose.target, loose.correspondences
        ).candidates
        diff = diff_candidates(old, new)
        assert len(diff.unchanged) == 1
        assert len(diff.added) == 1
        assert "deanof" in str(diff.added[0])
        assert diff.removed == ()
        assert "1 added" in diff.summary()
