"""End-to-end explain/trace behaviour through the discovery pipeline."""

import copy

import pytest

from repro.datasets.paper_examples import employee_example, partof_example
from repro.discovery import (
    DiscoveryOptions,
    Scenario,
    SemanticMapper,
    discover_many,
    discover_mappings,
)
from repro.trace import TRACE_FORMAT, Tracer, phase_seconds


def explain_result(scenario, **option_changes):
    options = DiscoveryOptions(explain=True).replace(**option_changes)
    return SemanticMapper(
        scenario.source,
        scenario.target,
        scenario.correspondences,
        options=options,
    ).discover()


def span_names(span):
    yield span["name"]
    for child in span.get("children", ()):
        yield from span_names(child)


def strip_timings(document):
    document = copy.deepcopy(document)

    def scrub(span):
        span.pop("elapsed_s", None)
        for child in span.get("children", ()):
            scrub(child)

    for span in document["spans"]:
        scrub(span)
    return document


class TestExplainMode:
    def test_partof_prune_recorded(self):
        result = explain_result(partof_example(target_is_partof=True))
        assert result.trace is not None
        rules = {event["rule"] for event in result.trace["prunes"]}
        assert "partOf" in rules
        partof = [
            event
            for event in result.trace["prunes"]
            if event["rule"] == "partOf"
        ]
        for event in partof:
            assert event["phase"] == "pair_filter"
            assert event["source_csg"]
            assert event["target_csg"]
            assert event["detail"]

    def test_disjointness_prune_recorded(self):
        result = explain_result(employee_example(disjoint_subclasses=True))
        rules = {event["rule"] for event in result.trace["prunes"]}
        assert any(rule.startswith("disjointness") for rule in rules)

    def test_prunes_mirror_eliminations(self):
        result = explain_result(partof_example(target_is_partof=True))
        for event in result.trace["prunes"]:
            if event["phase"] == "pair_filter":
                assert any(
                    event["detail"] in text for text in result.eliminations
                )

    def test_span_tree_covers_pipeline(self):
        result = explain_result(partof_example(target_is_partof=True))
        (root,) = result.trace["spans"]
        names = set(span_names(root))
        assert {
            "discover",
            "lift",
            "target_csgs",
            "source_search",
            "rank",
        } <= names
        assert root["name"] == "discover"
        assert result.trace["format"] == TRACE_FORMAT

    def test_rank_provenance_on_result(self):
        result = explain_result(partof_example(target_is_partof=True))
        assert len(result.rank_provenance) == len(result.candidates)
        best = result.rank_provenance[0]
        assert best["rank"] == 1
        assert "covered" in best
        assert result.trace["provenance"] == result.rank_provenance

    def test_phase_seconds_flattens_trace(self):
        result = explain_result(partof_example(target_is_partof=True))
        seconds = phase_seconds(result.trace)
        assert seconds["discover"] >= 0
        assert "rank" in seconds

    def test_trace_without_explain_skips_prunes(self):
        scenario = partof_example(target_is_partof=True)
        result = SemanticMapper(
            scenario.source,
            scenario.target,
            scenario.correspondences,
            options=DiscoveryOptions(trace=True),
        ).discover()
        assert result.trace is not None
        assert result.trace["explain"] is False
        assert result.trace["prunes"] == []
        assert result.rank_provenance == []

    def test_untraced_by_default(self):
        scenario = partof_example(target_is_partof=True)
        result = SemanticMapper(
            scenario.source, scenario.target, scenario.correspondences
        ).discover()
        assert result.trace is None
        assert result.rank_provenance == []


class TestDeterminism:
    def test_trace_stable_across_runs_modulo_timings(self):
        scenario = partof_example(target_is_partof=True)
        first = explain_result(scenario)
        second = explain_result(scenario)
        assert strip_timings(first.trace) == strip_timings(second.trace)

    def test_candidates_unchanged_by_explain(self):
        scenario = partof_example(target_is_partof=True)
        plain = SemanticMapper(
            scenario.source, scenario.target, scenario.correspondences
        ).discover()
        explained = explain_result(scenario)
        assert [str(c.source_query) for c in plain.candidates] == [
            str(c.source_query) for c in explained.candidates
        ]


class TestCallerOwnedTracer:
    def test_discover_mappings_accepts_tracer(self):
        scenario = partof_example(target_is_partof=True)
        tracer = Tracer(explain=True)
        result = discover_mappings(
            scenario.source,
            scenario.target,
            scenario.correspondences,
            trace=tracer,
        )
        assert tracer.span_count > 0
        assert tracer.prunes
        assert result.trace is not None

    def test_tracer_accumulates_across_runs(self):
        scenario = partof_example(target_is_partof=True)
        tracer = Tracer()
        for _ in range(2):
            discover_mappings(
                scenario.source,
                scenario.target,
                scenario.correspondences,
                trace=tracer,
            )
        assert len(tracer.roots) == 2


class TestBatchEquivalence:
    @pytest.fixture(scope="class")
    def scenarios(self):
        specs = [
            ("partof", partof_example(target_is_partof=True)),
            ("employee", employee_example(disjoint_subclasses=True)),
            ("plain", partof_example(target_is_partof=False)),
        ]
        return [
            Scenario.create(
                scenario_id,
                example.source,
                example.target,
                example.correspondences,
                options=DiscoveryOptions(explain=True),
            )
            for scenario_id, example in specs
        ]

    def test_parallel_serial_equivalent_with_explain(self, scenarios):
        serial = discover_many(scenarios, workers=1)
        parallel = discover_many(scenarios, workers=2)
        assert not serial.failures and not parallel.failures
        for (sid, s_result), (pid, p_result) in zip(
            serial.results, parallel.results
        ):
            assert sid == pid
            assert [str(c.source_query) for c in s_result.candidates] == [
                str(c.source_query) for c in p_result.candidates
            ]
            assert strip_timings(s_result.trace) == strip_timings(
                p_result.trace
            )
            assert s_result.rank_provenance == p_result.rank_provenance
