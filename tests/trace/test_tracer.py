"""Unit tests for ``repro.trace``: spans, prunes, activation, no-ops."""

import json
import threading

import pytest

from repro import trace as tracing
from repro.trace import (
    NOOP,
    TRACE_FORMAT,
    NoopTracer,
    PruneEvent,
    Span,
    Tracer,
    phase_seconds,
    render_span,
    render_trace,
)
from repro.trace.tracer import _NULL_SPAN


class TestSpan:
    def test_close_records_elapsed(self):
        span = Span("phase")
        span.close()
        assert span.elapsed_seconds >= 0

    def test_set_attaches_attribute(self):
        span = Span("phase")
        span.set("candidates", 3)
        assert span.to_dict()["attributes"] == {"candidates": 3}

    def test_to_dict_omits_empty_sections(self):
        span = Span("phase")
        span.close()
        data = span.to_dict()
        assert set(data) == {"name", "elapsed_s"}

    def test_children_nest_in_dict(self):
        parent = Span("outer")
        parent.children.append(Span("inner"))
        assert parent.to_dict()["children"][0]["name"] == "inner"


class TestTracer:
    def test_spans_nest_per_stack(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert len(tracer.roots) == 1
        assert tracer.roots[0].children[0].name == "inner"
        assert tracer.span_count == 2

    def test_span_attributes_from_kwargs(self):
        tracer = Tracer()
        with tracer.span("phase", anchor="Person"):
            pass
        assert tracer.roots[0].attributes == {"anchor": "Person"}

    def test_prune_requires_explain(self):
        tracer = Tracer(explain=False)
        tracer.prune("pair_filter", "cardinality", detail="nope")
        assert tracer.prunes == []
        explainer = Tracer(explain=True)
        explainer.prune("pair_filter", "cardinality", detail="nope")
        assert explainer.prunes == [
            PruneEvent("pair_filter", "cardinality", detail="nope")
        ]

    def test_prune_attaches_to_open_span(self):
        tracer = Tracer(explain=True)
        with tracer.span("csg_pair"):
            tracer.prune("pair_filter", "partOf", "s", "t", "why")
        assert tracer.roots[0].events[0].rule == "partOf"
        assert tracer.prunes[0].to_dict() == {
            "phase": "pair_filter",
            "rule": "partOf",
            "source_csg": "s",
            "target_csg": "t",
            "detail": "why",
        }

    def test_rank_requires_explain(self):
        tracer = Tracer()
        tracer.rank({"rank": 1})
        assert tracer.provenance == []
        explainer = Tracer(explain=True)
        explainer.rank({"rank": 1})
        assert explainer.provenance == [{"rank": 1}]

    def test_prune_rules_counts_sorted(self):
        tracer = Tracer(explain=True)
        for rule in ("partOf", "cardinality", "partOf"):
            tracer.prune("pair_filter", rule)
        assert tracer.prune_rules() == {"cardinality": 1, "partOf": 2}

    def test_to_dict_shape(self):
        tracer = Tracer(explain=True)
        with tracer.span("discover"):
            tracer.prune("pair_filter", "anchor")
        document = tracer.to_dict()
        assert document["format"] == TRACE_FORMAT
        assert document["explain"] is True
        assert document["spans"][0]["name"] == "discover"
        assert document["prunes"][0]["rule"] == "anchor"
        assert document["provenance"] == []

    def test_to_json_sorted_and_parseable(self):
        tracer = Tracer()
        with tracer.span("discover"):
            pass
        document = json.loads(tracer.to_json())
        assert document["format"] == TRACE_FORMAT

    def test_threads_get_independent_stacks(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)

        def worker(name):
            barrier.wait()
            with tracer.span(name):
                with tracer.span(f"{name}-child"):
                    pass

        threads = [
            threading.Thread(target=worker, args=(f"t{i}",))
            for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # two root spans, each with exactly its own child — no interleave
        assert sorted(span.name for span in tracer.roots) == ["t0", "t1"]
        for span in tracer.roots:
            assert [child.name for child in span.children] == [
                f"{span.name}-child"
            ]


class TestNoop:
    def test_disabled_flags(self):
        assert NOOP.enabled is False
        assert NOOP.explain is False
        assert isinstance(NOOP, NoopTracer)

    def test_span_returns_shared_null_context(self):
        first = NOOP.span("a", attr=1)
        second = NOOP.span("b")
        assert first is second is _NULL_SPAN
        with first as span:
            span.set("ignored", True)  # Span-compatible, does nothing

    def test_prune_and_rank_are_noops(self):
        NOOP.prune("pair_filter", "anchor")
        NOOP.rank({"rank": 1})


class TestActivation:
    def test_no_tracer_by_default(self):
        assert tracing.current() is None
        assert tracing.active() is False
        assert tracing.span("anything") is _NULL_SPAN

    def test_activate_scopes_tracer(self):
        tracer = Tracer(explain=True)
        with tracing.activate(tracer):
            assert tracing.current() is tracer
            with tracing.span("phase"):
                tracing.prune("pair_filter", "cardinality")
        assert tracing.current() is None
        assert tracer.roots[0].name == "phase"
        assert tracer.prunes[0].rule == "cardinality"

    def test_module_prune_respects_explain(self):
        tracer = Tracer(explain=False)
        with tracing.activate(tracer):
            tracing.prune("pair_filter", "cardinality")
        assert tracer.prunes == []


class TestRendering:
    @pytest.fixture()
    def trace_document(self):
        tracer = Tracer(explain=True)
        with tracer.span("discover"):
            with tracer.span("rank", scored=2):
                tracer.prune(
                    "rank", "anchor", "src", "tgt", "reified mismatch"
                )
        tracer.rank({"rank": 1, "candidate": "M1"})
        return tracer.to_dict()

    def test_render_span_indents_and_times(self, trace_document):
        lines = render_span(trace_document["spans"][0])
        text = "\n".join(lines)
        assert "discover" in text
        assert "ms" in text
        assert any(line.startswith("  rank") for line in lines)
        assert "pruned by anchor" in text

    def test_render_trace_sections(self, trace_document):
        text = render_trace(trace_document)
        assert "span tree" in text
        assert "anchor" in text
        assert "reified mismatch" in text

    def test_phase_seconds_accumulates_by_name(self, trace_document):
        seconds = phase_seconds(trace_document)
        assert set(seconds) == {"discover", "rank"}
        assert all(value >= 0 for value in seconds.values())
