"""Unit tests for model (de)serialization."""

import pytest

from repro.exceptions import ConceptualModelError
from repro.cm import SemanticType, model_from_dict, model_to_dict


SPEC = {
    "name": "books",
    "classes": {
        "Person": {"attributes": ["pname"], "key": ["pname"]},
        "Book": {"attributes": ["bid"], "key": ["bid"]},
        "Author": {},
    },
    "relationships": [
        {
            "name": "writes",
            "from": "Person",
            "to": "Book",
            "to_card": "0..*",
            "from_card": "1..*",
        },
        {
            "name": "chapterOf",
            "from": "Book",
            "to": "Book",
            "to_card": "0..1",
            "semantic_type": "partOf",
        },
    ],
    "reified": [
        {
            "name": "Sell",
            "roles": {"seller": "Person", "sold": "Book"},
            "attributes": ["date"],
            "role_cards": {"seller": "0..*", "sold": "0..1"},
        }
    ],
    "isa": [["Author", "Person"]],
    "disjoint": [["Author", "Book"]],
    "covers": [],
}


class TestFromDict:
    def test_builds_everything(self):
        cm = model_from_dict(SPEC)
        assert cm.name == "books"
        assert cm.cm_class("Person").key == ("pname",)
        assert cm.relationship("writes").from_card.is_total
        assert cm.relationship("chapterOf").semantic_type is SemanticType.PART_OF
        assert cm.is_reified("Sell")
        assert cm.relationship("sold").from_card.is_functional
        assert ("Author", "Person") in cm.isa_links
        assert cm.disjointness_groups == (frozenset({"Author", "Book"}),)

    def test_name_required(self):
        with pytest.raises(ConceptualModelError):
            model_from_dict({})

    def test_default_cards(self):
        cm = model_from_dict(
            {
                "name": "m",
                "classes": {"A": {}, "B": {}},
                "relationships": [{"name": "r", "from": "A", "to": "B"}],
            }
        )
        rel = cm.relationship("r")
        assert str(rel.to_card) == "0..*"
        assert str(rel.from_card) == "0..*"


class TestRoundTrip:
    def test_round_trips(self):
        cm = model_from_dict(SPEC)
        spec2 = model_to_dict(cm)
        cm2 = model_from_dict(spec2)
        assert cm2.class_names() == cm.class_names()
        assert set(cm2.relationships) == set(cm.relationships)
        assert cm2.isa_links == cm.isa_links
        assert cm2.disjointness_groups == cm.disjointness_groups
        for name in cm.relationships:
            original = cm.relationship(name)
            restored = cm2.relationship(name)
            assert original.to_card == restored.to_card
            assert original.from_card == restored.from_card
            assert original.semantic_type is restored.semantic_type

    def test_reified_survive_round_trip(self):
        cm = model_from_dict(SPEC)
        cm2 = model_from_dict(model_to_dict(cm))
        assert cm2.is_reified("Sell")
        assert {r.name for r in cm2.roles_of("Sell")} == {"seller", "sold"}
