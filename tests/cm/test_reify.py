"""Unit tests for reification transforms."""

import pytest

from repro.exceptions import ConceptualModelError
from repro.cm import (
    CMGraph,
    CMReasoner,
    ConceptualModel,
    ConnectionCategory,
    auto_reify_many_many,
    reify_relationship,
)
from repro.cm.graph import INVERSE_MARK
from repro.cm.reify import DOMAIN_ROLE_SUFFIX, RANGE_ROLE_SUFFIX


@pytest.fixture
def model() -> ConceptualModel:
    cm = ConceptualModel("books")
    cm.add_class("Person", attributes=["pname"], key=["pname"])
    cm.add_class("Book", attributes=["bid"], key=["bid"])
    cm.add_relationship("writes", "Person", "Book", "0..*", "1..*")
    cm.add_relationship("favourite", "Person", "Book", "0..1", "0..*")
    return cm


class TestReifyRelationship:
    def test_creates_reified_class_and_roles(self, model):
        reified, mapping = reify_relationship(model, "writes")
        assert reified.is_reified("writes")
        roles = reified.roles_of("writes")
        assert {r.name for r in roles} == {
            "writes" + DOMAIN_ROLE_SUFFIX,
            "writes" + RANGE_ROLE_SUFFIX,
        }
        entry = mapping.original("writes")
        assert (entry.domain, entry.range) == ("Person", "Book")

    def test_original_model_untouched(self, model):
        reify_relationship(model, "writes")
        assert model.has_relationship("writes")
        assert not model.has_class("writes")

    def test_category_preserved_through_roles(self, model):
        reified, _ = reify_relationship(model, "writes")
        graph = CMGraph(reified)
        # Traversing Person --(writes#d)⁻--> writes◇ --writes#r--> Book
        # composes back to the original many-many category.
        path = [
            graph.edge("Person", "writes" + DOMAIN_ROLE_SUFFIX + INVERSE_MARK),
            graph.edge("writes", "writes" + RANGE_ROLE_SUFFIX),
        ]
        assert CMReasoner.path_category(path) is ConnectionCategory.MANY_MANY

    def test_functional_category_preserved(self, model):
        reified, _ = reify_relationship(model, "favourite")
        graph = CMGraph(reified)
        path = [
            graph.edge(
                "Person", "favourite" + DOMAIN_ROLE_SUFFIX + INVERSE_MARK
            ),
            graph.edge("favourite", "favourite" + RANGE_ROLE_SUFFIX),
        ]
        assert CMReasoner.path_category(path) is ConnectionCategory.MANY_ONE

    def test_reifying_a_role_rejected(self, model):
        reified, _ = reify_relationship(model, "writes")
        with pytest.raises(ConceptualModelError):
            reify_relationship(reified, "writes" + DOMAIN_ROLE_SUFFIX)

    def test_unknown_relationship_rejected(self, model):
        with pytest.raises(ConceptualModelError):
            reify_relationship(model, "ghost")

    def test_preserves_isa_and_constraints(self):
        cm = ConceptualModel("m")
        cm.add_class("A")
        cm.add_class("B")
        cm.add_class("C")
        cm.add_isa("B", "A")
        cm.add_isa("C", "A")
        cm.add_disjointness(["B", "C"])
        cm.add_cover("A", ["B", "C"])
        cm.add_relationship("r", "B", "C", "0..*", "0..*")
        reified, _ = reify_relationship(cm, "r")
        assert reified.isa_links == cm.isa_links
        assert reified.disjointness_groups == cm.disjointness_groups
        assert reified.covers == cm.covers


class TestAutoReify:
    def test_only_many_many_reified(self, model):
        reified, mapping = auto_reify_many_many(model)
        assert mapping.is_reified_class("writes")
        assert not mapping.is_reified_class("favourite")
        assert reified.has_relationship("favourite")
        assert not reified.has_relationship("writes")

    def test_existing_reified_roles_untouched(self):
        cm = ConceptualModel("m")
        cm.add_class("Store")
        cm.add_class("Product")
        cm.add_reified_relationship(
            "Sell", roles={"seller": "Store", "sold": "Product"}
        )
        reified, mapping = auto_reify_many_many(cm)
        assert not mapping.entries
        assert reified.is_reified("Sell")

    def test_mapping_lookup_errors(self, model):
        _, mapping = auto_reify_many_many(model)
        with pytest.raises(ConceptualModelError):
            mapping.original("favourite")
