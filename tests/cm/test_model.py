"""Unit tests for the conceptual modeling language."""

import pytest

from repro.exceptions import ConceptualModelError
from repro.cm import ConceptualModel, ConnectionCategory, SemanticType


def books_model() -> ConceptualModel:
    cm = ConceptualModel("books")
    cm.add_class("Person", attributes=["pname"], key=["pname"])
    cm.add_class("Book", attributes=["bid"], key=["bid"])
    cm.add_class("Bookstore", attributes=["sid"], key=["sid"])
    cm.add_relationship("writes", "Person", "Book", "0..*", "1..*")
    cm.add_relationship("soldAt", "Book", "Bookstore", "0..*", "0..*")
    return cm


class TestClasses:
    def test_add_and_lookup(self):
        cm = books_model()
        assert cm.cm_class("Person").key == ("pname",)
        assert cm.has_class("Book")
        assert not cm.has_class("Ghost")

    def test_duplicate_class_rejected(self):
        cm = books_model()
        with pytest.raises(ConceptualModelError):
            cm.add_class("Person")

    def test_key_must_be_attribute(self):
        cm = ConceptualModel("m")
        with pytest.raises(ConceptualModelError):
            cm.add_class("C", attributes=["a"], key=["b"])

    def test_duplicate_attributes_rejected(self):
        cm = ConceptualModel("m")
        with pytest.raises(ConceptualModelError):
            cm.add_class("C", attributes=["a", "a"])

    def test_unknown_class_lookup_raises(self):
        with pytest.raises(ConceptualModelError):
            ConceptualModel("m").cm_class("Ghost")

    def test_class_names_preserve_order(self):
        assert books_model().class_names() == ("Person", "Book", "Bookstore")

    def test_reified_marker_rendering(self):
        cm = ConceptualModel("m")
        cls = cm.add_class("Sell", reified=True)
        assert str(cls) == "Sell◇"
        assert cm.is_reified("Sell")


class TestRelationships:
    def test_functionality_flags(self):
        cm = books_model()
        writes = cm.relationship("writes")
        assert not writes.is_functional
        assert not writes.is_inverse_functional
        assert writes.is_many_many
        assert writes.category is ConnectionCategory.MANY_MANY

    def test_functional_relationship(self):
        cm = books_model()
        rel = cm.add_relationship("favourite", "Person", "Book", "0..1", "0..*")
        assert rel.is_functional
        assert rel.category is ConnectionCategory.MANY_ONE

    def test_endpoints_must_exist(self):
        cm = ConceptualModel("m")
        cm.add_class("A")
        with pytest.raises(ConceptualModelError):
            cm.add_relationship("r", "A", "Ghost")

    def test_duplicate_relationship_rejected(self):
        cm = books_model()
        with pytest.raises(ConceptualModelError):
            cm.add_relationship("writes", "Person", "Book")

    def test_isa_name_reserved(self):
        cm = books_model()
        with pytest.raises(ConceptualModelError):
            cm.add_relationship("isa", "Person", "Book")

    def test_relationships_of(self):
        cm = books_model()
        names = {r.name for r in cm.relationships_of("Book")}
        assert names == {"writes", "soldAt"}

    def test_semantic_type(self):
        cm = books_model()
        rel = cm.add_relationship(
            "chapterOf",
            "Book",
            "Book",
            semantic_type=SemanticType.PART_OF,
        )
        assert rel.semantic_type is SemanticType.PART_OF


class TestReifiedRelationships:
    def test_creates_class_and_roles(self):
        cm = ConceptualModel("m")
        cm.add_class("Store")
        cm.add_class("Person")
        cm.add_class("Product")
        cm.add_reified_relationship(
            "Sell",
            roles={"seller": "Store", "buyer": "Person", "sold": "Product"},
            attributes=["dateOfPurchase"],
        )
        assert cm.is_reified("Sell")
        roles = cm.roles_of("Sell")
        assert [r.name for r in roles] == ["seller", "buyer", "sold"]
        assert all(r.is_functional and r.is_role for r in roles)
        assert cm.cm_class("Sell").attributes == ("dateOfPurchase",)

    def test_role_cards_control_inverse(self):
        cm = ConceptualModel("m")
        cm.add_class("Project")
        cm.add_class("Employee")
        cm.add_reified_relationship(
            "Management",
            roles={"what": "Project", "who": "Employee"},
            role_cards={"what": "0..1", "who": "0..*"},
        )
        what = cm.relationship("what")
        assert what.from_card.is_functional  # each project managed at most once

    def test_unknown_role_card_rejected(self):
        cm = ConceptualModel("m")
        cm.add_class("A")
        with pytest.raises(ConceptualModelError):
            cm.add_reified_relationship(
                "R", roles={"x": "A"}, role_cards={"ghost": "0..1"}
            )

    def test_empty_roles_rejected(self):
        cm = ConceptualModel("m")
        with pytest.raises(ConceptualModelError):
            cm.add_reified_relationship("R", roles={})

    def test_roles_of_non_reified_rejected(self):
        cm = books_model()
        with pytest.raises(ConceptualModelError):
            cm.roles_of("Person")


class TestIsaAndConstraints:
    def employee_model(self) -> ConceptualModel:
        cm = ConceptualModel("emp")
        cm.add_class("Employee", attributes=["name"])
        cm.add_class("Engineer")
        cm.add_class("Programmer")
        cm.add_isa("Engineer", "Employee")
        cm.add_isa("Programmer", "Employee")
        return cm

    def test_isa_and_transitive_closure(self):
        cm = self.employee_model()
        cm.add_class("KernelHacker")
        cm.add_isa("KernelHacker", "Programmer")
        assert cm.superclasses("KernelHacker") == {"Programmer", "Employee"}
        assert cm.subclasses("Employee") == {
            "Engineer",
            "Programmer",
            "KernelHacker",
        }

    def test_direct_relatives(self):
        cm = self.employee_model()
        assert cm.direct_superclasses("Engineer") == ("Employee",)
        assert cm.direct_subclasses("Employee") == ("Engineer", "Programmer")

    def test_self_isa_rejected(self):
        cm = self.employee_model()
        with pytest.raises(ConceptualModelError):
            cm.add_isa("Employee", "Employee")

    def test_isa_cycle_rejected(self):
        cm = self.employee_model()
        with pytest.raises(ConceptualModelError):
            cm.add_isa("Employee", "Engineer")

    def test_duplicate_isa_is_idempotent(self):
        cm = self.employee_model()
        cm.add_isa("Engineer", "Employee")
        assert len(cm.isa_links) == 2

    def test_disjointness(self):
        cm = self.employee_model()
        cm.add_disjointness(["Engineer", "Programmer"])
        assert cm.disjointness_groups == (frozenset({"Engineer", "Programmer"}),)

    def test_disjointness_needs_two(self):
        cm = self.employee_model()
        with pytest.raises(ConceptualModelError):
            cm.add_disjointness(["Engineer"])

    def test_cover(self):
        cm = self.employee_model()
        cm.add_cover("Employee", ["Engineer", "Programmer"])
        assert cm.covers == (
            ("Employee", frozenset({"Engineer", "Programmer"})),
        )

    def test_cover_requires_declared_subclasses(self):
        cm = self.employee_model()
        cm.add_class("Manager")
        with pytest.raises(ConceptualModelError):
            cm.add_cover("Employee", ["Manager"])


class TestRendering:
    def test_describe_mentions_everything(self):
        cm = books_model()
        cm.add_class("Author")
        cm.add_isa("Author", "Person")
        text = cm.describe()
        assert "Person" in text
        assert "writes" in text
        assert "Author ISA Person" in text
