"""Unit and property-based tests for cardinalities and categories."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import CardinalityError
from repro.cm import Cardinality, ConnectionCategory, categories_compatible
from repro.cm.cardinality import MANY, ONE_MANY, ONE_ONE, ZERO_MANY, ZERO_ONE


class TestParsing:
    @pytest.mark.parametrize(
        "text,lower,upper",
        [
            ("0..*", 0, MANY),
            ("1..1", 1, 1),
            ("0..1", 0, 1),
            ("1..*", 1, MANY),
            ("*", 0, MANY),
            ("1", 1, 1),
            ("2..5", 2, 5),
            (" 0 .. 1 ", 0, 1),
        ],
    )
    def test_parse(self, text, lower, upper):
        card = Cardinality.parse(text)
        assert (card.lower, card.upper) == (lower, upper)

    @pytest.mark.parametrize("text", ["", "x..1", "1..y", "-1..2"])
    def test_parse_rejects_garbage(self, text):
        with pytest.raises(CardinalityError):
            Cardinality.parse(text)

    def test_lower_exceeding_upper_rejected(self):
        with pytest.raises(CardinalityError):
            Cardinality(3, 2)

    def test_zero_upper_rejected(self):
        with pytest.raises(CardinalityError):
            Cardinality(0, 0)

    def test_str_round_trips(self):
        for text in ["0..*", "1..1", "0..1", "2..7"]:
            assert str(Cardinality.parse(text)) == text


class TestProperties:
    def test_functional(self):
        assert Cardinality.parse("0..1").is_functional
        assert Cardinality.parse("1..1").is_functional
        assert not Cardinality.parse("1..*").is_functional

    def test_total(self):
        assert Cardinality.parse("1..*").is_total
        assert not Cardinality.parse("0..1").is_total


class TestComposition:
    def test_functional_chain_stays_functional(self):
        assert ZERO_ONE.compose(ONE_ONE).is_functional

    def test_many_absorbs(self):
        assert ZERO_MANY.compose(ONE_ONE).upper is MANY
        assert ONE_ONE.compose(ZERO_MANY).upper is MANY

    def test_bounded_product(self):
        left = Cardinality.parse("1..2")
        right = Cardinality.parse("1..3")
        composed = left.compose(right)
        assert (composed.lower, composed.upper) == (1, 6)

    def test_identity_of_empty_path(self):
        # compose() with 1..1 is the identity.
        for text in ["0..*", "1..1", "0..1"]:
            card = Cardinality.parse(text)
            assert card.compose(ONE_ONE) == card


class TestConnectionCategory:
    def test_of(self):
        assert ConnectionCategory.of(ZERO_ONE, ZERO_ONE) is ConnectionCategory.ONE_ONE
        assert ConnectionCategory.of(ZERO_ONE, ZERO_MANY) is ConnectionCategory.MANY_ONE
        assert ConnectionCategory.of(ZERO_MANY, ZERO_ONE) is ConnectionCategory.ONE_MANY
        assert ConnectionCategory.of(ZERO_MANY, ONE_MANY) is ConnectionCategory.MANY_MANY

    def test_reversed(self):
        assert ConnectionCategory.MANY_ONE.reversed() is ConnectionCategory.ONE_MANY
        assert ConnectionCategory.ONE_ONE.reversed() is ConnectionCategory.ONE_ONE
        assert ConnectionCategory.MANY_MANY.reversed() is ConnectionCategory.MANY_MANY

    def test_directional_flags(self):
        assert ConnectionCategory.MANY_ONE.functional_forward
        assert not ConnectionCategory.MANY_ONE.functional_backward
        assert ConnectionCategory.ONE_MANY.functional_backward


class TestCompatibility:
    def test_exact_match_compatible(self):
        for category in ConnectionCategory:
            assert categories_compatible(category, category)

    def test_functional_target_needs_functional_source(self):
        # The hypothetical in Example 1.1: hasBookSoldAt with upper bound 1
        # is incompatible with the many-many writes∘soldAt composition.
        assert not categories_compatible(
            ConnectionCategory.MANY_MANY, ConnectionCategory.MANY_ONE
        )
        assert not categories_compatible(
            ConnectionCategory.MANY_MANY, ConnectionCategory.ONE_ONE
        )

    def test_more_specific_source_is_compatible(self):
        assert categories_compatible(
            ConnectionCategory.ONE_ONE, ConnectionCategory.MANY_ONE
        )
        assert categories_compatible(
            ConnectionCategory.MANY_ONE, ConnectionCategory.MANY_MANY
        )

    def test_cross_directions_incompatible(self):
        assert not categories_compatible(
            ConnectionCategory.MANY_ONE, ConnectionCategory.ONE_MANY
        )


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------

bounded = st.integers(min_value=0, max_value=5)
uppers = st.one_of(st.none(), st.integers(min_value=1, max_value=5))


@st.composite
def cardinalities(draw):
    lower = draw(bounded)
    upper = draw(uppers)
    if upper is not None and lower > upper:
        lower = upper
    return Cardinality(lower, upper)


@given(a=cardinalities(), b=cardinalities(), c=cardinalities())
def test_composition_associative(a, b, c):
    assert a.compose(b).compose(c) == a.compose(b.compose(c))


@given(a=cardinalities(), b=cardinalities())
def test_composition_upper_monotone(a, b):
    composed = a.compose(b)
    if a.upper is None or b.upper is None:
        assert composed.upper is None
    else:
        assert composed.upper <= a.upper * b.upper or composed.upper == 1


@given(a=cardinalities(), b=cardinalities())
def test_functional_composition_iff_both_functional(a, b):
    composed = a.compose(b)
    if a.is_functional and b.is_functional:
        assert composed.is_functional


@given(source=st.sampled_from(list(ConnectionCategory)))
def test_many_many_target_accepts_everything(source):
    assert categories_compatible(source, ConnectionCategory.MANY_MANY)
