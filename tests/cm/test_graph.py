"""Unit tests for CM graph compilation."""

import pytest

from repro.exceptions import ConceptualModelError
from repro.cm import (
    CMGraph,
    ConceptualModel,
    ConnectionCategory,
    INVERSE_MARK,
    attribute_node_id,
)


@pytest.fixture
def model() -> ConceptualModel:
    cm = ConceptualModel("books")
    cm.add_class("Person", attributes=["pname"], key=["pname"])
    cm.add_class("Book", attributes=["bid"], key=["bid"])
    cm.add_class("Author")
    cm.add_relationship("writes", "Person", "Book", "0..*", "1..*")
    cm.add_relationship("favourite", "Person", "Book", "0..1", "0..*")
    cm.add_isa("Author", "Person")
    return cm


@pytest.fixture
def graph(model) -> CMGraph:
    return CMGraph(model)


class TestNodes:
    def test_class_nodes(self, graph):
        assert graph.class_nodes() == ("Person", "Book", "Author")

    def test_attribute_nodes(self, graph):
        assert graph.attribute_nodes() == ("Book.bid", "Person.pname")

    def test_node_kind_predicates(self, graph):
        assert graph.is_class_node("Person")
        assert not graph.is_class_node("Person.pname")
        assert graph.is_attribute_node("Person.pname")
        assert not graph.is_attribute_node("Person")

    def test_attribute_owner(self, graph):
        assert graph.attribute_owner(attribute_node_id("Person", "pname")) == "Person"
        with pytest.raises(ConceptualModelError):
            graph.attribute_owner("Person")

    def test_size(self, graph):
        assert graph.size() == (3, 2)

    def test_reified_marker(self):
        cm = ConceptualModel("m")
        cm.add_class("A")
        cm.add_reified_relationship("R", roles={"r1": "A"})
        graph = CMGraph(cm)
        assert graph.is_reified("R")
        assert not graph.is_reified("A")


class TestEdges:
    def test_forward_and_inverse_materialized(self, graph):
        forward = graph.edge("Person", "writes")
        inverse = graph.edge("Book", "writes" + INVERSE_MARK)
        assert forward.target == "Book"
        assert inverse.target == "Person"
        assert inverse.is_inverse
        assert forward.base_name == inverse.base_name == "writes"

    def test_functional_flags(self, graph):
        assert not graph.edge("Person", "writes").is_functional
        # writes is total on the book side (1..*): its inverse is not
        # functional either.
        assert not graph.edge("Book", "writes" + INVERSE_MARK).is_functional
        assert graph.edge("Person", "favourite").is_functional
        assert not graph.edge("Book", "favourite" + INVERSE_MARK).is_functional

    def test_isa_edges(self, graph):
        isa = graph.edge("Author", "isa")
        assert isa.is_isa and isa.is_functional
        assert isa.forward_card.is_total
        inverse = graph.edge("Person", "isa" + INVERSE_MARK)
        assert inverse.is_isa and inverse.is_inverse
        assert inverse.is_functional  # 0..1

    def test_attribute_edges_functional(self, graph):
        edge = graph.attribute_edge("Person", "pname")
        assert edge.is_attribute and edge.is_functional
        assert edge.target == "Person.pname"

    def test_edges_from_excludes_attributes_by_default(self, graph):
        labels = {e.label for e in graph.edges_from("Person")}
        assert "pname" not in labels
        assert {"writes", "favourite", "isa" + INVERSE_MARK} == labels

    def test_edges_from_functional_only(self, graph):
        labels = {e.label for e in graph.functional_edges_from("Person")}
        assert labels == {"favourite", "isa" + INVERSE_MARK}

    def test_edges_from_with_attributes(self, graph):
        labels = {
            e.label for e in graph.edges_from("Person", include_attributes=True)
        }
        assert "pname" in labels

    def test_edges_between(self, graph):
        labels = [e.label for e in graph.edges_between("Person", "Book")]
        assert labels == ["favourite", "writes"]
        assert graph.edges_between("Book", "Author") == ()

    def test_edge_lookup_unknown_raises(self, graph):
        with pytest.raises(ConceptualModelError):
            graph.edge("Person", "ghost")
        with pytest.raises(ConceptualModelError):
            graph.edges_from("Ghost")

    def test_edge_reversed_round_trips(self, graph):
        edge = graph.edge("Person", "writes")
        assert edge.reversed().reversed() == edge

    def test_edge_category(self, graph):
        assert graph.edge("Person", "writes").category is ConnectionCategory.MANY_MANY
        assert graph.edge("Person", "favourite").category is ConnectionCategory.MANY_ONE
        assert (
            graph.edge("Book", "favourite" + INVERSE_MARK).category
            is ConnectionCategory.ONE_MANY
        )


class TestRendering:
    def test_describe(self, graph):
        text = graph.describe()
        assert "Person" in text
        assert "writes" in text
        # Inverse edges are not repeated in the description.
        assert "writes" + INVERSE_MARK not in text

    def test_str_of_edges_marks_functionality(self, graph):
        assert "->-" in str(graph.edge("Person", "favourite"))
        assert "->-" not in str(graph.edge("Person", "writes"))
