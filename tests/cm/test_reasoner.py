"""Unit tests for CM reasoning: disjointness, path composition, filters."""

import pytest

from repro.cm import CMGraph, CMReasoner, ConceptualModel, ConnectionCategory
from repro.cm.graph import INVERSE_MARK


@pytest.fixture
def employee_model() -> ConceptualModel:
    """Example 1.2's hierarchy plus a disjoint pair for the filter tests."""
    cm = ConceptualModel("emp")
    cm.add_class("Employee", attributes=["name"])
    cm.add_class("Engineer", attributes=["site"])
    cm.add_class("Programmer", attributes=["acnt"])
    cm.add_class("Contractor")
    cm.add_isa("Engineer", "Employee")
    cm.add_isa("Programmer", "Employee")
    cm.add_isa("Contractor", "Employee")
    # Engineer and Programmer are NOT disjoint (Example 1.2); contractors
    # are disjoint from both.
    cm.add_disjointness(["Contractor", "Engineer"])
    cm.add_disjointness(["Contractor", "Programmer"])
    return cm


@pytest.fixture
def reasoner(employee_model) -> CMReasoner:
    return CMReasoner(employee_model)


class TestIsaReasoning:
    def test_subclass_reflexive_transitive(self, reasoner, employee_model):
        employee_model.add_class("KernelHacker")
        employee_model.add_isa("KernelHacker", "Programmer")
        assert reasoner.is_subclass_of("KernelHacker", "Employee")
        assert reasoner.is_subclass_of("Employee", "Employee")
        assert not reasoner.is_subclass_of("Employee", "Programmer")

    def test_ancestors_or_self(self, reasoner):
        assert reasoner.ancestors_or_self("Engineer") == {"Engineer", "Employee"}


class TestDisjointness:
    def test_declared_disjointness(self, reasoner):
        assert reasoner.are_disjoint("Contractor", "Engineer")
        assert reasoner.are_disjoint("Engineer", "Contractor")

    def test_non_disjoint_siblings(self, reasoner):
        # Example 1.2: Engineer and Programmer overlap.
        assert not reasoner.are_disjoint("Engineer", "Programmer")

    def test_same_class_never_disjoint(self, reasoner):
        assert not reasoner.are_disjoint("Engineer", "Engineer")

    def test_sub_super_never_disjoint(self, reasoner):
        assert not reasoner.are_disjoint("Engineer", "Employee")

    def test_disjointness_inherited(self, reasoner, employee_model):
        employee_model.add_class("KernelHacker")
        employee_model.add_isa("KernelHacker", "Programmer")
        assert reasoner.are_disjoint("Contractor", "KernelHacker")


@pytest.fixture
def path_model() -> ConceptualModel:
    """Project --controlledBy->-- Department --hasManager->-- Employee,
    plus a many-many shopsAt for composition tests."""
    cm = ConceptualModel("paths")
    cm.add_class("Project")
    cm.add_class("Department")
    cm.add_class("Employee")
    cm.add_class("Store")
    cm.add_relationship("controlledBy", "Project", "Department", "1..1", "0..*")
    cm.add_relationship("hasManager", "Department", "Employee", "1..1", "0..*")
    cm.add_relationship("shopsAt", "Employee", "Store", "0..*", "0..*")
    return cm


class TestPathComposition:
    def test_functional_path(self, path_model):
        graph = CMGraph(path_model)
        path = [
            graph.edge("Project", "controlledBy"),
            graph.edge("Department", "hasManager"),
        ]
        assert CMReasoner.path_is_functional(path)
        assert CMReasoner.path_category(path) is ConnectionCategory.MANY_ONE

    def test_many_many_composition(self, path_model):
        # Example 1.1's phenomenon: composing a non-functional hop makes
        # the whole connection many-many.
        graph = CMGraph(path_model)
        path = [
            graph.edge("Department", "hasManager"),
            graph.edge("Employee", "shopsAt"),
        ]
        assert not CMReasoner.path_is_functional(path)
        assert CMReasoner.path_category(path) is ConnectionCategory.MANY_MANY

    def test_inverse_path_category(self, path_model):
        graph = CMGraph(path_model)
        path = [graph.edge("Department", "controlledBy" + INVERSE_MARK)]
        assert CMReasoner.path_category(path) is ConnectionCategory.ONE_MANY

    def test_empty_path_is_one_one(self):
        assert CMReasoner.path_category([]) is ConnectionCategory.ONE_ONE

    def test_direction_reversals(self, path_model):
        graph = CMGraph(path_model)
        functional = graph.edge("Project", "controlledBy")
        lossy = graph.edge("Employee", "shopsAt")
        assert CMReasoner.direction_reversals([functional, functional]) == 0
        assert CMReasoner.direction_reversals([functional, lossy]) == 1
        assert CMReasoner.direction_reversals([lossy, functional, lossy]) == 2


class TestConsistencyFilters:
    def make_path(self, model, spec):
        graph = CMGraph(model)
        return [graph.edge(src, label) for src, label in spec]

    def test_disjoint_sibling_hop_is_inconsistent(self, employee_model):
        graph = CMGraph(employee_model)
        up = graph.edges_between("Contractor", "Employee")[0]
        down = graph.edges_between("Employee", "Engineer")[0]
        path = [up, down]
        reasoner = CMReasoner(employee_model)
        assert not reasoner.path_is_consistent(path)
        assert not reasoner.tree_is_consistent(path)

    def test_overlapping_sibling_hop_is_consistent(self, employee_model):
        graph = CMGraph(employee_model)
        up = graph.edges_between("Engineer", "Employee")[0]
        down = graph.edges_between("Employee", "Programmer")[0]
        reasoner = CMReasoner(employee_model)
        assert reasoner.path_is_consistent([up, down])
        assert reasoner.tree_is_consistent([up, down])

    def test_plain_paths_are_consistent(self, path_model):
        graph = CMGraph(path_model)
        path = [
            graph.edge("Project", "controlledBy"),
            graph.edge("Department", "hasManager"),
        ]
        assert CMReasoner(path_model).path_is_consistent(path)
