"""Unit tests for GraphViz DOT export."""

import pytest

from repro.cm import CMGraph, ConceptualModel, SemanticType
from repro.cm.dot import cm_graph_to_dot, stree_to_dot
from repro.semantics import SemanticTree


@pytest.fixture
def model() -> ConceptualModel:
    cm = ConceptualModel("books")
    cm.add_class("Person", attributes=["pname"], key=["pname"])
    cm.add_class("Book", attributes=["bid"], key=["bid"])
    cm.add_class("Author")
    cm.add_relationship("writes", "Person", "Book", "0..*", "1..*")
    cm.add_relationship(
        "chapterOf",
        "Book",
        "Book",
        "0..1",
        "0..*",
        semantic_type=SemanticType.PART_OF,
    )
    cm.add_isa("Author", "Person")
    return cm


class TestCMGraphDot:
    def test_valid_digraph_structure(self, model):
        text = cm_graph_to_dot(CMGraph(model))
        assert text.startswith("digraph")
        assert text.endswith("}")
        assert text.count("{") == text.count("}")

    def test_all_classes_rendered(self, model):
        text = cm_graph_to_dot(CMGraph(model))
        for name in model.class_names():
            assert f'"{name}"' in text

    def test_key_attributes_marked(self, model):
        text = cm_graph_to_dot(CMGraph(model))
        assert "_pname_" in text

    def test_relationship_edges_with_cardinalities(self, model):
        text = cm_graph_to_dot(CMGraph(model))
        assert "writes" in text
        assert "1..*/0..*" in text

    def test_isa_rendered_with_empty_arrow(self, model):
        text = cm_graph_to_dot(CMGraph(model))
        assert "arrowhead=empty" in text

    def test_partof_rendered_with_diamond(self, model):
        text = cm_graph_to_dot(CMGraph(model))
        assert "arrowtail=diamond" in text

    def test_inverse_edges_not_duplicated(self, model):
        text = cm_graph_to_dot(CMGraph(model))
        assert "writes⁻" not in text

    def test_reified_marker(self):
        cm = ConceptualModel("m")
        cm.add_class("A", attributes=["a"], key=["a"])
        cm.add_reified_relationship("R", roles={"ra": "A"})
        text = cm_graph_to_dot(CMGraph(cm))
        assert "R◇" in text


class TestSTreeDot:
    def test_anchor_highlighted_and_columns_rendered(self, model):
        graph = CMGraph(model)
        tree = SemanticTree.build(
            graph,
            "Person",
            [("Person", "writes", "Book")],
            {"pname": "Person.pname", "bid": "Book.bid"},
        )
        text = stree_to_dot(tree)
        assert "penwidth=2" in text  # anchor styling
        assert '"Person"' in text and '"Book"' in text
        assert "pname" in text and "style=dashed" in text
        assert text.count("{") == text.count("}")

    def test_copy_nodes_distinct(self):
        cm = ConceptualModel("m")
        cm.add_class("P", attributes=["pid"], key=["pid"])
        cm.add_relationship("spouse", "P", "P", "0..1", "0..1")
        graph = CMGraph(cm)
        tree = SemanticTree.build(
            graph,
            "P",
            [("P", "spouse", "P~1")],
            {"pid": "P.pid", "spid": "P~1.pid"},
        )
        text = stree_to_dot(tree)
        assert '"P~1"' in text
