"""Unit tests for the batch discovery front-end."""

from __future__ import annotations

import pytest

from repro.discovery import (
    BatchDiscovery,
    Scenario,
    SemanticMapper,
    discover_many,
    scenarios_for_cases,
)
from repro.discovery.batch import _group_by_pair


def _tgds(result):
    return [
        candidate.to_tgd(f"M{index}")
        for index, candidate in enumerate(result, start=1)
    ]


@pytest.fixture(scope="module")
def scenarios(bookstore, employee):
    return [
        Scenario.create(
            "bookstore",
            bookstore.source,
            bookstore.target,
            bookstore.correspondences,
        ),
        Scenario.create(
            "employee",
            employee.source,
            employee.target,
            employee.correspondences,
        ),
    ]


def test_serial_matches_individual_mappers(scenarios, bookstore, employee):
    batch = discover_many(scenarios, workers=1)
    assert len(batch) == 2
    for example, (scenario_id, result) in zip(
        (bookstore, employee), batch.results
    ):
        fresh = SemanticMapper(
            example.source, example.target, example.correspondences
        ).discover()
        assert _tgds(result) == _tgds(fresh), scenario_id


def test_results_keep_input_order(scenarios):
    batch = discover_many(list(reversed(scenarios)), workers=1)
    assert [scenario_id for scenario_id, _ in batch.results] == [
        "employee",
        "bookstore",
    ]


def test_result_for(scenarios):
    batch = discover_many(scenarios, workers=1)
    assert len(batch.result_for("bookstore")) >= 1
    with pytest.raises(KeyError):
        batch.result_for("missing")


def test_parallel_matches_serial(scenarios):
    serial = discover_many(scenarios, workers=1)
    parallel = discover_many(scenarios, workers=2)
    assert [sid for sid, _ in parallel.results] == [
        sid for sid, _ in serial.results
    ]
    for (_, left), (_, right) in zip(serial.results, parallel.results):
        assert _tgds(left) == _tgds(right)


def test_aggregate_stats(scenarios):
    batch = discover_many(scenarios, workers=1)
    assert batch.stats["scenarios"] == 2
    assert batch.stats["total_discovery_seconds"] >= 0
    assert batch.notes == []


def test_grouping_by_schema_pair(scenarios, bookstore):
    extra = Scenario.create(
        "bookstore-2",
        bookstore.source,
        bookstore.target,
        bookstore.correspondences,
    )
    groups = _group_by_pair(scenarios + [extra])
    assert len(groups) == 2
    sizes = sorted(len(group) for group in groups)
    assert sizes == [1, 2]


def test_workers_validation():
    with pytest.raises(ValueError):
        BatchDiscovery(workers=0)


def test_scenarios_for_cases(bookstore):
    built = scenarios_for_cases(
        bookstore.source,
        bookstore.target,
        [("one", bookstore.correspondences), ("two", bookstore.correspondences)],
    )
    assert [scenario.scenario_id for scenario in built] == ["one", "two"]
    assert built[0].source is bookstore.source
