"""Tests for the mapper's ablation flags (filter on/off behavior)."""

from repro.datasets.paper_examples import employee_example, partof_example
from repro.discovery import DiscoveryOptions, SemanticMapper


def discover(scenario, **flags):
    return SemanticMapper(
        scenario.source,
        scenario.target,
        scenario.correspondences,
        options=DiscoveryOptions(**flags),
    ).discover()


def source_tables(candidate):
    return {atom.bare_predicate for atom in candidate.source_query.body}


class TestPartOfFlag:
    def test_default_filters_plain_candidate(self):
        scenario = partof_example(target_is_partof=True)
        result = discover(scenario)
        assert len(result) == 1
        assert "chairof" in source_tables(result.best())

    def test_disabled_keeps_both(self):
        scenario = partof_example(target_is_partof=True)
        result = discover(scenario, use_partof_filter=False)
        assert len(result) == 2
        assert any("deanof" in source_tables(c) for c in result)


class TestDisjointnessFlag:
    def test_default_eliminates_empty_class_merge(self):
        scenario = employee_example(disjoint_subclasses=True)
        result = discover(scenario)
        assert not any(
            {"engineer", "programmer"} <= source_tables(c) for c in result
        )

    def test_disabled_emits_unsatisfiable_merge(self):
        scenario = employee_example(disjoint_subclasses=True)
        result = discover(scenario, use_disjointness_filter=False)
        assert any(
            {"engineer", "programmer"} <= source_tables(c) for c in result
        )


class TestFlagsDoNotChangeCleanCases:
    def test_overlapping_siblings_unaffected(self):
        scenario = employee_example(disjoint_subclasses=False)
        default = discover(scenario)
        ablated = discover(
            scenario,
            use_partof_filter=False,
            use_disjointness_filter=False,
        )
        assert [str(c.source_query) for c in default] == [
            str(c.source_query) for c in ablated
        ]
