"""Property test: the perf layer never changes what discovery returns.

Random chain- and star-shaped conceptual models go through discovery
three ways — perf layer disabled (the uncached seed path), enabled with
cold caches, and enabled again with warm caches — and the TGD output
must be byte-identical in content *and* order every time.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

import repro.perf as perf
from repro.cm import ConceptualModel
from repro.correspondences import CorrespondenceSet
from repro.discovery import SemanticMapper
from repro.semantics import design_schema

CARDS = ["0..1", "1..1", "0..*", "1..*"]


def _chain_model(name: str, length: int, cards) -> ConceptualModel:
    cm = ConceptualModel(name)
    for index in range(length + 1):
        cm.add_class(
            f"C{index}",
            attributes=[f"k{index}", f"a{index}"],
            key=[f"k{index}"],
        )
    for index in range(length):
        cm.add_relationship(
            f"r{index}",
            f"C{index}",
            f"C{index + 1}",
            to_card=cards[index][0],
            from_card=cards[index][1],
        )
    return cm


def _star_model(name: str, arms: int, cards) -> ConceptualModel:
    cm = ConceptualModel(name)
    cm.add_class("Hub", attributes=["hk", "ha"], key=["hk"])
    for index in range(arms):
        cm.add_class(
            f"S{index}",
            attributes=[f"sk{index}", f"sa{index}"],
            key=[f"sk{index}"],
        )
        cm.add_relationship(
            f"spoke{index}",
            "Hub",
            f"S{index}",
            to_card=cards[index][0],
            from_card=cards[index][1],
        )
    return cm


@st.composite
def scenarios(draw):
    """A (source, target, correspondences) triple over a random shape."""
    cards_strategy = st.tuples(
        st.sampled_from(CARDS), st.sampled_from(CARDS)
    )
    if draw(st.booleans()):
        length = draw(st.integers(min_value=1, max_value=3))
        cards = draw(
            st.lists(cards_strategy, min_size=length, max_size=length)
        )
        build = lambda label: _chain_model(label, length, cards)
        lines = ["c0.a0 <-> c0.a0", f"c{length}.a{length} <-> c{length}.a{length}"]
    else:
        arms = draw(st.integers(min_value=2, max_value=3))
        cards = draw(st.lists(cards_strategy, min_size=arms, max_size=arms))
        build = lambda label: _star_model(label, arms, cards)
        lines = ["s0.sa0 <-> s0.sa0", "s1.sa1 <-> s1.sa1"]
    source = design_schema(build("m_src"), "src").semantics
    target = design_schema(build("m_tgt"), "tgt").semantics
    return source, target, CorrespondenceSet.parse(lines)


def _tgds(result) -> tuple[str, ...]:
    return tuple(
        candidate.to_tgd(f"M{index}")
        for index, candidate in enumerate(result, start=1)
    )


@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_cached_discovery_equals_uncached(data):
    source, target, correspondences = data.draw(scenarios())

    with perf.disabled():
        perf.clear_caches()
        reference = _tgds(
            SemanticMapper(source, target, correspondences).discover()
        )

    perf.clear_caches()
    cold = _tgds(SemanticMapper(source, target, correspondences).discover())
    warm = _tgds(SemanticMapper(source, target, correspondences).discover())

    assert cold == reference
    assert warm == reference
