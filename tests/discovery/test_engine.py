"""The staged engine: stage vocabulary, fingerprints, and the stage cache.

The headline contract (the "one vocabulary" test): the perf-stats timing
keys, the trace phase names, and the service phase metrics all derive
from :data:`repro.discovery.engine.STAGE_NAMES` — the three observability
surfaces can never drift apart because they are generated from the same
tuple. The rest pins the cache discipline: byte-identical results across
disabled / cold / warm runs, fingerprint sensitivity to exactly the
options each stage depends on, LRU eviction, and the bypass rules
(tracing, ``stage_cache_size=0``, perf layer disabled).
"""

import pytest

import repro.perf as perf
from repro.discovery import DiscoveryOptions, SemanticMapper
from repro.discovery.engine import (
    CLIO_STAGE_NAMES,
    STAGE_NAMES,
    STAGE_OPTION_FIELDS,
    StageCache,
    clear_stage_cache,
    time_stat_key,
)
from repro.service.jobs import observe_run_stats
from repro.service.metrics import ServiceMetrics
from repro.trace import Tracer, phase_seconds


def _tgds(result):
    return tuple(
        candidate.to_tgd(f"M{i}")
        for i, candidate in enumerate(result, start=1)
    )


@pytest.fixture(autouse=True)
def fresh_caches():
    perf.clear_caches()
    yield
    perf.clear_caches()


@pytest.fixture()
def mapper_args(bookstore):
    return bookstore.source, bookstore.target, bookstore.correspondences


class TestStageVocabulary:
    """Satellite: one stage vocabulary across stats, trace, and service."""

    def test_time_stat_keys_derive_from_stage_names(self):
        assert [time_stat_key(s) for s in STAGE_NAMES] == [
            f"time_{s}_s" for s in STAGE_NAMES
        ]

    def test_three_vocabularies_are_identical(self, mapper_args):
        expected = set(STAGE_NAMES) | {"discover"}

        # Vocabulary 1: perf-stats timing keys of an untraced cold run.
        result = SemanticMapper(*mapper_args).discover()
        stats_phases = {
            key[5:-2]
            for key in result.stats
            if key.startswith("time_") and key.endswith("_s")
        }
        assert stats_phases == expected

        # Vocabulary 2: trace phase names of a traced run (the trace
        # nests finer-grained spans inside the stages; the stage-level
        # names must be exactly the same set).
        traced = SemanticMapper(*mapper_args).discover(
            tracer=Tracer(explain=True)
        )
        trace_phases = set(phase_seconds(traced.trace))
        assert expected <= trace_phases

        # Vocabulary 3: the service's phase metrics, fed from the same
        # stats keys by the job queue's observe_run_stats.
        metrics = ServiceMetrics()
        observe_run_stats(metrics, result.stats)
        assert set(metrics.phase_names()) == stats_phases

    def test_stage_option_fields_cover_exactly_the_stages(self):
        assert tuple(STAGE_OPTION_FIELDS) == STAGE_NAMES
        fields = set(DiscoveryOptions.__dataclass_fields__)
        for stage, names in STAGE_OPTION_FIELDS.items():
            assert set(names) <= fields, stage
            # Observability and cache sizing never invalidate artifacts.
            assert "explain" not in names
            assert "trace" not in names
            assert not any("cache_size" in n for n in names)

    def test_aggregate_counters_not_mistaken_for_per_stage(self):
        # "stage_cache_hits" must not match the "stage_cache_hit_"
        # prefix observe_run_stats routes per-stage labels by.
        metrics = ServiceMetrics()
        observe_run_stats(
            metrics,
            {"stage_cache_hits": 5, "stage_cache_hit_lift": 1},
        )
        assert metrics.total("stage_cache_hits_total") == 1
        assert metrics.value("stage_cache_hits_total", stage="lift") == 1


class TestCacheEquivalence:
    def test_disabled_cold_warm_byte_identical(self, mapper_args):
        with perf.disabled():
            disabled = SemanticMapper(*mapper_args).discover()
        cold = SemanticMapper(*mapper_args).discover()
        warm = SemanticMapper(*mapper_args).discover()
        assert _tgds(cold) == _tgds(disabled)
        assert _tgds(warm) == _tgds(disabled)
        assert warm.notes == cold.notes
        assert warm.eliminations == cold.eliminations
        assert cold.stats.get("stage_cache_hits", 0) == 0
        assert warm.stats.get("stage_cache_hits", 0) >= 1
        # The warm run was served wholesale from the rank artifact.
        assert warm.stats.get("stage_cache_hit_rank", 0) == 1

    def test_disabled_perf_layer_skips_the_stage_cache(self, mapper_args):
        with perf.disabled():
            first = SemanticMapper(*mapper_args).discover()
            second = SemanticMapper(*mapper_args).discover()
        for stats in (first.stats, second.stats):
            assert not any("stage_cache" in key for key in stats)

    def test_stage_cache_size_zero_bypasses(self, mapper_args):
        options = DiscoveryOptions(stage_cache_size=0)
        first = SemanticMapper(*mapper_args, options=options).discover()
        second = SemanticMapper(*mapper_args, options=options).discover()
        for stats in (first.stats, second.stats):
            assert not any("stage_cache" in key for key in stats)
        assert _tgds(second) == _tgds(first)

    def test_traced_runs_bypass_but_match(self, mapper_args):
        cold = SemanticMapper(*mapper_args).discover()
        traced = SemanticMapper(*mapper_args).discover(
            tracer=Tracer(explain=True)
        )
        assert not any("stage_cache" in key for key in traced.stats)
        assert _tgds(traced) == _tgds(cold)

    def test_fingerprints_predict_result_fingerprints(self, mapper_args):
        mapper = SemanticMapper(*mapper_args)
        predicted = mapper.stage_fingerprints()
        result = mapper.discover()
        assert predicted == result.stage_fingerprints
        assert tuple(predicted) == STAGE_NAMES


class TestFingerprintSensitivity:
    def test_search_option_invalidates_search_and_downstream(
        self, mapper_args
    ):
        base = SemanticMapper(*mapper_args).stage_fingerprints()
        tuned = SemanticMapper(
            *mapper_args, options=DiscoveryOptions(max_path_edges=4)
        ).stage_fingerprints()
        assert tuned["lift"] == base["lift"]
        assert tuned["target_csgs"] == base["target_csgs"]
        for stage in ("source_search", "pair_filter", "translate", "rank"):
            assert tuned[stage] != base[stage], stage

    def test_filter_option_leaves_search_untouched(self, mapper_args):
        base = SemanticMapper(*mapper_args).stage_fingerprints()
        tuned = SemanticMapper(
            *mapper_args, options=DiscoveryOptions(use_partof_filter=False)
        ).stage_fingerprints()
        for stage in ("lift", "target_csgs", "source_search"):
            assert tuned[stage] == base[stage], stage
        for stage in ("pair_filter", "translate", "rank"):
            assert tuned[stage] != base[stage], stage

    def test_observability_options_change_nothing(self, mapper_args):
        base = SemanticMapper(*mapper_args).stage_fingerprints()
        for options in (
            DiscoveryOptions(explain=True),
            DiscoveryOptions(trace=True),
            DiscoveryOptions(stage_cache_size=7),
            DiscoveryOptions(profile_cache_size=16, translation_cache_size=16),
        ):
            tuned = SemanticMapper(
                *mapper_args, options=options
            ).stage_fingerprints()
            assert tuned == base, options

    def test_correspondence_edit_invalidates_everything(self, bookstore):
        from repro.correspondences import CorrespondenceSet

        base = SemanticMapper(
            bookstore.source, bookstore.target, bookstore.correspondences
        ).stage_fingerprints()
        edited = SemanticMapper(
            bookstore.source,
            bookstore.target,
            CorrespondenceSet(list(bookstore.correspondences)[:-1]),
        ).stage_fingerprints()
        for stage in STAGE_NAMES:
            assert edited[stage] != base[stage], stage


class TestStageCacheLRU:
    def test_eviction_order_and_capacity(self):
        cache = StageCache(capacity=2)
        cache.put("lift", "fp1", "a")
        cache.put("lift", "fp2", "b")
        assert cache.get("lift", "fp1") == "a"  # fp1 now most recent
        cache.put("lift", "fp3", "c")  # evicts fp2
        assert len(cache) == 2
        assert cache.get("lift", "fp2") is None
        assert cache.get("lift", "fp1") == "a"
        assert cache.get("lift", "fp3") == "c"

    def test_zero_capacity_stores_nothing(self):
        cache = StageCache(capacity=0)
        cache.put("lift", "fp1", "a")
        assert len(cache) == 0
        assert cache.get("lift", "fp1") is None

    def test_stats_and_clear(self):
        cache = StageCache(capacity=4)
        cache.put("rank", "fp", "a")
        assert cache.stats()["entries"] == 1
        assert cache.stats()["rank"] == 1
        cache.clear()
        assert len(cache) == 0

    def test_sizing_follows_options_override(self, mapper_args):
        # stage_cache_size=1 keeps only the most recent artifact: after
        # a cold run, the rank artifact (the last one written) survives,
        # so a warm run is still a full hit.
        options = DiscoveryOptions(stage_cache_size=1)
        SemanticMapper(*mapper_args, options=options).discover()
        warm = SemanticMapper(*mapper_args, options=options).discover()
        assert warm.stats.get("stage_cache_hit_rank", 0) == 1


class TestClioEngine:
    def test_clio_engine_matches_baseline(self, mapper_args):
        from repro.baseline.clio import RICBasedMapper

        source, target, correspondences = mapper_args
        result = SemanticMapper(
            source,
            target,
            correspondences,
            options=DiscoveryOptions(engine="clio"),
        ).discover()
        baseline = RICBasedMapper(
            source.schema, target.schema, correspondences
        ).discover()
        assert _tgds(result) == _tgds(baseline)
        assert tuple(result.stage_fingerprints) == CLIO_STAGE_NAMES
        assert "time_clio_s" in result.stats

    def test_clio_runs_are_cached(self, mapper_args):
        options = DiscoveryOptions(engine="clio")
        cold = SemanticMapper(*mapper_args, options=options).discover()
        warm = SemanticMapper(*mapper_args, options=options).discover()
        assert cold.stats.get("stage_cache_miss_clio", 0) == 1
        assert warm.stats.get("stage_cache_hit_clio", 0) == 1
        assert _tgds(warm) == _tgds(cold)
        assert warm.notes == cold.notes

    def test_clio_and_semantic_fingerprints_disjoint(self, mapper_args):
        semantic = SemanticMapper(*mapper_args).stage_fingerprints()
        clio = SemanticMapper(
            *mapper_args, options=DiscoveryOptions(engine="clio")
        ).stage_fingerprints()
        assert set(semantic).isdisjoint(clio)

    def test_engine_option_validated(self):
        with pytest.raises(ValueError, match="engine"):
            DiscoveryOptions(engine="prehistoric")

    def test_engine_option_over_the_wire(self):
        options = DiscoveryOptions.from_mapping({"engine": "clio"})
        assert options.engine == "clio"


def test_clear_stage_cache_is_part_of_clear_caches(mapper_args):
    SemanticMapper(*mapper_args).discover()
    clear_stage_cache()
    rerun = SemanticMapper(*mapper_args).discover()
    assert rerun.stats.get("stage_cache_hits", 0) == 0
