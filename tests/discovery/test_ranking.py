"""Unit tests for candidate ranking."""

from repro.discovery import CandidateScore, origin_rank


class TestCandidateScore:
    def make(self, **overrides):
        defaults = dict(
            covered=2,
            reversals=1,
            tree_size=4,
            preselected=1,
            origin_rank=1,
            anchor_rank=0,
        )
        defaults.update(overrides)
        return CandidateScore(**defaults)

    def test_coverage_dominates(self):
        more = self.make(covered=3, reversals=5, tree_size=10)
        fewer = self.make(covered=2, reversals=0, tree_size=1)
        assert more.sort_key() < fewer.sort_key()

    def test_reversals_break_coverage_ties(self):
        lossless = self.make(reversals=0)
        lossy = self.make(reversals=3)
        assert lossless.sort_key() < lossy.sort_key()

    def test_anchor_agreement_preferred(self):
        agreeing = self.make(anchor_rank=0)
        mismatched = self.make(anchor_rank=1)
        assert agreeing.sort_key() < mismatched.sort_key()

    def test_preselected_edges_preferred(self):
        rich = self.make(preselected=3)
        poor = self.make(preselected=0)
        assert rich.sort_key() < poor.sort_key()

    def test_compact_trees_preferred(self):
        small = self.make(tree_size=3)
        large = self.make(tree_size=9)
        assert small.sort_key() < large.sort_key()


class TestOriginRank:
    def test_table_beats_constructed(self):
        assert origin_rank("table:person") < origin_rank("constructed")

    def test_a1_beats_a2(self):
        assert origin_rank("A.1") < origin_rank("A.2")

    def test_lossy_last_of_known(self):
        assert origin_rank("lossy") > origin_rank("constructed")

    def test_unknown_origin_ranks_after_everything(self):
        assert origin_rank("???") > origin_rank("lossy")
