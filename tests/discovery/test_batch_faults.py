"""Fault-isolation tests for batch discovery.

Covers the robustness layer: per-scenario error capture, timeouts,
worker-death retries, the picklability probe (including late unpicklable
scenarios and non-``PicklingError`` pickle failures), content-identity
grouping, and the 20-scenario acceptance run with one injected crash,
one injected timeout, and one unpicklable spec.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
import warnings

import pytest

from repro.datasets.paper_examples import bookstore_example, employee_example
from repro.discovery import (
    BatchPolicy,
    Scenario,
    discover_many,
)
from repro.discovery.batch import _group_by_pair
from repro.exceptions import ScenarioTimeout, WorkerCrashed


def _tgds(result):
    return [
        candidate.to_tgd(f"M{index}")
        for index, candidate in enumerate(result, start=1)
    ]


def _good(scenario_id, example):
    return Scenario.create(
        scenario_id, example.source, example.target, example.correspondences
    )


def _crashing(scenario_id, example):
    """Run raises TypeError: the bogus legacy option survives ``create``
    (which only warns) and blows up when the worker builds its mapper."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return Scenario.create(
            scenario_id,
            example.source,
            example.target,
            example.correspondences,
            explode_on_contact=True,
        )


def _unpicklable(scenario_id, example):
    """Spec that fails pickling with TypeError (a lock), yet runs fine.

    A lock rides along as an extra attribute on the frozen spec — the
    shape of real-world payloads (locks, open files) that raise
    ``TypeError`` instead of ``pickle.PicklingError``.
    """
    scenario = _good(scenario_id, example)
    object.__setattr__(scenario, "_sneaky_payload", threading.Lock())
    return scenario


class SlowScenario(Scenario):
    """Sleeps far past any test timeout before delegating."""

    def run(self):
        time.sleep(30.0)
        return super().run()


class WorkerKillerScenario(Scenario):
    """Hard-exits when run inside a pool worker; succeeds serially."""

    def run(self):
        if multiprocessing.current_process().name != "MainProcess":
            os._exit(13)
        return super().run()


def _slow(scenario_id, example):
    return SlowScenario(
        scenario_id, example.source, example.target, example.correspondences
    )


def _worker_killer(scenario_id, example):
    return WorkerKillerScenario(
        scenario_id, example.source, example.target, example.correspondences
    )


# ---------------------------------------------------------------------------
# Satellite regressions
# ---------------------------------------------------------------------------
class TestLateUnpicklableScenario:
    """The probe must cover every scenario, not just ``scenarios[0]``."""

    def test_falls_back_to_serial_with_note(self, bookstore, employee):
        scenarios = [
            _good("ok-1", bookstore),
            _good("ok-2", employee),
            _unpicklable("sneaky", bookstore),  # late: position 2, not 0
        ]
        batch = discover_many(scenarios, workers=2)
        assert batch.ok
        assert len(batch) == 3
        assert [sid for sid, _ in batch.results] == ["ok-1", "ok-2", "sneaky"]
        assert any(
            "sneaky" in note and "serial" in note for note in batch.notes
        )

    def test_non_picklingerror_exceptions_are_caught(self, bookstore):
        # A lock raises TypeError, not pickle.PicklingError; the batch
        # must still degrade instead of aborting.
        scenarios = [
            _good("ok", bookstore),
            _unpicklable("locked", bookstore),
        ]
        batch = discover_many(scenarios, workers=2)
        assert batch.ok
        assert any("TypeError" in note for note in batch.notes)

    def test_fail_policy_records_structured_failure(self, bookstore):
        scenarios = [
            _good("ok", bookstore),
            _unpicklable("locked", bookstore),
        ]
        batch = discover_many(
            scenarios, workers=2, policy=BatchPolicy(on_unpicklable="fail")
        )
        assert len(batch) == 1
        (failure,) = batch.failures
        assert failure.scenario_id == "locked"
        assert failure.error_type == "TypeError"
        assert "pickle" in failure.message

    def test_unpicklable_results_match_serial(self, bookstore, employee):
        scenarios = [
            _good("ok-1", bookstore),
            _unpicklable("locked", employee),
        ]
        parallel = discover_many(scenarios, workers=2)
        serial = discover_many(scenarios, workers=1)
        for (_, left), (_, right) in zip(serial.results, parallel.results):
            assert _tgds(left) == _tgds(right)


class TestContentIdentityGrouping:
    """Equal-but-distinct semantics objects must land in one group."""

    def test_rebuilt_example_shares_group(self):
        first = bookstore_example()
        second = bookstore_example()  # distinct objects, same content
        assert first.source is not second.source
        scenarios = [_good("a", first), _good("b", second)]
        groups = _group_by_pair(scenarios)
        assert len(groups) == 1
        assert len(groups[0]) == 2

    def test_different_pairs_still_split(self, bookstore, employee):
        groups = _group_by_pair(
            [_good("a", bookstore), _good("b", employee)]
        )
        assert len(groups) == 2

    def test_positions_preserved(self, bookstore):
        scenarios = [_good("a", bookstore), _good("b", bookstore)]
        ((first, _), (second, _)) = _group_by_pair(scenarios)[0]
        assert (first, second) == (0, 1)


class TestInjectedWorkerException:
    def test_failure_is_structured_and_batch_completes(
        self, bookstore, employee
    ):
        scenarios = [
            _good("ok-1", bookstore),
            _crashing("boom", bookstore),
            _good("ok-2", employee),
        ]
        batch = discover_many(scenarios, workers=2)
        assert len(batch) == 2
        assert [sid for sid, _ in batch.results] == ["ok-1", "ok-2"]
        (failure,) = batch.failures
        assert failure.scenario_id == "boom"
        assert failure.error_type == "TypeError"
        assert "explode_on_contact" in failure.message
        assert failure.traceback_summary
        assert failure.elapsed_seconds >= 0
        assert batch.stats["failed"] == 1
        assert batch.stats["succeeded"] == 2
        assert batch.stats["scenarios"] == 3

    def test_serial_mode_isolates_too(self, bookstore):
        scenarios = [_crashing("boom", bookstore), _good("ok", bookstore)]
        batch = discover_many(scenarios, workers=1)
        assert len(batch) == 1
        assert batch.failure_for("boom") is not None
        assert batch.result_for("ok") is not None

    def test_surviving_results_match_serial(self, bookstore, employee):
        scenarios = [
            _good("ok-1", bookstore),
            _crashing("boom", employee),
            _good("ok-2", employee),
        ]
        parallel = discover_many(scenarios, workers=2)
        serial = discover_many(scenarios, workers=1)
        assert [sid for sid, _ in parallel.results] == [
            sid for sid, _ in serial.results
        ]
        for (_, left), (_, right) in zip(serial.results, parallel.results):
            assert _tgds(left) == _tgds(right)

    def test_result_for_failed_id_raises_with_context(self, bookstore):
        batch = discover_many([_crashing("boom", bookstore)], workers=1)
        with pytest.raises(KeyError, match="TypeError"):
            batch.result_for("boom")
        with pytest.raises(KeyError):
            batch.result_for("never-submitted")


@pytest.mark.skipif(
    not hasattr(__import__("signal"), "SIGALRM"),
    reason="per-scenario timeouts need SIGALRM",
)
class TestScenarioTimeout:
    def test_serial_timeout_records_failure(self, bookstore):
        scenarios = [_slow("sleepy", bookstore), _good("ok", bookstore)]
        batch = discover_many(
            scenarios, workers=1, policy=BatchPolicy(timeout_seconds=0.3)
        )
        assert len(batch) == 1
        (failure,) = batch.failures
        assert failure.error_type == ScenarioTimeout.__name__
        assert "wall-clock" in failure.message
        assert 0.2 <= failure.elapsed_seconds < 5.0
        assert batch.stats["timeouts"] == 1

    def test_parallel_timeout_spares_the_rest(self, bookstore, employee):
        scenarios = [
            _good("ok-1", bookstore),
            _slow("sleepy", employee),
            _good("ok-2", employee),
        ]
        batch = discover_many(
            scenarios, workers=2, policy=BatchPolicy(timeout_seconds=0.5)
        )
        assert [sid for sid, _ in batch.results] == ["ok-1", "ok-2"]
        assert batch.failure_for("sleepy").error_type == (
            ScenarioTimeout.__name__
        )


class TestWorkerDeath:
    def test_dead_worker_group_is_retried_serially(self, bookstore, employee):
        scenarios = [
            _good("ok-1", bookstore),
            _worker_killer("killer", employee),
        ]
        batch = discover_many(scenarios, workers=2)
        # The killer succeeds on the serial retry in the parent process.
        assert batch.ok
        assert len(batch) == 2
        assert any("died" in note for note in batch.notes)
        assert batch.stats["retried"] >= 1

    def test_retries_zero_records_worker_crash(self, employee):
        scenarios = [
            _worker_killer("killer-1", employee),
            _worker_killer("killer-2", employee),
        ]
        batch = discover_many(scenarios, workers=2, policy=BatchPolicy(retries=0))
        assert len(batch) == 0
        assert len(batch.failures) == 2
        for failure in batch.failures:
            assert failure.error_type == WorkerCrashed.__name__
        assert batch.stats["worker_crashes"] == 2


class TestInputValidation:
    def test_duplicate_scenario_ids_rejected(self, bookstore):
        scenarios = [_good("twin", bookstore), _good("twin", bookstore)]
        with pytest.raises(ValueError, match="duplicate scenario_id"):
            discover_many(scenarios)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"timeout_seconds": 0},
            {"timeout_seconds": -1.5},
            {"retries": -1},
            {"on_unpicklable": "explode"},
        ],
    )
    def test_bad_policy_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BatchPolicy(**kwargs)


# ---------------------------------------------------------------------------
# Acceptance: the ISSUE's 20-scenario batch
# ---------------------------------------------------------------------------
@pytest.mark.skipif(
    not hasattr(__import__("signal"), "SIGALRM"),
    reason="per-scenario timeouts need SIGALRM",
)
class TestTwentyScenarioAcceptance:
    """20 scenarios, one crash, one timeout, one unpicklable spec:
    17 results byte-identical to serial, 3 structured failures."""

    @pytest.fixture(scope="class")
    def batch_and_reference(self):
        bookstore = bookstore_example()
        employee = employee_example()
        examples = [bookstore, employee]
        good = [
            _good(f"good-{index}", examples[index % 2])
            for index in range(17)
        ]
        scenarios = list(good)
        scenarios.insert(4, _crashing("crash", bookstore))
        scenarios.insert(11, _slow("timeout", employee))
        scenarios.insert(17, _unpicklable("unpicklable", bookstore))
        assert len(scenarios) == 20
        policy = BatchPolicy(
            timeout_seconds=1.0, on_unpicklable="fail", retries=1
        )
        batch = discover_many(scenarios, workers=2, policy=policy)
        reference = discover_many(good, workers=1)
        return batch, reference

    def test_seventeen_results_match_serial_byte_for_byte(
        self, batch_and_reference
    ):
        batch, reference = batch_and_reference
        assert len(batch) == 17
        parallel_tgds = {
            sid: _tgds(result) for sid, result in batch.results
        }
        serial_tgds = {
            sid: _tgds(result) for sid, result in reference.results
        }
        assert parallel_tgds == serial_tgds

    def test_three_structured_failures(self, batch_and_reference):
        batch, _ = batch_and_reference
        assert len(batch.failures) == 3
        by_id = {failure.scenario_id: failure for failure in batch.failures}
        assert by_id["crash"].error_type == "TypeError"
        assert by_id["timeout"].error_type == ScenarioTimeout.__name__
        assert by_id["unpicklable"].error_type == "TypeError"
        assert "pickle" in by_id["unpicklable"].message

    def test_stats_and_status_reflect_partial_failure(
        self, batch_and_reference
    ):
        batch, _ = batch_and_reference
        assert not batch.ok
        assert batch.stats["scenarios"] == 20
        assert batch.stats["succeeded"] == 17
        assert batch.stats["failed"] == 3
        assert batch.stats["timeouts"] == 1
        with pytest.raises(Exception):
            batch.raise_first_failure()
