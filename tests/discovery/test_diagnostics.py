"""Tests for discovery diagnostics: eliminations and coverage reports."""

from repro.datasets.paper_examples import (
    bookstore_example,
    employee_example,
    partof_example,
)
from repro.discovery import discover_mappings


class TestEliminations:
    def test_partof_elimination_recorded(self):
        scenario = partof_example(target_is_partof=True)
        result = discover_mappings(
            scenario.source, scenario.target, scenario.correspondences
        )
        assert result.eliminations
        assert any("partOf" in text for text in result.eliminations)

    def test_disjointness_elimination_recorded(self):
        scenario = employee_example(disjoint_subclasses=True)
        result = discover_mappings(
            scenario.source, scenario.target, scenario.correspondences
        )
        assert any(
            "disjointness" in text or "inconsistent" in text
            for text in result.eliminations
        )

    def test_clean_run_has_no_eliminations(self):
        scenario = bookstore_example()
        result = discover_mappings(
            scenario.source, scenario.target, scenario.correspondences
        )
        assert result.eliminations == []


class TestCoverage:
    def test_full_coverage_reports_nothing(self):
        scenario = bookstore_example()
        result = discover_mappings(
            scenario.source, scenario.target, scenario.correspondences
        )
        assert result.uncovered_correspondences() == ()

    def test_result_knows_its_input(self):
        scenario = bookstore_example()
        result = discover_mappings(
            scenario.source, scenario.target, scenario.correspondences
        )
        assert result.correspondences is scenario.correspondences
