"""Unit tests for ``DiscoveryOptions`` and the legacy-keyword shim."""

import pickle

import pytest

from repro.datasets.paper_examples import partof_example
from repro.discovery import (
    DEFAULT_OPTIONS,
    DiscoveryOptions,
    Scenario,
    SemanticMapper,
    merge_legacy_kwargs,
)
from repro.discovery.batch import scenario_fingerprint


class TestConstruction:
    def test_defaults(self):
        options = DiscoveryOptions()
        assert options.max_path_edges == 6
        assert options.use_partof_filter is True
        assert options.use_disjointness_filter is True
        assert options.use_cardinality_filter is True
        assert options.explain is False
        assert options.trace is False

    def test_frozen_hashable_picklable(self):
        options = DiscoveryOptions(explain=True)
        with pytest.raises(AttributeError):
            options.explain = False
        assert hash(options) == hash(DiscoveryOptions(explain=True))
        assert pickle.loads(pickle.dumps(options)) == options

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_path_edges": 0},
            {"max_path_edges": "6"},
            {"max_path_edges": True},
            {"use_partof_filter": 1},
            {"explain": "yes"},
            {"trace": None},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DiscoveryOptions(**kwargs)

    def test_replace_validates(self):
        options = DiscoveryOptions().replace(explain=True)
        assert options.explain is True
        with pytest.raises(ValueError):
            DiscoveryOptions().replace(max_path_edges=-1)

    def test_from_mapping_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown options key"):
            DiscoveryOptions.from_mapping({"max_candidates": 3})
        with pytest.raises(ValueError, match="must be an object"):
            DiscoveryOptions.from_mapping(["explain"])


class TestSerialisation:
    def test_default_pairs_empty_for_fingerprint_stability(self):
        assert DiscoveryOptions().to_pairs() == ()

    def test_pairs_round_trip_non_defaults(self):
        options = DiscoveryOptions(max_path_edges=4, explain=True)
        pairs = options.to_pairs()
        assert pairs == (("explain", True), ("max_path_edges", 4))
        assert DiscoveryOptions.from_pairs(pairs) == options

    def test_to_dict_lists_every_field(self):
        assert DiscoveryOptions().to_dict() == {
            "max_path_edges": 6,
            "use_partof_filter": True,
            "use_disjointness_filter": True,
            "use_cardinality_filter": True,
            "explain": False,
            "trace": False,
            "engine": "semantic",
            "profile_cache_size": None,
            "translation_cache_size": None,
            "stage_cache_size": None,
            "distance_oracle": True,
            "subtree_cache_size": None,
            "cache_dir": None,
        }

    def test_wants_trace(self):
        assert DiscoveryOptions().wants_trace is False
        assert DiscoveryOptions(trace=True).wants_trace is True
        assert DiscoveryOptions(explain=True).wants_trace is True


class TestMergeLegacyKwargs:
    def test_no_kwargs_passes_options_through(self):
        options = DiscoveryOptions(explain=True)
        assert merge_legacy_kwargs(options, {}, "caller()") is options
        assert merge_legacy_kwargs(None, {}, "caller()") is DEFAULT_OPTIONS

    def test_legacy_kwargs_warn_and_build_options(self):
        with pytest.warns(DeprecationWarning, match="caller()"):
            merged = merge_legacy_kwargs(
                None, {"use_partof_filter": False}, "caller()"
            )
        assert merged == DiscoveryOptions(use_partof_filter=False)

    def test_unknown_kwarg_is_type_error(self):
        with pytest.raises(TypeError, match="explode_on_contact"):
            merge_legacy_kwargs(None, {"explode_on_contact": True}, "c()")

    def test_conflicting_kwarg_is_type_error(self):
        options = DiscoveryOptions(max_path_edges=4)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError, match="conflicting"):
                merge_legacy_kwargs(
                    options, {"max_path_edges": 5}, "caller()"
                )

    def test_agreeing_kwarg_tolerated(self):
        options = DiscoveryOptions(max_path_edges=4)
        with pytest.warns(DeprecationWarning):
            merged = merge_legacy_kwargs(
                options, {"max_path_edges": 4}, "caller()"
            )
        assert merged is options


class TestMapperIntegration:
    @pytest.fixture(scope="class")
    def example(self):
        return partof_example(target_is_partof=True)

    def test_options_object_accepted(self, example):
        mapper = SemanticMapper(
            example.source,
            example.target,
            example.correspondences,
            options=DiscoveryOptions(use_partof_filter=False),
        )
        assert mapper.options.use_partof_filter is False
        assert mapper.use_partof_filter is False  # legacy read attribute

    def test_legacy_kwargs_warn_but_work(self, example):
        with pytest.warns(DeprecationWarning, match="SemanticMapper"):
            mapper = SemanticMapper(
                example.source,
                example.target,
                example.correspondences,
                use_partof_filter=False,
            )
        assert mapper.options == DiscoveryOptions(use_partof_filter=False)
        result = mapper.discover()
        assert len(result.candidates) == 2

    def test_unknown_kwarg_rejected(self, example):
        with pytest.raises(TypeError, match="max_candidates"):
            SemanticMapper(
                example.source,
                example.target,
                example.correspondences,
                max_candidates=3,
            )


class TestScenarioIntegration:
    @pytest.fixture(scope="class")
    def example(self):
        return partof_example(target_is_partof=True)

    def test_create_with_options(self, example):
        scenario = Scenario.create(
            "s1",
            example.source,
            example.target,
            example.correspondences,
            options=DiscoveryOptions(explain=True),
        )
        assert scenario.discovery_options() == DiscoveryOptions(explain=True)
        result = scenario.run()
        assert result.trace is not None

    def test_create_with_legacy_kwargs_warns(self, example):
        with pytest.warns(DeprecationWarning):
            scenario = Scenario.create(
                "s1",
                example.source,
                example.target,
                example.correspondences,
                use_partof_filter=False,
            )
        assert scenario.discovery_options() == DiscoveryOptions(
            use_partof_filter=False
        )

    def test_malformed_legacy_options_fail_at_run(self, example):
        with pytest.warns(DeprecationWarning):
            scenario = Scenario.create(
                "s1",
                example.source,
                example.target,
                example.correspondences,
                explode_on_contact=True,
            )
        assert scenario.discovery_options() is None
        with pytest.raises(TypeError):
            scenario.run()

    def test_default_options_keep_fingerprints_stable(self, example):
        bare = Scenario.create(
            "s1", example.source, example.target, example.correspondences
        )
        with_options = Scenario.create(
            "s1",
            example.source,
            example.target,
            example.correspondences,
            options=DiscoveryOptions(),
        )
        assert scenario_fingerprint(bare) == scenario_fingerprint(
            with_options
        )

    def test_non_default_options_change_fingerprint(self, example):
        bare = Scenario.create(
            "s1", example.source, example.target, example.correspondences
        )
        tuned = Scenario.create(
            "s1",
            example.source,
            example.target,
            example.correspondences,
            options=DiscoveryOptions(max_path_edges=4),
        )
        assert scenario_fingerprint(bare) != scenario_fingerprint(tuned)
