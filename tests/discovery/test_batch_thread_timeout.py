"""Regression: BatchPolicy timeouts off the main thread degrade loudly.

``BatchPolicy.timeout_seconds`` is enforced with ``SIGALRM``, which can
only be armed on the process's main thread. Before the service work the
timeout was silently skipped in any other context; now it must degrade
to no-timeout with a :class:`TimeoutUnavailableWarning` plus a
``timeouts_unenforced`` perf counter — and discovery itself must still
succeed.
"""

import threading
import warnings

import pytest

from repro.datasets.paper_examples import bookstore_example
from repro.discovery.batch import BatchPolicy, Scenario, discover_many
from repro.exceptions import TimeoutUnavailableWarning
from repro.perf import counters as perf_counters


def _scenario(scenario_id="threaded"):
    example = bookstore_example()
    return Scenario.create(
        scenario_id, example.source, example.target, example.correspondences
    )


class TestThreadContextTimeouts:
    def test_worker_thread_degrades_with_warning(self):
        policy = BatchPolicy(timeout_seconds=30.0)
        outcome = {}

        def run():
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                with perf_counters.scope() as counters:
                    outcome["batch"] = discover_many(
                        [_scenario()], workers=1, policy=policy
                    )
                outcome["warnings"] = [
                    w for w in caught
                    if issubclass(w.category, TimeoutUnavailableWarning)
                ]
                outcome["counters"] = counters.counts

        thread = threading.Thread(target=run)
        thread.start()
        thread.join(timeout=60)
        assert not thread.is_alive()

        batch = outcome["batch"]
        assert not batch.failures
        assert len(batch.results) == 1
        (scenario_id, result), = batch.results
        assert scenario_id == "threaded"
        assert result.candidates

        # Exactly one structured warning, naming scenario and limit.
        assert len(outcome["warnings"]) == 1
        message = str(outcome["warnings"][0].message)
        assert "'threaded'" in message
        assert "30.0s" in message
        assert "main thread" in message
        assert outcome["counters"]["timeouts_unenforced"] == 1

    def test_main_thread_still_arms_sigalrm_silently(self):
        import signal

        if not hasattr(signal, "SIGALRM"):
            pytest.skip("platform has no SIGALRM")
        assert threading.current_thread() is threading.main_thread()
        policy = BatchPolicy(timeout_seconds=30.0)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            batch = discover_many([_scenario("mainline")], workers=1, policy=policy)
        assert not batch.failures
        assert not [
            w for w in caught
            if issubclass(w.category, TimeoutUnavailableWarning)
        ]
        # The alarm must be disarmed again after the run.
        assert signal.alarm(0) == 0

    def test_no_timeout_means_no_warning_anywhere(self):
        outcome = {}

        def run():
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                outcome["batch"] = discover_many(
                    [_scenario("untimed")], workers=1
                )
                outcome["warnings"] = list(caught)

        thread = threading.Thread(target=run)
        thread.start()
        thread.join(timeout=60)
        assert not outcome["batch"].failures
        assert not [
            w for w in outcome["warnings"]
            if issubclass(w.category, TimeoutUnavailableWarning)
        ]
