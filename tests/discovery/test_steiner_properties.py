"""Property-based tests on the tree/path search invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cm import CMGraph, ConceptualModel
from repro.discovery import (
    CostModel,
    direction_reversals,
    functional_trees_from_root,
    minimal_functional_trees,
    minimally_lossy_paths,
    simple_paths,
)

NAMES = ["A", "B", "C", "D", "E"]
CARDS = ["0..1", "1..1", "0..*", "1..*"]


@st.composite
def cm_graphs(draw):
    cm = ConceptualModel("g")
    n = draw(st.integers(min_value=2, max_value=5))
    for name in NAMES[:n]:
        cm.add_class(name, attributes=[name.lower()], key=[name.lower()])
    n_rels = draw(st.integers(min_value=1, max_value=6))
    for index in range(n_rels):
        domain = draw(st.sampled_from(NAMES[:n]))
        range_ = draw(st.sampled_from(NAMES[:n]))
        if domain == range_:
            continue
        cm.add_relationship(
            f"r{index}",
            domain,
            range_,
            to_card=draw(st.sampled_from(CARDS)),
            from_card=draw(st.sampled_from(CARDS)),
        )
    return CMGraph(cm), NAMES[:n]


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_functional_trees_are_functional_and_rooted(data):
    graph, names = data.draw(cm_graphs())
    root = data.draw(st.sampled_from(names))
    targets = set(
        data.draw(st.lists(st.sampled_from(names), min_size=1, max_size=3))
    )
    for tree, covered, cost in functional_trees_from_root(
        graph, root, targets
    ):
        assert tree.root == root
        assert all(edge.is_functional for edge in tree.edges)
        assert covered <= targets | {root} or covered <= set(names)
        assert cost >= 0
        # Every covered target is actually in the tree.
        for target in covered:
            assert target in tree.nodes()


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_minimal_trees_cover_all_targets(data):
    graph, names = data.draw(cm_graphs())
    targets = set(
        data.draw(st.lists(st.sampled_from(names), min_size=1, max_size=3))
    )
    for tree in minimal_functional_trees(graph, targets):
        assert targets <= tree.nodes()
        assert all(edge.is_functional for edge in tree.edges)


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_minimal_trees_node_minimality(data):
    graph, names = data.draw(cm_graphs())
    targets = set(
        data.draw(st.lists(st.sampled_from(names), min_size=1, max_size=3))
    )
    trees = minimal_functional_trees(graph, targets)
    for first in trees:
        for second in trees:
            assert not (first.nodes() < second.nodes())


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_reversals_symmetric_under_path_reversal(data):
    graph, names = data.draw(cm_graphs())
    start = data.draw(st.sampled_from(names))
    end = data.draw(st.sampled_from(names))
    if start == end:
        return
    for path in list(simple_paths(graph, start, end, max_edges=4))[:10]:
        reverse = tuple(edge.reversed() for edge in reversed(path))
        assert direction_reversals(path) == direction_reversals(reverse)


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_lossy_paths_connect_endpoints(data):
    graph, names = data.draw(cm_graphs())
    start = data.draw(st.sampled_from(names))
    end = data.draw(st.sampled_from(names))
    if start == end:
        return
    for path in minimally_lossy_paths(graph, start, end, max_edges=4):
        assert path[0].source == start
        assert path[-1].target == end
        # Simple: no repeated nodes.
        nodes = [start] + [edge.target for edge in path]
        assert len(nodes) == len(set(nodes))


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_lossy_paths_share_minimal_score(data):
    graph, names = data.draw(cm_graphs())
    start = data.draw(st.sampled_from(names))
    end = data.draw(st.sampled_from(names))
    if start == end:
        return
    cost_model = CostModel()
    results = minimally_lossy_paths(graph, start, end, cost_model, max_edges=4)
    if not results:
        return
    scores = {
        (direction_reversals(path), cost_model.path_cost(path))
        for path in results
    }
    assert len(scores) == 1
    best = scores.pop()
    for path in simple_paths(graph, start, end, max_edges=4):
        candidate = (
            direction_reversals(path),
            cost_model.path_cost(path),
        )
        assert candidate >= best


# ----------------------------------------------------------------------
# Oracle-guided search must be indistinguishable from blind search.
# ----------------------------------------------------------------------
def _fresh(graph):
    """Drop shared indexes so each mode starts cold on this graph."""
    from repro.perf.index import GraphIndex

    GraphIndex.clear_registry()
    return graph


@settings(max_examples=80, deadline=None)
@given(data=st.data())
def test_oracle_matches_blind_functional_trees(data):
    from repro.perf import config as perf_config

    graph, names = data.draw(cm_graphs())
    root = data.draw(st.sampled_from(names))
    targets = set(
        data.draw(st.lists(st.sampled_from(names), min_size=1, max_size=3))
    )
    guided = list(functional_trees_from_root(_fresh(graph), root, targets))
    with perf_config.distance_oracle(False):
        blind = list(functional_trees_from_root(_fresh(graph), root, targets))
    assert [(t.edges, c, s) for t, c, s in guided] == [
        (t.edges, c, s) for t, c, s in blind
    ]


@settings(max_examples=80, deadline=None)
@given(data=st.data())
def test_oracle_matches_blind_minimal_trees(data):
    from repro.perf import config as perf_config

    graph, names = data.draw(cm_graphs())
    targets = set(
        data.draw(st.lists(st.sampled_from(names), min_size=1, max_size=3))
    )
    guided = minimal_functional_trees(_fresh(graph), targets)
    with perf_config.distance_oracle(False):
        blind = minimal_functional_trees(_fresh(graph), targets)
    assert [t.edges for t in guided] == [t.edges for t in blind]


@settings(max_examples=80, deadline=None)
@given(data=st.data())
def test_oracle_matches_blind_lossy_paths(data):
    from repro.perf import config as perf_config

    graph, names = data.draw(cm_graphs())
    start = data.draw(st.sampled_from(names))
    end = data.draw(st.sampled_from(names))
    if start == end:
        return
    guided = minimally_lossy_paths(_fresh(graph), start, end, max_edges=4)
    with perf_config.distance_oracle(False):
        blind = minimally_lossy_paths(_fresh(graph), start, end, max_edges=4)
    assert guided == blind
