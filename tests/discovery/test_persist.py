"""The persistent stage store: durability, corruption, and engine wiring.

The store's contract is "a disk can be wrong, a result cannot": any
entry that is truncated, garbage, differently versioned, or misfiled
must read as a miss (the engine recomputes and overwrites), while a
good entry must hand back exactly the artifact that was stored — across
threads, processes, and restarts. The engine-level tests pin the
tentpole behaviour: a fresh process (simulated by clearing the
in-memory tiers) re-serves a previous run's output from disk,
byte-identical, via a full hit on the ``rank`` artifact.
"""

import multiprocessing
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.perf as perf
from repro.discovery import DiscoveryOptions, SemanticMapper
from repro.discovery.engine import StageCache, clear_stage_cache
from repro.discovery.engine.persist import (
    STORE_FORMAT,
    STORE_VERSION,
    PersistentStageStore,
    active_cache_dir,
    cache_dir_override,
    configure,
    configured_dir,
    store_for,
)

FP = "a" * 64


@pytest.fixture(autouse=True)
def fresh_caches():
    perf.clear_caches()
    yield
    perf.clear_caches()


@pytest.fixture()
def store(tmp_path):
    return PersistentStageStore(tmp_path / "cache")


class TestStoreRoundTrip:
    def test_put_get(self, store):
        artifact = {"candidates": [1, 2, 3], "notes": ("n",)}
        assert store.put("rank", FP, artifact) is True
        assert store.get("rank", FP) == artifact

    def test_absent_is_none(self, store):
        assert store.get("rank", FP) is None

    def test_keys_are_stage_and_fingerprint(self, store):
        store.put("rank", FP, "rank-artifact")
        assert store.get("lift", FP) is None
        assert store.get("rank", "b" * 64) is None

    def test_survives_reopen(self, store):
        store.put("translate", FP, [1, 2])
        reopened = PersistentStageStore(store.root)
        assert reopened.get("translate", FP) == [1, 2]

    def test_clear_removes_entries(self, store):
        store.put("rank", FP, 1)
        store.put("lift", "b" * 64, 2)
        assert store.clear() == 2
        assert store.get("rank", FP) is None
        assert len(store) == 0

    def test_stats_counts_by_stage(self, store):
        store.put("rank", FP, 1)
        store.put("rank", "b" * 64, 2)
        store.put("lift", FP, 3)
        stats = store.stats()
        assert stats["rank"] == 2
        assert stats["lift"] == 1
        assert stats["entries"] == 3


class TestCorruptionDegradesToMiss:
    """Anything wrong on disk is a miss — never a crash, never a lie."""

    def _seed(self, store, data: bytes) -> None:
        path = store.entry_path("rank", FP)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(data)

    def test_garbage_bytes(self, store):
        self._seed(store, b"not a pickle at all")
        assert store.get("rank", FP) is None

    def test_truncated_entry(self, store):
        store.put("rank", FP, {"big": "x" * 4096})
        path = store.entry_path("rank", FP)
        path.write_bytes(path.read_bytes()[:20])
        assert store.get("rank", FP) is None

    def test_empty_file(self, store):
        self._seed(store, b"")
        assert store.get("rank", FP) is None

    def test_wrong_store_version(self, store):
        self._seed(
            store,
            pickle.dumps(
                (STORE_FORMAT, STORE_VERSION + 1, "rank", FP, "artifact")
            ),
        )
        assert store.get("rank", FP) is None

    def test_wrong_format_magic(self, store):
        self._seed(
            store,
            pickle.dumps(("other-store", STORE_VERSION, "rank", FP, "a")),
        )
        assert store.get("rank", FP) is None

    def test_misfiled_entry_header_mismatch(self, store):
        # A valid entry for a *different* key copied into this path.
        self._seed(
            store,
            pickle.dumps(
                (STORE_FORMAT, STORE_VERSION, "lift", "b" * 64, "a")
            ),
        )
        assert store.get("rank", FP) is None

    def test_corrupt_entry_is_overwritten_by_put(self, store):
        self._seed(store, b"garbage")
        store.put("rank", FP, "good")
        assert store.get("rank", FP) == "good"

    def test_unpicklable_artifact_fails_put_without_raising(self, store):
        assert store.put("rank", FP, lambda: None) is False
        assert store.get("rank", FP) is None


# Hypothesis: whatever JSON-shaped artifact goes in comes out equal.
_json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers()
    | st.floats(allow_nan=False)
    | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=20,
)


class TestSerializationProperty:
    @settings(max_examples=50, deadline=None)
    @given(artifact=_json_values, fingerprint=st.text("0123456789abcdef", min_size=4, max_size=64))
    def test_round_trip(self, tmp_path_factory, artifact, fingerprint):
        store = PersistentStageStore(
            tmp_path_factory.mktemp("prop") / "cache"
        )
        assert store.put("stage", fingerprint, artifact) is True
        assert store.get("stage", fingerprint) == artifact


def _hammer(root: str, writer: int, rounds: int) -> None:
    store = PersistentStageStore(root)
    for i in range(rounds):
        store.put(
            "rank", FP, {"writer": writer, "round": i, "pad": "x" * 2048}
        )


class TestConcurrentWriters:
    def test_racing_processes_never_produce_a_torn_entry(self, tmp_path):
        """Two processes hammer one key; every read is complete or a miss.

        ``os.replace`` publication is the claim under test: a reader
        concurrent with the race must only ever see a fully written
        entry (the header validates stage and fingerprint), never a
        partial file, and the store must never raise.
        """
        root = str(tmp_path / "cache")
        ctx = multiprocessing.get_context("fork")
        writers = [
            ctx.Process(target=_hammer, args=(root, w, 40))
            for w in range(2)
        ]
        for proc in writers:
            proc.start()
        reader = PersistentStageStore(root)
        observed = 0
        while any(proc.is_alive() for proc in writers):
            entry = reader.get("rank", FP)
            if entry is not None:
                assert set(entry) == {"writer", "round", "pad"}
                assert len(entry["pad"]) == 2048
                observed += 1
        for proc in writers:
            proc.join(timeout=30)
            assert proc.exitcode == 0
        final = reader.get("rank", FP)
        assert final is not None and final["round"] == 39
        assert observed > 0


class TestActivation:
    def test_inactive_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert configured_dir() is None
        assert active_cache_dir() is None

    def test_env_var_activates(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert active_cache_dir() == str(tmp_path)

    def test_configure_beats_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", "/elsewhere")
        configure(tmp_path)
        try:
            assert active_cache_dir() == str(tmp_path)
        finally:
            configure(None)

    def test_override_beats_configure(self, tmp_path):
        configure(tmp_path / "configured")
        try:
            with cache_dir_override(tmp_path / "override"):
                assert active_cache_dir() == str(tmp_path / "override")
            assert active_cache_dir() == str(tmp_path / "configured")
        finally:
            configure(None)

    def test_store_for_is_shared_per_directory(self, tmp_path):
        assert store_for(tmp_path) is store_for(tmp_path)

    def test_cache_dir_never_in_option_pairs(self, tmp_path):
        # A deployment path must not leak into content fingerprints:
        # two hosts caching in different directories share results.
        options = DiscoveryOptions(cache_dir=str(tmp_path))
        assert options.to_pairs() == ()

    def test_cache_dir_validation(self):
        with pytest.raises(ValueError):
            DiscoveryOptions(cache_dir="")


class TestEngineDiskTier:
    def _discover(self, example, cache_dir):
        return SemanticMapper(
            example.source,
            example.target,
            example.correspondences,
            options=DiscoveryOptions(cache_dir=str(cache_dir)),
        ).discover()

    def test_fresh_memory_serves_from_disk_byte_identical(
        self, bookstore, tmp_path
    ):
        cold = self._discover(bookstore, tmp_path)
        assert cold.stats.get("stage_cache_disk_writes", 0) > 0
        clear_stage_cache()  # simulate a fresh process: memory gone
        warm = self._discover(bookstore, tmp_path)
        assert warm.stats.get("stage_cache_disk_hit_rank") == 1
        assert [str(c) for c in warm.candidates] == [
            str(c) for c in cold.candidates
        ]

    def test_seeded_garbage_entry_does_not_break_discovery(
        self, bookstore, tmp_path
    ):
        cold = self._discover(bookstore, tmp_path)
        store = store_for(tmp_path)
        # Corrupt *every* entry the cold run wrote, then rediscover.
        for path in store._entry_files():
            path.write_bytes(b"garbage")
        clear_stage_cache()
        again = self._discover(bookstore, tmp_path)
        assert [str(c) for c in again.candidates] == [
            str(c) for c in cold.candidates
        ]

    def test_clear_caches_empties_the_active_store(
        self, bookstore, tmp_path
    ):
        self._discover(bookstore, tmp_path)
        store = store_for(tmp_path)
        assert len(store) > 0
        configure(tmp_path)
        try:
            perf.clear_caches()
        finally:
            configure(None)
        assert len(store) == 0

    def test_no_disk_traffic_without_cache_dir(self, bookstore):
        result = SemanticMapper(
            bookstore.source,
            bookstore.target,
            bookstore.correspondences,
        ).discover()
        assert "stage_cache_disk_writes" not in result.stats
        assert "stage_cache_disk_misses" not in result.stats


class TestShrunkBoundEnforcedOnGet:
    """Satellite (b): a shrunk per-run bound applies on ``get`` too."""

    def test_get_drops_entries_above_the_current_bound(self):
        cache = StageCache()
        for i in range(4):
            cache.put("lift", f"fp{i}", f"artifact{i}")
        assert len(cache) == 4
        with perf.cache_size_overrides(stage=1):
            # The shrunk run's very first get enforces its bound: only
            # the most recent entry may survive, readable or not.
            assert cache.get("lift", "fp0") is None
            assert len(cache) <= 1
            assert cache.get("lift", "fp3") == "artifact3"
        # Outside the override the default bound applies again.
        cache.put("lift", "fp4", "artifact4")
        assert cache.get("lift", "fp4") == "artifact4"

    def test_zero_bound_blocks_reads_and_disk(self, tmp_path):
        store = store_for(tmp_path)
        store.put("lift", FP, "from-disk")
        cache = StageCache()
        with cache_dir_override(tmp_path):
            with perf.cache_size_overrides(stage=0):
                assert cache.get("lift", FP) is None
            assert cache.get("lift", FP) == "from-disk"
