"""Unit tests for CSG construction and the case analysis."""

import pytest

from repro.cm import CMGraph, ConceptualModel
from repro.discovery import (
    CSG,
    CostModel,
    DiscoveredTree,
    csg_from_discovered,
    csg_from_table,
    discovered_to_semantic_tree,
    find_source_functional_csgs,
    find_target_csgs,
)
from repro.discovery.csg import extend_partial_trees, single_node_csgs
from repro.semantics.stree import STreeNode


@pytest.fixture
def bookstore(bookstore_scenario=None):
    from repro.datasets.paper_examples import bookstore_example

    return bookstore_example()


def lifted(scenario):
    return scenario.correspondences.lift(scenario.source, scenario.target)


class TestCSGBasics:
    def test_marked_accessors(self, bookstore):
        items = lifted(bookstore)
        csg = csg_from_table(bookstore.target, "hasbooksoldat", items, "target")
        assert csg.marked_classes() == {"Author", "Bookstore"}
        assert csg.node_for("Author") == STreeNode("Author")
        assert csg.node_for("Ghost") is None
        assert "hasbooksoldat" in str(csg)

    def test_connecting_path_through_lca(self, bookstore):
        graph = bookstore.source.graph
        tree = DiscoveredTree(
            "Book",
            (
                graph.edge("Book", "writes⁻"),
                graph.edge("Book", "soldAt"),
            ),
        )
        csg = csg_from_discovered(tree, {"Person", "Bookstore"}, "test")
        path = csg.connecting_path("Person", "Bookstore")
        assert [e.label for e in path] == ["writes", "soldAt"]

    def test_discovered_to_semantic_tree_orders_bfs(self, bookstore):
        graph = bookstore.source.graph
        # Edges deliberately out of order: child edge before parent edge.
        tree = DiscoveredTree(
            "Person",
            (
                graph.edge("Book", "soldAt"),
                graph.edge("Person", "writes"),
            ),
        )
        semantic = discovered_to_semantic_tree(tree)
        assert [e.cm_edge.label for e in semantic.edges] == [
            "writes",
            "soldAt",
        ]


class TestFindTargetCsgs:
    def test_single_table_case_a(self, bookstore):
        csgs = find_target_csgs(bookstore.target, lifted(bookstore))
        assert len(csgs) == 1
        assert csgs[0].origin == "table:hasbooksoldat"

    def test_multi_table_constructs_functional_tree(self):
        from repro.datasets.paper_examples import partof_example

        scenario = partof_example()
        csgs = find_target_csgs(scenario.target, lifted(scenario))
        assert csgs
        assert all(csg.origin != "table:prof" for csg in csgs)
        assert any(
            csg.marked_classes() == {"Prof", "Dept"} for csg in csgs
        )

    def test_lossy_target_connection(self):
        from repro.datasets.paper_examples import bookstore_example

        # Hotel guest-stays case: target columns span customer + property.
        from repro.datasets.registry import load_dataset

        pair = load_dataset("Hotel")
        case = pair.cases[1]  # hotel-guest-stays-at-hotel
        items = case.correspondences.lift(pair.source, pair.target)
        csgs = find_target_csgs(pair.target, items)
        assert csgs
        # The reified Stay anchors a functional tree reaching Customer and
        # (through Unit) Property, so the connection is constructed.
        assert all(csg.origin in ("constructed", "mixed") for csg in csgs)
        assert any(
            csg.marked_classes() == {"Customer", "Property"} for csg in csgs
        )


class TestSourceSearch:
    def test_case_a1_uses_anchor_correspondence(self):
        from repro.datasets.paper_examples import project_example

        scenario = project_example()
        items = lifted(scenario)
        target_csg = find_target_csgs(scenario.target, items)[0]
        csgs = find_source_functional_csgs(
            scenario.source, items, target_csg
        )
        assert csgs
        assert csgs[0].origin == "A.1"
        assert csgs[0].anchor == STreeNode("Project")

    def test_case_a2_without_anchor(self):
        from repro.datasets.paper_examples import employee_example

        scenario = employee_example()
        items = lifted(scenario)
        target_csg = find_target_csgs(scenario.target, items)[0]
        csgs = find_source_functional_csgs(
            scenario.source, items, target_csg
        )
        assert csgs
        # No source class corresponds to the target anchor (Employee's
        # only corresponded attribute is name, carried by Employee — so
        # A.1 applies with root Employee) or A.2 covers all marked.
        assert all(
            csg.marked_classes()
            >= {"Employee", "Engineer", "Programmer"}
            for csg in csgs
        )


class TestExtension:
    def test_single_node_seeds(self):
        seeds = single_node_csgs(["B", "A"])
        assert [csg.anchor.cm_node for csg in seeds] == ["A", "B"]
        assert all(len(csg.tree.edges) == 0 for csg in seeds)

    def test_extend_reaches_missing_class(self, bookstore):
        extended = extend_partial_trees(
            bookstore.source, {"Person", "Bookstore"}, CostModel()
        )
        assert extended
        best = extended[0]
        assert best.marked_classes() == {"Person", "Bookstore"}
        # The path may be rooted at either endpoint; base names are fixed.
        names = sorted(e.cm_edge.base_name for e in best.tree.edges)
        assert names == ["soldAt", "writes"]

    def test_extend_unreachable_returns_nothing(self):
        cm = ConceptualModel("m")
        cm.add_class("A", attributes=["a"], key=["a"])
        cm.add_class("B", attributes=["b"], key=["b"])
        graph = CMGraph(cm)
        from repro.relational import RelationalSchema, Table
        from repro.semantics import SchemaSemantics, SemanticTree

        schema = RelationalSchema(
            "s", [Table("a", ["a"], ["a"]), Table("b", ["b"], ["b"])]
        )
        semantics = SchemaSemantics(
            schema,
            graph,
            {
                "a": SemanticTree.build(graph, "A", [], {"a": "A.a"}),
                "b": SemanticTree.build(graph, "B", [], {"b": "B.b"}),
            },
        )
        assert extend_partial_trees(semantics, {"A", "B"}, CostModel()) == []
