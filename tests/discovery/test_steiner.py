"""Unit tests for functional-tree and lossy-path search."""

import pytest

from repro.cm import CMGraph, ConceptualModel
from repro.cm.graph import INVERSE_MARK
from repro.discovery import (
    CostModel,
    DiscoveredTree,
    direction_reversals,
    functional_tree_from_root,
    functional_trees_from_root,
    minimal_functional_trees,
    minimally_lossy_paths,
    simple_paths,
)
from repro.discovery.steiner import (
    PLAIN_EDGE_COST,
    ROLE_EDGE_COST,
    edge_key,
)


@pytest.fixture
def intern_model() -> ConceptualModel:
    """Case A.2's example: Project/Department/Employee plus Intern."""
    cm = ConceptualModel("pm")
    cm.add_class("Project", attributes=["proj"], key=["proj"])
    cm.add_class("Department", attributes=["dept"], key=["dept"])
    cm.add_class("Employee", attributes=["emp"], key=["emp"])
    cm.add_class("Intern", attributes=["iid"], key=["iid"])
    cm.add_relationship("controlledBy", "Project", "Department", "1..1", "0..*")
    cm.add_relationship("hasManager", "Department", "Employee", "1..1", "0..*")
    cm.add_relationship("works_on", "Intern", "Project", "1..1", "0..*")
    return cm


@pytest.fixture
def intern_graph(intern_model) -> CMGraph:
    return CMGraph(intern_model)


class TestCostModel:
    def test_plain_edge_cost(self, intern_graph):
        edge = intern_graph.edge("Project", "controlledBy")
        assert CostModel().cost(edge) == PLAIN_EDGE_COST

    def test_preselected_edges_free(self, intern_graph):
        edge = intern_graph.edge("Project", "controlledBy")
        model = CostModel.from_edges([edge])
        assert model.cost(edge) == 0
        # The reverse direction is free too.
        assert model.cost(edge.reversed()) == 0

    def test_role_edges_half_price(self):
        cm = ConceptualModel("m")
        cm.add_class("A", attributes=["a"], key=["a"])
        cm.add_class("B", attributes=["b"], key=["b"])
        cm.add_reified_relationship("R", roles={"ra": "A", "rb": "B"})
        graph = CMGraph(cm)
        role = graph.edge("R", "ra")
        assert CostModel().cost(role) == ROLE_EDGE_COST
        # A reified hop (two roles) costs the same as one plain edge.
        assert 2 * ROLE_EDGE_COST == PLAIN_EDGE_COST

    def test_path_cost_and_preselected_count(self, intern_graph):
        controlled = intern_graph.edge("Project", "controlledBy")
        manager = intern_graph.edge("Department", "hasManager")
        model = CostModel.from_edges([controlled])
        assert model.path_cost([controlled, manager]) == PLAIN_EDGE_COST
        assert model.preselected_count([controlled, manager]) == 1


class TestFunctionalTreeFromRoot:
    def test_case_a1_tree(self, intern_graph):
        tree, covered, cost = functional_tree_from_root(
            intern_graph, "Project", {"Department", "Employee"}
        )
        assert covered == {"Department", "Employee"}
        assert [e.label for e in tree.edges] == ["controlledBy", "hasManager"]
        assert cost == 2 * PLAIN_EDGE_COST

    def test_partial_coverage(self, intern_graph):
        # Employee cannot functionally reach Project (edges point the
        # other way), so only reachable targets are covered.
        tree, covered, _ = functional_tree_from_root(
            intern_graph, "Employee", {"Project", "Employee"}
        )
        assert covered == {"Employee"}
        assert tree.edges == ()

    def test_tied_paths_enumerate_alternatives(self):
        cm = ConceptualModel("m")
        cm.add_class("F", attributes=["f"], key=["f"])
        cm.add_class("D", attributes=["d"], key=["d"])
        cm.add_relationship("chairOf", "F", "D", "0..1", "0..1")
        cm.add_relationship("deanOf", "F", "D", "0..1", "0..1")
        graph = CMGraph(cm)
        trees = functional_trees_from_root(graph, "F", {"D"})
        labels = sorted(tree.edges[0].label for tree, _, _ in trees)
        assert labels == ["chairOf", "deanOf"]


class TestMinimalFunctionalTrees:
    def test_intern_rule(self, intern_graph):
        """The Intern-rooted tree is not minimal (Case A.2)."""
        trees = minimal_functional_trees(
            intern_graph, {"Department", "Employee"}
        )
        assert len(trees) == 1
        assert trees[0].nodes() == {"Project", "Department", "Employee"} or (
            trees[0].nodes() == {"Department", "Employee"}
        )
        assert "Intern" not in trees[0].nodes()

    def test_department_root_is_smallest(self, intern_graph):
        trees = minimal_functional_trees(
            intern_graph, {"Department", "Employee"}
        )
        # Department reaches Employee directly: two nodes beat three.
        assert trees[0].nodes() == {"Department", "Employee"}

    def test_marked_intern_forces_intern_root(self, intern_graph):
        # When Intern itself is marked, the only covering functional tree
        # runs Intern → Project → Department → Employee.
        trees = minimal_functional_trees(intern_graph, {"Employee", "Intern"})
        assert len(trees) == 1
        assert trees[0].root == "Intern"
        assert len(trees[0].edges) == 3

    def test_no_tree_when_truly_disconnected(self, intern_model):
        intern_model.add_class("Island", attributes=["x"], key=["x"])
        graph = CMGraph(intern_model)
        assert minimal_functional_trees(graph, {"Island", "Employee"}) == []

    def test_single_marked_node(self, intern_graph):
        trees = minimal_functional_trees(intern_graph, {"Project"})
        assert trees and trees[0].nodes() == {"Project"}

    def test_candidate_roots_restriction(self, intern_graph):
        trees = minimal_functional_trees(
            intern_graph,
            {"Department", "Employee"},
            candidate_roots=["Project"],
        )
        assert len(trees) == 1
        assert trees[0].root == "Project"


class TestDiscoveredTree:
    def test_paths(self, intern_graph):
        tree, _, _ = functional_tree_from_root(
            intern_graph, "Project", {"Employee"}
        )
        path = tree.path_from_root("Employee")
        assert [e.label for e in path] == ["controlledBy", "hasManager"]

    def test_connecting_path_reverses_up_segment(self, intern_graph):
        tree, _, _ = functional_tree_from_root(
            intern_graph, "Project", {"Department", "Employee"}
        )
        path = tree.connecting_path("Department", "Employee")
        assert [e.label for e in path] == ["hasManager"]
        reverse = tree.connecting_path("Employee", "Department")
        assert [e.label for e in reverse] == ["hasManager" + INVERSE_MARK]

    def test_unreachable_node_raises(self, intern_graph):
        tree, _, _ = functional_tree_from_root(intern_graph, "Project", set())
        with pytest.raises(ValueError):
            tree.path_from_root("Employee")


class TestLossyPaths:
    @pytest.fixture
    def books_graph(self):
        cm = ConceptualModel("books")
        cm.add_class("Person", attributes=["pname"], key=["pname"])
        cm.add_class("Book", attributes=["bid"], key=["bid"])
        cm.add_class("Bookstore", attributes=["sid"], key=["sid"])
        cm.add_relationship("writes", "Person", "Book", "0..*", "1..*")
        cm.add_relationship("soldAt", "Book", "Bookstore", "0..*", "0..*")
        return CMGraph(cm)

    def test_simple_paths_enumeration(self, books_graph):
        paths = list(simple_paths(books_graph, "Person", "Bookstore"))
        assert len(paths) == 1
        assert [e.label for e in paths[0]] == ["writes", "soldAt"]

    def test_max_edges_bound(self, books_graph):
        assert list(simple_paths(books_graph, "Person", "Bookstore", 1)) == []

    def test_example_3_2_composition(self, books_graph):
        paths = minimally_lossy_paths(books_graph, "Person", "Bookstore")
        assert len(paths) == 1
        assert [e.label for e in paths[0]] == ["writes", "soldAt"]

    def test_reversal_counting_expands_many_many(self, books_graph):
        writes = books_graph.edge("Person", "writes")
        sold = books_graph.edge("Book", "soldAt")
        # [F,T] for writes, [F,T] for soldAt → profile F,T,F,T: 3 switches.
        assert direction_reversals([writes, sold]) == 3
        assert direction_reversals([writes]) == 1

    def test_functional_paths_have_zero_reversals(self, intern_graph):
        controlled = intern_graph.edge("Project", "controlledBy")
        manager = intern_graph.edge("Department", "hasManager")
        assert direction_reversals([controlled, manager]) == 0

    def test_predicate_filters_paths(self, books_graph):
        paths = minimally_lossy_paths(
            books_graph,
            "Person",
            "Bookstore",
            predicate=lambda path: len(path) > 5,
        )
        assert paths == []

    def test_prefers_fewer_reversals(self):
        # Two routes A→C: a direct many-many edge, and a 2-hop functional
        # pair; the functional route has 0 reversals and must win.
        cm = ConceptualModel("m")
        for name in ["A", "B", "C"]:
            cm.add_class(name, attributes=[name.lower()], key=[name.lower()])
        cm.add_relationship("direct", "A", "C", "0..*", "0..*")
        cm.add_relationship("toB", "A", "B", "1..1", "0..*")
        cm.add_relationship("toC", "B", "C", "1..1", "0..*")
        graph = CMGraph(cm)
        paths = minimally_lossy_paths(graph, "A", "C")
        assert [e.label for e in paths[0]] == ["toB", "toC"]
