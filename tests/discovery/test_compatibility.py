"""Unit tests for semantic compatibility checks."""

import pytest

from repro.cm import (
    CMGraph,
    CMReasoner,
    ConceptualModel,
    ConnectionCategory,
    SemanticType,
)
from repro.discovery import (
    AnchorProfile,
    ConnectionProfile,
    anchors_compatible,
    connections_compatible,
    path_semantic_type,
)


@pytest.fixture
def model() -> ConceptualModel:
    cm = ConceptualModel("m")
    cm.add_class("Person", attributes=["pid"], key=["pid"])
    cm.add_class("Book", attributes=["bid"], key=["bid"])
    cm.add_class("Store", attributes=["sid"], key=["sid"])
    cm.add_class("Chapter", attributes=["cid"], key=["cid"])
    cm.add_relationship("writes", "Person", "Book", "0..*", "1..*")
    cm.add_relationship("soldAt", "Book", "Store", "0..*", "0..*")
    cm.add_relationship("favourite", "Person", "Book", "0..1", "0..*")
    cm.add_relationship(
        "chapterOf",
        "Chapter",
        "Book",
        "1..1",
        "0..*",
        semantic_type=SemanticType.PART_OF,
    )
    return cm


@pytest.fixture
def graph(model) -> CMGraph:
    return CMGraph(model)


class TestPathSemanticType:
    def test_all_partof_path(self, graph):
        path = [graph.edge("Chapter", "chapterOf")]
        assert path_semantic_type(path) is SemanticType.PART_OF

    def test_mixed_path_is_plain(self, graph):
        path = [
            graph.edge("Chapter", "chapterOf"),
            graph.edge("Book", "soldAt"),
        ]
        assert path_semantic_type(path) is SemanticType.PLAIN

    def test_empty_path_is_plain(self):
        assert path_semantic_type([]) is SemanticType.PLAIN


class TestConnectionProfile:
    def test_of_path(self, graph):
        profile = ConnectionProfile.of_path(
            [graph.edge("Person", "writes"), graph.edge("Book", "soldAt")]
        )
        assert profile.category is ConnectionCategory.MANY_MANY
        assert profile.length == 2

    def test_functional_profile(self, graph):
        profile = ConnectionProfile.of_path([graph.edge("Person", "favourite")])
        assert profile.category is ConnectionCategory.MANY_ONE


class TestConnectionsCompatible:
    def make(self, category, semantic_type=SemanticType.PLAIN):
        return ConnectionProfile(category, semantic_type, 1)

    def test_many_many_realizes_many_many(self):
        assert connections_compatible(
            self.make(ConnectionCategory.MANY_MANY),
            self.make(ConnectionCategory.MANY_MANY),
        )

    def test_many_many_cannot_realize_functional(self):
        """Example 1.1's hypothetical upper-bound-1 hasBookSoldAt."""
        assert not connections_compatible(
            self.make(ConnectionCategory.MANY_MANY),
            self.make(ConnectionCategory.MANY_ONE),
        )

    def test_functional_realizes_many_many(self):
        assert connections_compatible(
            self.make(ConnectionCategory.MANY_ONE),
            self.make(ConnectionCategory.MANY_MANY),
        )

    def test_partof_target_requires_partof_source(self):
        assert not connections_compatible(
            self.make(ConnectionCategory.MANY_ONE),
            self.make(ConnectionCategory.MANY_ONE, SemanticType.PART_OF),
        )
        assert connections_compatible(
            self.make(ConnectionCategory.MANY_ONE, SemanticType.PART_OF),
            self.make(ConnectionCategory.MANY_ONE, SemanticType.PART_OF),
        )

    def test_partof_source_realizes_plain_target(self):
        assert connections_compatible(
            self.make(ConnectionCategory.MANY_ONE, SemanticType.PART_OF),
            self.make(ConnectionCategory.MANY_ONE),
        )


class TestAnchorProfiles:
    def reified_model(self, cards):
        cm = ConceptualModel("m")
        cm.add_class("A", attributes=["a"], key=["a"])
        cm.add_class("B", attributes=["b"], key=["b"])
        cm.add_reified_relationship(
            "R", roles={"ra": "A", "rb": "B"}, role_cards=cards
        )
        return cm

    def test_many_many_anchor(self):
        cm = self.reified_model({"ra": "0..*", "rb": "0..*"})
        profile = AnchorProfile.of_reified(CMReasoner(cm), "R")
        assert profile.arity == 2
        assert profile.category is ConnectionCategory.MANY_MANY

    def test_many_one_anchor(self):
        # Each A participates at most once: traversing ra⁻ then rb is
        # functional from A to B.
        cm = self.reified_model({"ra": "0..1", "rb": "0..*"})
        profile = AnchorProfile.of_reified(CMReasoner(cm), "R")
        assert profile.category is ConnectionCategory.MANY_ONE

    def test_arity_mismatch_incompatible(self):
        cm = ConceptualModel("m")
        for name in ["A", "B", "C"]:
            cm.add_class(name, attributes=[name.lower()], key=[name.lower()])
        cm.add_reified_relationship(
            "R3", roles={"ra": "A", "rb": "B", "rc": "C"}
        )
        ternary = AnchorProfile.of_reified(CMReasoner(cm), "R3")
        binary = AnchorProfile(2, ConnectionCategory.MANY_MANY)
        assert not anchors_compatible(ternary, binary)
        assert anchors_compatible(binary, binary)

    def test_category_governs_binary_anchors(self):
        many_many = AnchorProfile(2, ConnectionCategory.MANY_MANY)
        many_one = AnchorProfile(2, ConnectionCategory.MANY_ONE)
        assert not anchors_compatible(many_many, many_one)
        assert anchors_compatible(many_one, many_many)
