"""Incremental re-discovery: reuse reporting and byte-identical results."""

import pytest

import repro.perf as perf
from repro.discovery import (
    Rediscovery,
    Scenario,
    rediscover,
    rediscover_many,
)
from repro.discovery.engine import STAGE_NAMES
from repro.perf.bench import build_incremental_scenario

#: Small enough to keep the suite fast, large enough for two segments.
SEGMENTS, LENGTH = 2, 3


def _scenario(scenario_id: str, edited: bool = False) -> Scenario:
    source, target, correspondences = build_incremental_scenario(
        SEGMENTS, LENGTH, edited=edited
    )
    return Scenario.create(scenario_id, source, target, correspondences)


def _tgds(result):
    return tuple(
        candidate.to_tgd(f"M{i}")
        for i, candidate in enumerate(result, start=1)
    )


@pytest.fixture(autouse=True)
def fresh_caches():
    perf.clear_caches()
    yield
    perf.clear_caches()


class TestRediscover:
    def test_identical_rerun_is_full_reuse(self):
        previous = _scenario("base").run()
        outcome = rediscover(previous, _scenario("base"))
        assert isinstance(outcome, Rediscovery)
        assert outcome.full_reuse is True
        assert outcome.unchanged_stages == STAGE_NAMES
        assert outcome.invalidated_stages == ()
        assert outcome.stage_cache_hits >= 1
        assert _tgds(outcome.result) == _tgds(previous)

    def test_edit_reports_invalidation_and_replays_units(self):
        previous = _scenario("base").run()
        outcome = rediscover(previous, _scenario("edited", edited=True))
        # The lift input changed, so every chained stage fingerprint
        # moved — but the untouched segment's per-target unit replays.
        assert outcome.full_reuse is False
        assert outcome.invalidated_stages == STAGE_NAMES
        assert outcome.unit_cache_hits >= SEGMENTS - 1

    def test_rediscover_matches_cold_run_byte_for_byte(self):
        cold = _scenario("cold", edited=True).run()
        perf.clear_caches()
        previous = _scenario("base").run()
        outcome = rediscover(previous, _scenario("edited", edited=True))
        assert _tgds(outcome.result) == _tgds(cold)
        assert outcome.result.notes == cold.notes
        assert outcome.result.eliminations == cold.eliminations

    def test_previous_can_be_a_plain_fingerprint_mapping(self):
        previous = _scenario("base").run()
        outcome = rediscover(
            dict(previous.stage_fingerprints), _scenario("base")
        )
        assert outcome.full_reuse is True

    def test_previous_can_be_a_rediscovery(self):
        first = rediscover(None, _scenario("base"))
        second = rediscover(first, _scenario("base"))
        assert second.full_reuse is True

    def test_no_previous_reports_all_invalidated(self):
        outcome = rediscover(None, _scenario("base"))
        assert outcome.full_reuse is False
        assert outcome.invalidated_stages == STAGE_NAMES

    def test_report_is_json_friendly(self):
        previous = _scenario("base").run()
        report = rediscover(previous, _scenario("base")).report()
        assert report["full_reuse"] is True
        assert report["unchanged_stages"] == list(STAGE_NAMES)
        assert report["invalidated_stages"] == []
        assert report["candidates"] >= 1
        assert report["elapsed_seconds"] >= 0


class TestRediscoverMany:
    def test_each_scenario_compared_to_its_own_previous(self):
        base = _scenario("a").run()
        outcomes = rediscover_many(
            {"a": base},
            [_scenario("a"), _scenario("b", edited=True)],
        )
        by_id = dict(outcomes)
        assert set(by_id) == {"a", "b"}
        assert by_id["a"].full_reuse is True
        assert by_id["b"].full_reuse is False

    def test_missing_previous_runs_warm_with_empty_baseline(self):
        outcomes = rediscover_many({}, [_scenario("solo")])
        ((scenario_id, outcome),) = outcomes
        assert scenario_id == "solo"
        assert outcome.full_reuse is False
        assert len(outcome.result.candidates) >= 1
