"""End-to-end tests: the paper's worked examples through the full pipeline."""

import pytest

from repro.discovery import SemanticMapper, discover_mappings
from repro.exceptions import DiscoveryError
from repro.queries.parser import parse_query
from repro.queries.homomorphism import are_equivalent


def boolean(query):
    from repro.queries.conjunctive import ConjunctiveQuery

    return ConjunctiveQuery([], query.body, query.name)


def source_tables(candidate):
    return sorted({a.bare_predicate for a in candidate.source_query.body})


def target_tables(candidate):
    return sorted({a.bare_predicate for a in candidate.target_query.body})


class TestBookstoreExample:
    """Examples 1.1 / 3.2 / 3.4: the M5 composition must be found."""

    @pytest.fixture(scope="class")
    def result(self, bookstore):
        return discover_mappings(
            bookstore.source, bookstore.target, bookstore.correspondences
        )

    def test_single_candidate(self, result):
        assert len(result) == 1

    def test_m5_source_tables(self, result):
        assert source_tables(result.best()) == [
            "bookstore",
            "person",
            "soldat",
            "writes",
        ]

    def test_m5_target_is_hasbooksoldat(self, result):
        assert target_tables(result.best()) == ["hasbooksoldat"]

    def test_m5_shape(self, result):
        expected = parse_query(
            "ans(v1, v2) :- person(v1), writes(v1, y), soldat(y, v2), "
            "bookstore(v2)"
        )
        assert are_equivalent(result.best().source_query, expected)

    def test_covers_both_correspondences(self, result, bookstore):
        assert set(result.best().covered) == set(bookstore.correspondences)

    def test_fast(self, result):
        assert result.elapsed_seconds < 1.0


class TestEmployeeExample:
    """Example 1.2: merge ISA siblings through the invisible superclass."""

    @pytest.fixture(scope="class")
    def result(self, employee):
        return discover_mappings(
            employee.source, employee.target, employee.correspondences
        )

    def test_single_candidate(self, result):
        assert len(result) == 1

    def test_merges_programmer_and_engineer(self, result):
        assert source_tables(result.best()) == ["engineer", "programmer"]

    def test_join_is_on_shared_key(self, result):
        source = result.best().source_query
        engineer = next(
            a for a in source.body if a.bare_predicate == "engineer"
        )
        programmer = next(
            a for a in source.body if a.bare_predicate == "programmer"
        )
        assert engineer.terms[0] == programmer.terms[0]

    def test_covers_all_four_correspondences(self, result, employee):
        assert len(result.best().covered) == 4

    def test_disjoint_subclasses_eliminate_merge(self, employee_disjoint):
        result = discover_mappings(
            employee_disjoint.source,
            employee_disjoint.target,
            employee_disjoint.correspondences,
        )
        # The merging candidate denotes the empty class and must go;
        # whatever remains must not join programmer with engineer.
        for candidate in result:
            assert source_tables(candidate) != ["engineer", "programmer"]


class TestPartOfExample:
    """Example 1.3: partOf semantics disambiguate chairOf from deanOf."""

    def test_partof_target_keeps_only_chairof(self, partof):
        result = discover_mappings(
            partof.source, partof.target, partof.correspondences
        )
        assert len(result) == 1
        assert "chairof" in source_tables(result.best())
        assert "deanof" not in source_tables(result.best())

    def test_plain_target_keeps_both(self, partof_plain):
        result = discover_mappings(
            partof_plain.source,
            partof_plain.target,
            partof_plain.correspondences,
        )
        tables = [source_tables(c) for c in result]
        assert any("chairof" in t for t in tables)
        assert any("deanof" in t for t in tables)
        assert len(result) == 2


class TestProjectExample:
    """Example 3.1: Case A.1 anchored functional tree."""

    @pytest.fixture(scope="class")
    def result(self, project):
        return discover_mappings(
            project.source, project.target, project.correspondences
        )

    def test_single_candidate(self, result):
        assert len(result) == 1

    def test_composed_functional_join(self, result):
        expected = parse_query(
            "ans(v1, v2, v3) :- controlledby(v1, v2), hasmanager(v2, v3)"
        )
        assert are_equivalent(result.best().source_query, expected)

    def test_target_is_proj_table(self, result):
        assert target_tables(result.best()) == ["proj"]

    def test_covers_all_three(self, result):
        assert len(result.best().covered) == 3


class TestHypotheticalFunctionalTarget:
    """Example 1.1's thought experiment: a functional hasBookSoldAt must
    reject the many-many composition."""

    def test_incompatible_target_yields_partial_mappings_only(self):
        from repro.cm import ConceptualModel
        from repro.correspondences import CorrespondenceSet
        from repro.datasets.paper_examples import bookstore_example
        from repro.semantics import design_schema

        bookstore = bookstore_example()
        target_cm = ConceptualModel("books_target")
        target_cm.add_class("Author", attributes=["aname"], key=["aname"])
        target_cm.add_class("Bookstore", attributes=["sid"], key=["sid"])
        # Upper bound 1: each author sells at a single bookstore.
        target_cm.add_relationship(
            "hasBookSoldAt", "Author", "Bookstore", "0..1", "0..*"
        )
        target = design_schema(target_cm, "target", merge_functional=False)
        corrs = CorrespondenceSet.parse(
            [
                "person.pname <-> hasbooksoldat.aname",
                "bookstore.sid <-> hasbooksoldat.sid",
            ]
        )
        result = discover_mappings(bookstore.source, target.semantics, corrs)
        # No candidate may pair both correspondences via the composition.
        for candidate in result:
            assert len(candidate.covered) < 2


class TestMapperValidation:
    def test_dangling_correspondences_rejected(self, bookstore, project):
        with pytest.raises(Exception):
            SemanticMapper(
                bookstore.source, project.target, bookstore.correspondences
            )

    def test_result_iteration_and_best(self, bookstore):
        result = discover_mappings(
            bookstore.source, bookstore.target, bookstore.correspondences
        )
        assert list(result)[0] is result.best()
        assert len(result) >= 1

    def test_deterministic_output(self, bookstore):
        first = discover_mappings(
            bookstore.source, bookstore.target, bookstore.correspondences
        )
        second = discover_mappings(
            bookstore.source, bookstore.target, bookstore.correspondences
        )
        assert [str(c) for c in first] == [str(c) for c in second]


class TestTGDRendering:
    def test_m5_renders_like_the_paper(self, bookstore):
        result = discover_mappings(
            bookstore.source, bookstore.target, bookstore.correspondences
        )
        text = result.best().to_tgd("M5").render()
        assert text.startswith("M5: ∀")
        assert "person(v1)" in text
        assert "hasbooksoldat(v1, v2)" in text
        assert "∃" not in text  # complete target tuple: no existentials
