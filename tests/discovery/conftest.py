"""Shared fixtures for discovery tests: the paper's worked examples."""

import pytest

from repro.datasets.paper_examples import (
    bookstore_example,
    employee_example,
    partof_example,
    project_example,
)


@pytest.fixture(scope="module")
def bookstore():
    return bookstore_example()


@pytest.fixture(scope="module")
def employee():
    return employee_example()


@pytest.fixture(scope="module")
def employee_disjoint():
    return employee_example(disjoint_subclasses=True)


@pytest.fixture(scope="module")
def partof():
    return partof_example()


@pytest.fixture(scope="module")
def partof_plain():
    return partof_example(target_is_partof=False)


@pytest.fixture(scope="module")
def project():
    return project_example()
