"""Unit tests for CSG → query translation."""

import pytest

from repro.datasets.paper_examples import bookstore_example, employee_example
from repro.discovery import (
    csg_from_table,
    csg_to_cm_query,
    correspondence_variable,
    find_target_csgs,
    translate_csg,
)
from repro.exceptions import DiscoveryError
from repro.queries.conjunctive import Variable


def lifted(scenario):
    return scenario.correspondences.lift(scenario.source, scenario.target)


class TestCorrespondenceVariable:
    def test_one_indexed(self):
        assert correspondence_variable(0) == "v1"
        assert correspondence_variable(9) == "v10"


class TestCsgToCmQuery:
    def test_bookstore_target_encoding(self):
        scenario = bookstore_example()
        items = lifted(scenario)
        csg = find_target_csgs(scenario.target, items)[0]
        query = csg_to_cm_query(csg, items, "target", scenario.target)
        rendered = {str(a) for a in query.body}
        assert "O:hasBookSoldAt(v1, v2)" in rendered
        assert query.head_terms == (Variable("v1"), Variable("v2"))

    def test_shared_attribute_shares_variable(self):
        scenario = employee_example()
        items = lifted(scenario)
        csg = find_target_csgs(scenario.target, items)[0]
        query = csg_to_cm_query(csg, items, "target", scenario.target)
        # programmer.name and engineer.name both map to Employee.name:
        # positions 0 and 2 of the head share v1.
        assert query.head_terms[0] == query.head_terms[2]

    def test_uncovered_class_rejected(self):
        scenario = bookstore_example()
        items = lifted(scenario)
        source_csg = csg_from_table(
            scenario.source, "person", items[:1], "source"
        )
        with pytest.raises(DiscoveryError):
            csg_to_cm_query(source_csg, items, "source", scenario.source)

    def test_bad_side_rejected(self):
        scenario = bookstore_example()
        items = lifted(scenario)
        csg = find_target_csgs(scenario.target, items)[0]
        with pytest.raises(DiscoveryError):
            csg_to_cm_query(csg, items, "sideways", scenario.target)


class TestTranslateCsg:
    def test_required_tables_enforced(self):
        scenario = bookstore_example()
        items = lifted(scenario)
        csg = find_target_csgs(scenario.target, items)[0]
        queries = translate_csg(csg, items, "target", scenario.target)
        assert len(queries) == 1
        assert {a.bare_predicate for a in queries[0].body} == {
            "hasbooksoldat"
        }

    def test_without_required_tables_more_general(self):
        scenario = bookstore_example()
        items = lifted(scenario)
        csg = find_target_csgs(scenario.target, items)[0]
        queries = translate_csg(
            csg,
            items,
            "target",
            scenario.target,
            require_correspondence_tables=False,
        )
        assert queries  # the same maximal rewriting survives

    def test_single_correspondence_gives_existential_target(self):
        scenario = bookstore_example()
        items = lifted(scenario)[:1]  # only person.pname ↔ aname
        csg = csg_from_table(
            scenario.target, "hasbooksoldat", items, "target"
        )
        (query,) = translate_csg(csg, items, "target", scenario.target)
        # M3's shape: hasbooksoldat(v1, x) with x existential.
        atom = query.body[0]
        assert atom.bare_predicate == "hasbooksoldat"
        assert atom.terms[0] == Variable("v1")
        assert query.existential_variables()
