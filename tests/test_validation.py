"""Unit and property tests for ``repro.validation``."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cm.model import ConceptualModel
from repro.correspondences import CorrespondenceSet
from repro.datasets.paper_examples import (
    bookstore_example,
    employee_example,
    partof_example,
    project_example,
)
from repro.discovery import Scenario, SemanticMapper
from repro.exceptions import ValidationError
from repro.relational.constraints import ReferentialConstraint
from repro.relational.schema import Table
from repro.semantics.lav import SchemaSemantics
from repro.semantics.stree import SemanticTree
from repro.validation import (
    Diagnostic,
    ValidationReport,
    validate_correspondences,
    validate_pair,
    validate_scenario,
    validate_schema,
    validate_semantics,
)


@pytest.fixture(scope="module")
def bookstore():
    return bookstore_example()


# ---------------------------------------------------------------------------
# Report mechanics
# ---------------------------------------------------------------------------
class TestValidationReport:
    def test_empty_report_is_ok(self):
        report = ValidationReport()
        assert report.ok
        assert report.render() == ""
        assert report.raise_if_errors() is report

    def test_errors_and_warnings_split(self):
        report = ValidationReport()
        report.warning("w.code", "just a warning")
        report.error("e.code", "a real problem", "here")
        assert not report.ok
        assert len(report.warnings) == 1
        assert len(report.errors) == 1
        assert "e.code [here]" in str(report.errors[0])

    def test_raise_if_errors_carries_diagnostics(self):
        report = ValidationReport()
        report.error("e.one", "first")
        report.error("e.two", "second")
        with pytest.raises(ValidationError) as exc_info:
            report.raise_if_errors()
        assert "2 validation error(s)" in str(exc_info.value)
        assert len(exc_info.value.diagnostics) == 2
        assert isinstance(exc_info.value.diagnostics[0], Diagnostic)

    def test_warnings_do_not_raise(self):
        report = ValidationReport()
        report.warning("w.code", "heads up")
        report.raise_if_errors()


# ---------------------------------------------------------------------------
# Input checks
# ---------------------------------------------------------------------------
class TestValidInputsPass:
    def test_bookstore_pair_is_clean(self, bookstore):
        report = validate_pair(
            bookstore.source, bookstore.target, bookstore.correspondences
        )
        assert report.ok
        assert not report.warnings

    def test_scenario_wrapper_tags_scenario_id(self, bookstore):
        scenario = Scenario.create(
            "demo",
            bookstore.source,
            bookstore.target,
            CorrespondenceSet(),
        )
        report = validate_scenario(scenario)
        assert report.ok  # empty set is only a warning
        (warning,) = report.warnings
        assert warning.code == "correspondence.empty"
        assert warning.location.startswith("demo")


class TestCorrespondenceChecks:
    def test_dangling_column_is_error(self, bookstore):
        bad = CorrespondenceSet.parse(["person.ghost <-> hasbooksoldat.aname"])
        report = validate_correspondences(
            bad, bookstore.source, bookstore.target
        )
        codes = [d.code for d in report.errors]
        assert codes == ["correspondence.source-column"]

    def test_table_without_semantics_is_error(self, bookstore):
        # Simulate a loader that grew the schema after building semantics:
        # the column exists, but no s-tree can lift it.
        bookstore.source.schema.add_table(Table("orphan", ["c"]))
        try:
            bad = CorrespondenceSet.parse(["orphan.c <-> hasbooksoldat.aname"])
            report = validate_correspondences(
                bad, bookstore.source, bookstore.target
            )
            codes = [d.code for d in report.errors]
            assert codes == ["correspondence.source-semantics"]
        finally:
            del bookstore.source.schema._tables["orphan"]

    def test_empty_set_is_warning_only(self, bookstore):
        report = validate_correspondences(
            CorrespondenceSet(), bookstore.source, bookstore.target
        )
        assert report.ok
        assert [d.code for d in report.warnings] == ["correspondence.empty"]

    def test_mapper_init_raises_validation_error(self, bookstore):
        bad = CorrespondenceSet.parse(["person.ghost <-> hasbooksoldat.aname"])
        with pytest.raises(ValidationError) as exc_info:
            SemanticMapper(bookstore.source, bookstore.target, bad)
        assert any(
            d.code == "correspondence.source-column"
            for d in exc_info.value.diagnostics
        )


class TestSchemaChecks:
    def test_ric_naming_missing_table_is_error(self, bookstore):
        schema = bookstore.source.schema
        bogus = ReferentialConstraint("ghost", ["x"], "person", ["pname"])
        schema._rics.append(bogus)  # simulate loader corruption
        try:
            report = validate_schema(schema)
            assert [d.code for d in report.errors] == ["ric.table"]
        finally:
            schema._rics.remove(bogus)

    def test_ric_naming_missing_column_is_error(self, bookstore):
        schema = bookstore.source.schema
        bogus = ReferentialConstraint("person", ["ghost"], "person", ["pname"])
        schema._rics.append(bogus)
        try:
            report = validate_schema(schema)
            assert [d.code for d in report.errors] == ["ric.column"]
        finally:
            schema._rics.remove(bogus)

    def test_clean_schema_passes(self, bookstore):
        assert validate_schema(bookstore.source.schema).ok


class TestSTreeChecks:
    def _semantics_with_foreign_edge(self):
        """An s-tree built against a richer CM than its schema's graph."""
        rich = ConceptualModel("rich")
        rich.add_class("Person", attributes=["pname"], key=["pname"])
        rich.add_class("Book", attributes=["bid"], key=["bid"])
        rich.add_relationship("writes", "Person", "Book", "0..*", "1..*")
        poor = ConceptualModel("poor")
        poor.add_class("Person", attributes=["pname"], key=["pname"])
        poor.add_class("Book", attributes=["bid"], key=["bid"])
        # no 'writes' relationship in the poor model
        from repro.cm.graph import CMGraph

        tree = SemanticTree.build(
            CMGraph(rich),
            "Person",
            edges=[("Person", "writes", "Book")],
            columns={"pname": "Person.pname", "bid": "Book.bid"},
        )
        from repro.relational.schema import RelationalSchema

        schema = RelationalSchema(
            "s", [Table("writes", ["pname", "bid"], ["pname", "bid"])]
        )
        return SchemaSemantics(schema, CMGraph(poor), {"writes": tree})

    def test_stree_edge_outside_cm_graph_is_error(self):
        semantics = self._semantics_with_foreign_edge()
        report = validate_semantics(semantics)
        assert not report.ok
        assert "stree.edge" in [d.code for d in report.errors]

    def test_clean_semantics_pass(self, bookstore):
        assert validate_semantics(bookstore.source).ok
        assert validate_semantics(bookstore.target).ok


# ---------------------------------------------------------------------------
# Property: every valid generated scenario validates cleanly
# ---------------------------------------------------------------------------
_EXAMPLES = {
    "bookstore": bookstore_example(),
    "employee": employee_example(),
    "partof": partof_example(),
    "project": project_example(),
}


@settings(max_examples=60, deadline=None)
@given(
    name=st.sampled_from(sorted(_EXAMPLES)),
    picks=st.sets(st.integers(min_value=0, max_value=31), min_size=1),
)
def test_validation_accepts_every_generated_valid_scenario(name, picks):
    """Any nonempty subset of a valid example's correspondences, over the
    example's own semantics, must validate without errors."""
    example = _EXAMPLES[name]
    items = list(example.correspondences)
    chosen = sorted({index % len(items) for index in picks})
    subset = CorrespondenceSet(items[index] for index in chosen)
    scenario = Scenario.create(
        f"gen-{name}", example.source, example.target, subset
    )
    report = validate_scenario(scenario)
    assert report.ok, report.render()
    assert not report.warnings
