"""Unit tests for correspondence seeding and type affinity."""

import pytest

from repro.exceptions import IngestError
from repro.ingest import (
    parse_correspondence_lines,
    seed_correspondences,
    type_affinity,
)
from repro.ingest.correspond import TYPE_MISMATCH_PENALTY


class TestTypeAffinity:
    @pytest.mark.parametrize(
        "declared, affinity",
        [
            ("INTEGER", "integer"),
            ("int", "integer"),
            ("BIGINT", "integer"),
            ("VARCHAR(80)", "text"),
            ("TEXT", "text"),
            ("CLOB", "text"),
            ("BLOB", "blob"),
            ("REAL", "real"),
            ("DOUBLE PRECISION", "real"),
            ("FLOAT", "real"),
            ("DECIMAL(10,2)", "numeric"),
            ("DATE", "numeric"),
            ("", "blob"),
        ],
    )
    def test_sqlite_affinity_rules(self, declared, affinity):
        assert type_affinity(declared) == affinity

    def test_first_rule_wins(self):
        # "CHARINT" contains both INT and CHAR; INT is checked first.
        assert type_affinity("CHARINT") == "integer"


class TestSeeding:
    def _sides(self):
        from repro.datasets.registry import load_dataset

        pair = load_dataset("DBLP")
        return pair.source, pair.target

    def test_suggestions_carry_scores_and_reasons(self):
        source, target = self._sides()
        suggestions = seed_correspondences(source, target, threshold=0.75)
        assert suggestions
        for suggestion in suggestions:
            assert suggestion.score >= 0.75
            assert suggestion.reason

    def test_type_mismatch_penalty_demotes(self):
        source, target = self._sides()
        baseline = seed_correspondences(source, target, threshold=0.0)
        chosen = baseline[0].correspondence
        source_types = {
            chosen.source.table: {chosen.source.name: "INTEGER"}
        }
        target_types = {
            chosen.target.table: {chosen.target.name: "VARCHAR(80)"}
        }
        penalized = seed_correspondences(
            source,
            target,
            source_types=source_types,
            target_types=target_types,
            threshold=0.0,
        )
        by_corr = {
            str(s.correspondence): s.score for s in penalized
        }
        assert by_corr[str(chosen)] == pytest.approx(
            baseline[0].score * TYPE_MISMATCH_PENALTY
        )
        assert "affinity mismatch" in next(
            s.reason
            for s in penalized
            if str(s.correspondence) == str(chosen)
        )

    def test_threshold_applies_after_penalty(self):
        source, target = self._sides()
        baseline = seed_correspondences(source, target, threshold=0.0)
        chosen = baseline[0]
        threshold = chosen.score * 0.9  # above the penalized score
        penalized = seed_correspondences(
            source,
            target,
            source_types={
                chosen.correspondence.source.table: {
                    chosen.correspondence.source.name: "INTEGER"
                }
            },
            target_types={
                chosen.correspondence.target.table: {
                    chosen.correspondence.target.name: "TEXT"
                }
            },
            threshold=threshold,
        )
        assert str(chosen.correspondence) not in {
            str(s.correspondence) for s in penalized
        }


class TestCorrespondenceFile:
    def test_parse_with_comments_and_blanks(self):
        parsed = parse_correspondence_lines(
            [
                "# authored by hand",
                "",
                "person.pname <-> author.aname",
                "  book.bid <-> pub.pid  ",
            ]
        )
        assert len(parsed) == 2
        assert str(parsed[0]) == "person.pname ↔ author.aname"

    def test_malformed_line_names_line_number(self):
        with pytest.raises(IngestError, match="line 3"):
            parse_correspondence_lines(
                ["# ok", "a.b <-> c.d", "not a correspondence"]
            )
