"""Unit tests for correspondence seeding, type categories, value overlap."""

import pytest

from repro.exceptions import IngestError
from repro.ingest import (
    parse_correspondence_lines,
    seed_correspondences,
    type_affinity,
    value_jaccard,
)
from repro.ingest.backends import dump_type_category
from repro.ingest.correspond import (
    MIN_VALUE_SAMPLE,
    TYPE_MISMATCH_PENALTY,
    VALUE_OVERLAP_WEIGHT,
)


class TestTypeAffinity:
    @pytest.mark.parametrize(
        "declared, affinity",
        [
            ("INTEGER", "integer"),
            ("int", "integer"),
            ("BIGINT", "integer"),
            ("VARCHAR(80)", "text"),
            ("TEXT", "text"),
            ("CLOB", "text"),
            ("BLOB", "blob"),
            ("REAL", "real"),
            ("DOUBLE PRECISION", "real"),
            ("FLOAT", "real"),
            ("DECIMAL(10,2)", "numeric"),
            ("DATE", "numeric"),
            ("", "blob"),
        ],
    )
    def test_sqlite_affinity_rules(self, declared, affinity):
        assert type_affinity(declared) == affinity

    def test_first_rule_wins(self):
        # "CHARINT" contains both INT and CHAR; INT is checked first.
        assert type_affinity("CHARINT") == "integer"


class TestSeeding:
    def _sides(self):
        from repro.datasets.registry import load_dataset

        pair = load_dataset("DBLP")
        return pair.source, pair.target

    def test_suggestions_carry_scores_and_reasons(self):
        source, target = self._sides()
        suggestions = seed_correspondences(source, target, threshold=0.75)
        assert suggestions
        for suggestion in suggestions:
            assert suggestion.score >= 0.75
            assert suggestion.reason

    def test_type_mismatch_penalty_demotes(self):
        source, target = self._sides()
        baseline = seed_correspondences(source, target, threshold=0.0)
        chosen = baseline[0].correspondence
        source_types = {
            chosen.source.table: {chosen.source.name: "INTEGER"}
        }
        target_types = {
            chosen.target.table: {chosen.target.name: "VARCHAR(80)"}
        }
        penalized = seed_correspondences(
            source,
            target,
            source_types=source_types,
            target_types=target_types,
            threshold=0.0,
        )
        by_corr = {
            str(s.correspondence): s.score for s in penalized
        }
        assert by_corr[str(chosen)] == pytest.approx(
            baseline[0].score * TYPE_MISMATCH_PENALTY
        )
        assert "type category mismatch" in next(
            s.reason
            for s in penalized
            if str(s.correspondence) == str(chosen)
        )

    def test_threshold_applies_after_penalty(self):
        source, target = self._sides()
        baseline = seed_correspondences(source, target, threshold=0.0)
        chosen = baseline[0]
        threshold = chosen.score * 0.9  # above the penalized score
        penalized = seed_correspondences(
            source,
            target,
            source_types={
                chosen.correspondence.source.table: {
                    chosen.correspondence.source.name: "INTEGER"
                }
            },
            target_types={
                chosen.correspondence.target.table: {
                    chosen.correspondence.target.name: "TEXT"
                }
            },
            threshold=threshold,
        )
        assert str(chosen.correspondence) not in {
            str(s.correspondence) for s in penalized
        }


class TestCategoryMatrix:
    """The penalty keys on *categories*, so it must agree across the
    SQLite and dump backends' dialect vocabularies."""

    # (sqlite declared, dump declared, same category?)
    MATRIX = [
        ("INTEGER", "bigint", True),
        ("INTEGER", "serial", True),
        ("VARCHAR(80)", "character varying(80)", True),
        ("TEXT", "uuid", True),
        ("REAL", "double precision", True),
        ("BLOB", "bytea", True),
        ("INTEGER", "text", False),
        ("TEXT", "numeric(10,2)", False),
        ("REAL", "bytea", False),
    ]

    @pytest.mark.parametrize("sqlite_type, dump_type, same", MATRIX)
    def test_cross_backend_categories(self, sqlite_type, dump_type, same):
        assert (
            type_affinity(sqlite_type) == dump_type_category(dump_type)
        ) is same

    def _seed_with_types(self, source_kwargs):
        from repro.datasets.registry import load_dataset

        pair = load_dataset("DBLP")
        baseline = seed_correspondences(
            pair.source, pair.target, threshold=0.0
        )
        chosen = baseline[0].correspondence
        penalized = seed_correspondences(
            pair.source, pair.target, threshold=0.0, **source_kwargs(chosen)
        )
        score = next(
            s.score
            for s in penalized
            if str(s.correspondence) == str(chosen)
        )
        return baseline[0].score, score

    @pytest.mark.parametrize(
        "source_type, target_type, penalized",
        [
            # categories agree across dialect spellings: no penalty
            ("INTEGER", "bigint", False),
            ("VARCHAR(80)", "character varying(80)", False),
            # categories disagree: penalty
            ("INTEGER", "character varying(80)", True),
            ("REAL", "text", True),
        ],
    )
    def test_penalty_tracks_categories(
        self, source_type, target_type, penalized
    ):
        base, score = self._seed_with_types(
            lambda chosen: {
                "source_types": {
                    chosen.source.table: {chosen.source.name: source_type}
                },
                "target_types": {
                    chosen.target.table: {chosen.target.name: target_type}
                },
            }
        )
        expected = base * TYPE_MISMATCH_PENALTY if penalized else base
        assert score == pytest.approx(expected)

    def test_backend_category_map_overrides_affinity(self):
        # "interval" would hit SQLite's INT affinity rule; the dump
        # backend's category map says temporal, and when it is passed
        # through the penalty must fire against an integer column.
        assert type_affinity("interval") == "integer"
        assert dump_type_category("interval") == "temporal"
        base, score = self._seed_with_types(
            lambda chosen: {
                "source_types": {
                    chosen.source.table: {chosen.source.name: "INTEGER"}
                },
                "target_types": {
                    chosen.target.table: {chosen.target.name: "interval"}
                },
                "target_categories": {
                    chosen.target.table: {chosen.target.name: "temporal"}
                },
            }
        )
        assert score == pytest.approx(base * TYPE_MISMATCH_PENALTY)


class TestValueOverlap:
    def test_jaccard_basics(self):
        assert value_jaccard(["a", "b"], ["a", "b"]) == 1.0
        assert value_jaccard(["a", "b"], ["c", "d"]) == 0.0
        assert value_jaccard(["a", "b", "c"], ["b", "c", "d"]) == 0.5
        assert value_jaccard([], []) == 0.0

    def test_jaccard_normalizes_across_backends(self):
        # SQLite returns typed values; the dump parser returns what it
        # coerced — 1 and 1.0 and case variants must collide.
        assert value_jaccard([1, 2], [1.0, 2.0]) == 1.0
        assert value_jaccard(["Alice"], ["alice "]) == 1.0

    def test_jaccard_ignores_nulls(self):
        assert value_jaccard(["a", None], ["a", None, None]) == 1.0

    def _seed_with_values(self, source_vals, target_vals):
        from repro.datasets.registry import load_dataset

        pair = load_dataset("DBLP")
        baseline = seed_correspondences(
            pair.source, pair.target, threshold=0.0
        )
        chosen = baseline[0].correspondence
        adjusted = seed_correspondences(
            pair.source,
            pair.target,
            threshold=0.0,
            source_values={
                chosen.source.table: {chosen.source.name: source_vals}
            },
            target_values={
                chosen.target.table: {chosen.target.name: target_vals}
            },
        )
        suggestion = next(
            s
            for s in adjusted
            if str(s.correspondence) == str(chosen)
        )
        return baseline[0], suggestion

    def test_disjoint_values_penalize(self):
        base, adjusted = self._seed_with_values(
            ["a", "b", "c"], ["x", "y", "z"]
        )
        assert adjusted.score == pytest.approx(
            base.score * (1.0 - VALUE_OVERLAP_WEIGHT)
        )
        assert "value overlap 0.00" in adjusted.reason

    def test_identical_values_cost_nothing(self):
        base, adjusted = self._seed_with_values(
            ["a", "b", "c"], ["a", "b", "c"]
        )
        assert adjusted.score == pytest.approx(base.score)
        assert "value overlap 1.00" in adjusted.reason

    def test_small_samples_say_nothing(self):
        values = ["a"] * (MIN_VALUE_SAMPLE - 1)
        base, adjusted = self._seed_with_values(values, ["x", "y", "z"])
        assert adjusted.score == pytest.approx(base.score)
        assert "value overlap" not in adjusted.reason


class TestCorrespondenceFile:
    def test_parse_with_comments_and_blanks(self):
        parsed = parse_correspondence_lines(
            [
                "# authored by hand",
                "",
                "person.pname <-> author.aname",
                "  book.bid <-> pub.pid  ",
            ]
        )
        assert len(parsed) == 2
        assert str(parsed[0]) == "person.pname ↔ author.aname"

    def test_malformed_line_names_line_number(self):
        with pytest.raises(IngestError, match="line 3"):
            parse_correspondence_lines(
                ["# ok", "a.b <-> c.d", "not a correspondence"]
            )
