"""Unit tests for the pg_dump/mysqldump catalog backend."""

import pytest

from repro.exceptions import IngestError
from repro.ingest import DumpBackend, detect_backend, introspect_backend
from repro.ingest.backends import dump_type_category, looks_like_dump


PG_DUMP = """\
--
-- PostgreSQL database dump
--

SET statement_timeout = 0;
SET client_encoding = 'UTF8';

CREATE TABLE public.person (
    pname character varying(80) NOT NULL,
    age integer,
    bio text
);

ALTER TABLE public.person OWNER TO admin;

CREATE TABLE public.book (
    bid integer NOT NULL,
    title text,
    author character varying(80)
);

COPY public.person (pname, age, bio) FROM stdin;
Alice\t34\tlikes \\t tabs
Bob\t\\N\t\\N
\\.

COPY public.book (bid, title, author) FROM stdin;
1\tDatabases\tAlice
2\tCompilers\tBob
\\.

ALTER TABLE ONLY public.person
    ADD CONSTRAINT person_pkey PRIMARY KEY (pname);

ALTER TABLE ONLY public.book
    ADD CONSTRAINT book_pkey PRIMARY KEY (bid);

ALTER TABLE ONLY public.book
    ADD CONSTRAINT book_author_fkey FOREIGN KEY (author)
    REFERENCES public.person (pname);

CREATE UNIQUE INDEX book_title_key ON public.book USING btree (title);
"""

MYSQL_DUMP = """\
-- MySQL dump 10.13

LOCK TABLES `person` WRITE;
CREATE TABLE `person` (
  `pname` varchar(80) NOT NULL,
  `age` int DEFAULT NULL,
  PRIMARY KEY (`pname`),
  UNIQUE KEY `person_age` (`age`),
  KEY `person_age_idx` (`age`)
) ENGINE=InnoDB DEFAULT CHARSET=utf8mb4;

CREATE TABLE `book` (
  `bid` int NOT NULL AUTO_INCREMENT,
  `author` varchar(80) DEFAULT NULL,
  PRIMARY KEY (`bid`),
  CONSTRAINT `book_fk` FOREIGN KEY (`author`) REFERENCES `person` (`pname`)
) ENGINE=InnoDB;

INSERT INTO `person` VALUES ('Alice',34),('Bob',NULL);
INSERT INTO `book` (`bid`, `author`) VALUES (1,'Alice');
UNLOCK TABLES;
"""


class TestPostgresDialect:
    @pytest.fixture
    def backend(self):
        return DumpBackend.from_text(PG_DUMP)

    def test_tables_in_declaration_order(self, backend):
        assert backend.list_tables() == ("person", "book")

    def test_columns_and_declared_types(self, backend):
        names = [c.name for c in backend.columns("person")]
        assert names == ["pname", "age", "bio"]
        by_name = {c.name: c.declared_type for c in backend.columns("person")}
        assert "character varying" in by_name["pname"]
        assert by_name["age"] == "integer"

    def test_alter_table_primary_key(self, backend):
        assert backend.primary_keys("person") == ("pname",)
        assert backend.primary_keys("book") == ("bid",)

    def test_alter_table_foreign_key(self, backend):
        (fk,) = backend.foreign_keys("book")
        assert fk.parent_table == "person"
        assert fk.column_pairs == (("author", "pname"),)

    def test_unique_index(self, backend):
        assert backend.unique_indexes("book") == (("title",),)

    def test_copy_rows_with_escapes_and_nulls(self, backend):
        rows = backend.sample_rows("person", ("pname", "age", "bio"), 10)
        assert ("Alice", 34, "likes \t tabs") in rows
        assert ("Bob", None, None) in rows

    def test_sample_rows_projects_and_limits(self, backend):
        rows = list(backend.sample_rows("book", ("title",), 1))
        assert rows in ([("Compilers",)], [("Databases",)])

    def test_no_diagnostics_on_clean_dump(self, backend):
        codes = {code for _, code, _, _ in backend.diagnostics()}
        assert "dump.statement-unparsed" not in codes


class TestMySQLDialect:
    @pytest.fixture
    def backend(self):
        return DumpBackend.from_text(MYSQL_DUMP)

    def test_backtick_identifiers(self, backend):
        assert backend.list_tables() == ("person", "book")
        assert [c.name for c in backend.columns("person")] == [
            "pname",
            "age",
        ]

    def test_inline_primary_and_unique_key(self, backend):
        assert backend.primary_keys("person") == ("pname",)
        assert backend.unique_indexes("person") == (("age",),)

    def test_inline_constraint_foreign_key(self, backend):
        (fk,) = backend.foreign_keys("book")
        assert fk.parent_table == "person"
        assert fk.column_pairs == (("author", "pname"),)

    def test_insert_values_multi_tuple(self, backend):
        rows = backend.sample_rows("person", ("pname", "age"), 10)
        assert ("Alice", 34) in rows
        assert ("Bob", None) in rows

    def test_insert_with_named_columns(self, backend):
        rows = list(backend.sample_rows("book", ("bid", "author"), 10))
        assert rows == [(1, "Alice")]


class TestTypeCategories:
    @pytest.mark.parametrize(
        "declared, category",
        [
            ("integer", "integer"),
            ("bigserial", "integer"),
            ("double precision", "real"),
            ("numeric(10,2)", "numeric"),
            ("money", "numeric"),
            ("boolean", "boolean"),
            ("tinyint(1)", "integer"),
            ("timestamp with time zone", "temporal"),
            ("interval", "temporal"),
            ("date", "temporal"),
            ("bytea", "blob"),
            ("varbinary(16)", "blob"),
            ("character varying(80)", "text"),
            ("uuid", "text"),
        ],
    )
    def test_category_rules(self, declared, category):
        assert dump_type_category(declared) == category


class TestDiagnosticsAndErrors:
    def test_empty_text_is_structured_error(self):
        with pytest.raises(IngestError, match="dump.empty"):
            DumpBackend.from_text("   \n  ")

    def test_sqlite_binary_refused(self):
        with pytest.raises(IngestError, match="dump.binary"):
            DumpBackend.from_text("SQLite format 3\x00garbage")

    def test_missing_file_is_structured_error(self, tmp_path):
        with pytest.raises(IngestError, match="dump.unreadable"):
            DumpBackend.from_path(str(tmp_path / "ghost.sql"))

    def test_binary_file_is_structured_error(self, tmp_path):
        path = tmp_path / "not-utf8.sql"
        path.write_bytes(b"\xff\xfe\x00\x01 CREATE TABLE t (a);")
        with pytest.raises(IngestError, match="dump.unreadable"):
            DumpBackend.from_path(str(path))

    def test_unparsed_statement_surfaces(self):
        backend = DumpBackend.from_text(
            "CREATE TABLE t (a integer);\n"
            "GRANT SELECT ON t TO public;\n"
            "FROBNICATE THE WHATSIT;\n"
        )
        codes = {code for _, code, _, _ in backend.diagnostics()}
        assert "dump.statement-skipped" in codes

    def test_data_for_unknown_table_reported(self):
        backend = DumpBackend.from_text(
            "CREATE TABLE t (a integer);\n"
            "INSERT INTO ghost VALUES (1);\n"
        )
        codes = {code for _, code, _, _ in backend.diagnostics()}
        assert "dump.data-unknown-table" in codes

    def test_check_constraint_ignored_with_diagnostic(self):
        backend = DumpBackend.from_text(
            "CREATE TABLE t (a integer, CHECK (a > 0));"
        )
        assert [c.name for c in backend.columns("t")] == ["a"]
        codes = {code for _, code, _, _ in backend.diagnostics()}
        assert "dump.constraint-ignored" in codes


class TestDetection:
    def test_pg_markers_detected(self):
        assert looks_like_dump(PG_DUMP)
        assert detect_backend(PG_DUMP) == "pgdump"

    def test_mysql_markers_detected(self):
        assert looks_like_dump(MYSQL_DUMP)
        assert detect_backend(MYSQL_DUMP) == "pgdump"

    def test_plain_sql_stays_sqlite(self):
        plain = "CREATE TABLE t (a TEXT PRIMARY KEY);\n"
        assert not looks_like_dump(plain)
        assert detect_backend(plain) == "sqlite"

    def test_sqlite_file_detected_by_magic(self, tmp_path):
        import sqlite3

        path = tmp_path / "live.db"
        conn = sqlite3.connect(str(path))
        conn.execute("CREATE TABLE t (a TEXT)")
        conn.commit()
        conn.close()
        assert detect_backend(str(path)) == "sqlite"

    def test_dump_file_detected_as_pgdump(self, tmp_path):
        path = tmp_path / "dump.sql"
        path.write_text(PG_DUMP, encoding="utf-8")
        assert detect_backend(str(path)) == "pgdump"


class TestIntrospectionParity:
    def test_dump_introspects_like_sqlite(self):
        from repro.ingest import connect_memory_from_sql, introspect_sqlite
        from repro.ingest.backends import SQLiteBackend

        sqlite_sql = (
            "CREATE TABLE person (pname TEXT PRIMARY KEY, age INTEGER);"
            "CREATE TABLE book (bid INTEGER PRIMARY KEY, title TEXT,"
            "   author TEXT REFERENCES person (pname));"
        )
        connection = connect_memory_from_sql(sqlite_sql)
        try:
            via_sqlite = introspect_sqlite(connection)
        finally:
            connection.close()
        via_dump = introspect_backend(DumpBackend.from_text(PG_DUMP))
        assert (
            via_dump.schema.table_names()
            == via_sqlite.schema.table_names()
            == ("person", "book")
        )
        assert [str(r) for r in via_dump.schema.rics] == [
            str(r) for r in via_sqlite.schema.rics
        ]
        for table in ("person", "book"):
            assert (
                via_dump.schema.table(table).primary_key
                == via_sqlite.schema.table(table).primary_key
            )

    def test_introspection_result_metadata(self):
        result = introspect_backend(DumpBackend.from_text(PG_DUMP))
        assert result.backend == "pgdump"
        assert result.type_categories["person"]["age"] == "integer"
        assert set(result.table_fingerprints) == {"person", "book"}
        assert result.catalog_fingerprint
