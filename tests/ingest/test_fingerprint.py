"""Property tests for per-table and whole-catalog fingerprints.

The incremental re-ingestion layer trusts
:meth:`CatalogBackend.catalog_fingerprint` for drift detection, so the
fingerprint must be *canonical*: invariant under presentation details
(table listing order, column order, type spelling within a category)
and sensitive to every semantic catalog change (columns, categories,
keys, unique indexes).
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.ingest.backends import CatalogBackend, ColumnDef, ForeignKeyDef
from repro.ingest.backends.pgdump import dump_type_category


class StaticBackend(CatalogBackend):
    """A catalog held in plain data structures, for property tests.

    ``tables`` maps table name to a dict with ``columns`` (list of
    ``(name, declared_type)``), optional ``pk`` (ordered column names),
    ``fks`` (list of ``(parent, [(child_col, parent_col), ...])``), and
    ``uniques`` (list of column-name lists).
    """

    name = "static"

    def __init__(self, tables):
        self._tables = tables

    def list_tables(self):
        return tuple(self._tables)

    def columns(self, table):
        spec = self._tables[table]
        pk = {name: i + 1 for i, name in enumerate(spec.get("pk", ()))}
        return tuple(
            ColumnDef(name, declared, pk.get(name, 0))
            for name, declared in spec["columns"]
        )

    def foreign_keys(self, table):
        return tuple(
            ForeignKeyDef(parent, tuple(tuple(p) for p in pairs))
            for parent, pairs in self._tables[table].get("fks", ())
        )

    def unique_indexes(self, table):
        return tuple(
            tuple(index) for index in self._tables[table].get("uniques", ())
        )

    def sample_rows(self, table, columns, limit):
        return []

    def type_category(self, declared_type):
        return dump_type_category(declared_type)


# Several spellings per category: the fingerprint must hash the
# *category*, not the raw declared type.
SPELLINGS = {
    "integer": ["int", "INTEGER", "bigint"],
    "text": ["text", "varchar(80)", "character varying"],
    "real": ["real", "double precision", "FLOAT"],
    "boolean": ["bool", "boolean"],
}

identifiers = st.text(
    alphabet="abcdefgh", min_size=1, max_size=6
).map(lambda s: "c_" + s)

category = st.sampled_from(sorted(SPELLINGS))


@st.composite
def catalogs(draw):
    n_tables = draw(st.integers(min_value=1, max_value=3))
    tables = {}
    for t in range(n_tables):
        names = draw(
            st.lists(
                identifiers, min_size=1, max_size=4, unique=True
            )
        )
        columns = [
            (name, draw(category)) for name in names
        ]  # store the *category*; spellings are drawn per-backend
        pk_size = draw(st.integers(min_value=0, max_value=len(names)))
        tables[f"t{t}"] = {
            "columns": columns,
            "pk": names[:pk_size],
            "uniques": [[names[-1]]] if draw(st.booleans()) else [],
        }
    return tables


def _spell(draw, tables):
    """Materialize a catalog spec with concrete type spellings."""
    return {
        name: {
            **spec,
            "columns": [
                (column, draw(st.sampled_from(SPELLINGS[cat])))
                for column, cat in spec["columns"]
            ],
        }
        for name, spec in tables.items()
    }


@st.composite
def spelled_pairs(draw):
    """Two backends over the same semantic catalog, presented differently:

    independent type spellings, shuffled table order, shuffled column
    order.
    """
    tables = draw(catalogs())
    first = _spell(draw, tables)
    second = _spell(draw, tables)
    table_order = draw(st.permutations(sorted(second)))
    shuffled = {}
    for name in table_order:
        spec = second[name]
        shuffled[name] = {
            **spec,
            "columns": draw(st.permutations(spec["columns"])),
            "uniques": [
                draw(st.permutations(index)) for index in spec["uniques"]
            ],
        }
    return first, shuffled


class TestCanonical:
    @settings(max_examples=60, deadline=None)
    @given(spelled_pairs())
    def test_stable_under_presentation(self, pair):
        first, second = pair
        a, b = StaticBackend(first), StaticBackend(second)
        assert a.catalog_fingerprint() == b.catalog_fingerprint()
        for table in first:
            assert a.catalog_fingerprint(table) == b.catalog_fingerprint(
                table
            )

    @settings(max_examples=60, deadline=None)
    @given(catalogs(), st.randoms())
    def test_changes_on_semantic_mutation(self, tables, rng):
        spec = {
            name: {
                **t,
                "columns": [
                    (c, SPELLINGS[cat][0]) for c, cat in t["columns"]
                ],
            }
            for name, t in tables.items()
        }
        baseline = StaticBackend(spec).catalog_fingerprint()
        victim = rng.choice(sorted(spec))
        mutated = {n: dict(t) for n, t in spec.items()}
        columns = list(mutated[victim]["columns"])
        mutation = rng.choice(["add", "rename", "retype", "unique"])
        if mutation == "add":
            columns.append(("c_zz_new", "int"))
            mutated[victim]["columns"] = columns
        elif mutation == "rename":
            name, declared = columns[0]
            columns[0] = (name + "_renamed", declared)
            mutated[victim]["columns"] = columns
            # keep the pk consistent if it named the renamed column
            mutated[victim]["pk"] = [
                c + "_renamed" if c == name else c
                for c in mutated[victim].get("pk", [])
            ]
        elif mutation == "retype":
            name, declared = columns[0]
            new_cat = (
                "text" if dump_type_category(declared) != "text" else "integer"
            )
            columns[0] = (name, SPELLINGS[new_cat][0])
            mutated[victim]["columns"] = columns
        else:
            mutated[victim]["uniques"] = list(
                mutated[victim].get("uniques", [])
            ) + [[c for c, _ in columns]]
        assert StaticBackend(mutated).catalog_fingerprint() != baseline
        assert (
            StaticBackend(mutated).catalog_fingerprint(victim)
            != StaticBackend(spec).catalog_fingerprint(victim)
        )


class TestCrossBackendExamples:
    def test_sqlite_and_dump_agree_on_equivalent_catalogs(self):
        """The same logical schema read through both backends
        fingerprints identically — categories, not dialect spellings,
        enter the hash."""
        from repro.ingest import DumpBackend, connect_memory_from_sql
        from repro.ingest.backends import SQLiteBackend

        connection = connect_memory_from_sql(
            "CREATE TABLE t (a INTEGER PRIMARY KEY, b TEXT);"
        )
        try:
            via_sqlite = SQLiteBackend(connection).catalog_fingerprint()
        finally:
            connection.close()
        dump = DumpBackend.from_text(
            "CREATE TABLE public.t (a int, b varchar(80));\n"
            "ALTER TABLE ONLY public.t\n"
            "    ADD CONSTRAINT t_pkey PRIMARY KEY (a);\n"
        )
        assert dump.catalog_fingerprint() == via_sqlite

    def test_pk_order_matters(self):
        base = {"t": {"columns": [("a", "int"), ("b", "int")]}}
        ab = {"t": {**base["t"], "pk": ["a", "b"]}}
        ba = {"t": {**base["t"], "pk": ["b", "a"]}}
        assert (
            StaticBackend(ab).catalog_fingerprint("t")
            != StaticBackend(ba).catalog_fingerprint("t")
        )

    def test_foreign_keys_enter_fingerprint(self):
        plain = {
            "p": {"columns": [("x", "int")], "pk": ["x"]},
            "c": {"columns": [("x", "int")]},
        }
        linked = {
            "p": plain["p"],
            "c": {**plain["c"], "fks": [("p", [("x", "x")])]},
        }
        assert (
            StaticBackend(plain).catalog_fingerprint("c")
            != StaticBackend(linked).catalog_fingerprint("c")
        )
