"""Tests for incremental re-ingestion (catalog drift → selective redo)."""

import sqlite3

import pytest

from repro.datasets.instances import generate_instance
from repro.datasets.registry import load_dataset
from repro.ingest import ingest_pair, materialize_sqlite, reingest_pair


@pytest.fixture
def hotel(tmp_path):
    pair = load_dataset("Hotel")
    paths = {}
    for name, side in (("source", pair.source), ("target", pair.target)):
        instance = generate_instance(side.schema, rows_per_table=3)
        path = str(tmp_path / f"{name}.db")
        materialize_sqlite(side.schema, path, instance=instance).close()
        paths[name] = path
    return pair, paths


@pytest.fixture
def cold(hotel):
    pair, paths = hotel
    return ingest_pair(
        paths["source"],
        paths["target"],
        pair.source.model,
        pair.target.model,
        correspondences=pair.cases[0].correspondences,
        scenario_id="hotel-reingest",
    )


class TestNoDrift:
    def test_everything_reused(self, hotel, cold):
        pair, paths = hotel
        report = reingest_pair(
            cold,
            paths["source"],
            paths["target"],
            pair.source.model,
            pair.target.model,
        )
        for drift in (report.source_drift, report.target_drift):
            assert drift.changed == ()
            assert drift.added == ()
            assert drift.removed == ()
            assert drift.dependents == ()
            assert drift.dirty == ()
        assert report.recovered_tables == 0
        # every table with semantics was adopted verbatim
        assert set(report.source_drift.reused) == set(
            cold.source.semantics.tables_with_semantics()
        )
        assert set(report.target_drift.reused) == set(
            cold.target.semantics.tables_with_semantics()
        )

    def test_rediscovery_fully_replays(self, hotel, cold):
        pair, paths = hotel
        previous_result = cold.scenario.run()
        report = reingest_pair(
            cold,
            paths["source"],
            paths["target"],
            pair.source.model,
            pair.target.model,
            previous_result=previous_result,
        )
        assert report.rediscovery is not None
        assert report.rediscovery.full_reuse
        assert report.mapping_diff is not None
        assert report.mapping_diff.is_empty

    def test_candidates_byte_identical_to_cold(self, hotel, cold):
        pair, paths = hotel
        cold_tgds = [str(c) for c in cold.scenario.run().candidates]
        report = reingest_pair(
            cold,
            paths["source"],
            paths["target"],
            pair.source.model,
            pair.target.model,
            run=True,
        )
        warm_tgds = [
            str(c) for c in report.rediscovery.result.candidates
        ]
        assert warm_tgds == cold_tgds


class TestOneTableDrift:
    def _drift_guest(self, paths):
        connection = sqlite3.connect(paths["source"])
        connection.execute(
            'CREATE UNIQUE INDEX guest_gname ON "guest" ("gname")'
        )
        connection.commit()
        connection.close()

    def test_only_drifted_table_and_dependents_redone(self, hotel, cold):
        pair, paths = hotel
        self._drift_guest(paths)
        report = reingest_pair(
            cold,
            paths["source"],
            paths["target"],
            pair.source.model,
            pair.target.model,
        )
        assert report.source_drift.changed == ("guest",)
        # booking.gid -> guest.gid resolves through the drifted anchor
        assert report.source_drift.dependents == ("booking",)
        assert set(report.source_drift.dirty) == {"guest", "booking"}
        assert "guest" not in report.source_drift.reused
        assert "booking" not in report.source_drift.reused
        expected_reused = set(
            cold.source.semantics.tables_with_semantics()
        ) - {"guest", "booking"}
        assert set(report.source_drift.reused) == expected_reused
        # the untouched side reuses everything
        assert report.target_drift.dirty == ()
        assert set(report.target_drift.reused) == set(
            cold.target.semantics.tables_with_semantics()
        )

    def test_catalog_only_drift_keeps_discovery_warm(self, hotel, cold):
        # A unique index never enters the recovered semantics, so the
        # re-derived trees are equal and every discovery stage replays.
        pair, paths = hotel
        previous_result = cold.scenario.run()
        self._drift_guest(paths)
        report = reingest_pair(
            cold,
            paths["source"],
            paths["target"],
            pair.source.model,
            pair.target.model,
            previous_result=previous_result,
        )
        assert report.rediscovery is not None
        assert report.rediscovery.full_reuse
        assert report.mapping_diff.is_empty

    def test_added_table_recovers_without_reuse(self, hotel, cold):
        pair, paths = hotel
        connection = sqlite3.connect(paths["source"])
        connection.execute(
            'CREATE TABLE "annex" ("aid" TEXT PRIMARY KEY)'
        )
        connection.commit()
        connection.close()
        report = reingest_pair(
            cold,
            paths["source"],
            paths["target"],
            pair.source.model,
            pair.target.model,
        )
        assert report.source_drift.added == ("annex",)
        assert "annex" in report.source_drift.dirty
        assert report.source_drift.changed == ()

    def test_report_wire_and_describe(self, hotel, cold):
        pair, paths = hotel
        self._drift_guest(paths)
        report = reingest_pair(
            cold,
            paths["source"],
            paths["target"],
            pair.source.model,
            pair.target.model,
            run=True,
        )
        document = report.to_wire()
        assert document["source"]["changed"] == ["guest"]
        assert document["recovered_tables"] == 2
        assert "rediscovery" in document
        text = report.describe()
        assert "re-recovered" in text
        assert "guest" in text
