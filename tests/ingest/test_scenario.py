"""Integration tests for scenario assembly from live databases."""

import json

import pytest

from repro.datasets.instances import generate_instance
from repro.datasets.registry import load_dataset
from repro.discovery import discover_mappings
from repro.exceptions import IngestError
from repro.ingest import (
    ingest_pair,
    introspect_sqlite,
    materialize_sqlite,
    resolve_cm_argument,
    sample_instance,
)
from repro.mappings.serialize import dump_mapping_set


@pytest.fixture(scope="module")
def dblp_files(tmp_path_factory):
    """The DBLP pair materialized to real SQLite files with instances."""
    directory = tmp_path_factory.mktemp("dblp")
    pair = load_dataset("DBLP")
    paths = {}
    for name, side in (("source", pair.source), ("target", pair.target)):
        instance = generate_instance(side.schema, rows_per_table=3)
        path = str(directory / f"{name}.db")
        materialize_sqlite(side.schema, path, instance=instance).close()
        paths[name] = path
    return pair, paths


class TestRoundTripFidelity:
    def test_schema_reproduced_exactly(self, dblp_files):
        pair, paths = dblp_files
        introspection = introspect_sqlite(paths["source"])
        authored = pair.source.schema
        assert introspection.schema.table_names() == authored.table_names()
        for name in authored.table_names():
            assert (
                introspection.schema.table(name).columns
                == authored.table(name).columns
            )
            assert (
                introspection.schema.table(name).primary_key
                == authored.table(name).primary_key
            )
        assert [str(r) for r in introspection.schema.rics] == [
            str(r) for r in authored.rics
        ]

    def test_recovered_trees_match_authored_semantics(self, dblp_files):
        pair, paths = dblp_files
        ingested = ingest_pair(
            paths["source"],
            paths["target"],
            pair.source.model,
            pair.target.model,
            correspondences=pair.cases[0].correspondences,
        )
        for side, authored in (
            (ingested.source, pair.source),
            (ingested.target, pair.target),
        ):
            assert side.recovery.coverage() == 1.0
            for table_name in authored.tables_with_semantics():
                recovered_tree = side.semantics.tree(table_name)
                authored_tree = authored.tree(table_name)
                assert (
                    recovered_tree.anchor.cm_node
                    == authored_tree.anchor.cm_node
                ), table_name

    def test_discovery_byte_identical_to_authored_path(self, dblp_files):
        pair, paths = dblp_files
        for case in pair.cases:
            ingested = ingest_pair(
                paths["source"],
                paths["target"],
                pair.source.model,
                pair.target.model,
                scenario_id=case.case_id,
                correspondences=case.correspondences,
            )
            live = ingested.scenario.run()
            authored = discover_mappings(
                pair.source, pair.target, case.correspondences
            )
            assert dump_mapping_set(live.candidates) == dump_mapping_set(
                authored.candidates
            ), case.case_id

    def test_emitted_wire_spec_replays_identically(self, dblp_files):
        from repro.service.wire import scenario_from_wire

        pair, paths = dblp_files
        case = pair.cases[0]
        ingested = ingest_pair(
            paths["source"],
            paths["target"],
            pair.source.model,
            pair.target.model,
            scenario_id=case.case_id,
            correspondences=case.correspondences,
        )
        document = json.loads(json.dumps(ingested.to_wire()))
        replayed = scenario_from_wire(document).run()
        direct = ingested.scenario.run()
        assert dump_mapping_set(replayed.candidates) == dump_mapping_set(
            direct.candidates
        )

    def test_fingerprint_stable_across_ingestions(self, dblp_files):
        pair, paths = dblp_files
        case = pair.cases[0]
        kwargs = dict(
            scenario_id=case.case_id,
            correspondences=case.correspondences,
        )
        first = ingest_pair(
            paths["source"], paths["target"],
            pair.source.model, pair.target.model, **kwargs,
        )
        second = ingest_pair(
            paths["source"], paths["target"],
            pair.source.model, pair.target.model, **kwargs,
        )
        from repro.discovery.batch import scenario_fingerprint

        assert scenario_fingerprint(first.scenario) == scenario_fingerprint(
            second.scenario
        )


class TestSampling:
    def test_sampling_is_deterministic(self, dblp_files):
        _, paths = dblp_files
        introspection = introspect_sqlite(paths["source"])
        first = sample_instance(paths["source"], introspection, 5)
        second = sample_instance(paths["source"], introspection, 5)
        for table in introspection.schema.table_names():
            assert first.rows(table) == second.rows(table)
            assert len(first.rows(table)) <= 5

    def test_sample_rows_populates_instances(self, dblp_files):
        pair, paths = dblp_files
        ingested = ingest_pair(
            paths["source"],
            paths["target"],
            pair.source.model,
            pair.target.model,
            correspondences=pair.cases[0].correspondences,
            sample_rows=10,
        )
        assert ingested.source_instance is not None
        assert ingested.source_instance.size() > 0
        assert ingested.target_instance is not None

    def test_nonpositive_sample_refused(self, dblp_files):
        _, paths = dblp_files
        introspection = introspect_sqlite(paths["source"])
        with pytest.raises(IngestError):
            sample_instance(paths["source"], introspection, 0)


class TestDiagnosticsNeverSilent:
    def test_uninterpretable_table_reported_not_dropped(self, tmp_path):
        from repro.cm import ConceptualModel
        from repro.ingest import connect_memory_from_sql, recover_introspected

        cm = ConceptualModel("m")
        cm.add_class("Thing", attributes=["tid"], key=["tid"])
        connection = connect_memory_from_sql(
            "CREATE TABLE thing (tid TEXT PRIMARY KEY);"
            "CREATE TABLE mystery (blob1 TEXT PRIMARY KEY, blob2 TEXT);"
        )
        try:
            side = recover_introspected(introspect_sqlite(connection), cm)
        finally:
            connection.close()
        skipped = [
            d
            for d in side.validation.diagnostics
            if d.code == "ingest.recover.table-skipped"
        ]
        assert skipped, side.validation.render()
        assert "mystery" in skipped[0].location

    def test_strict_mode_turns_warnings_into_failure(self):
        from repro.cm import ConceptualModel
        from repro.ingest import connect_memory_from_sql, recover_introspected

        cm = ConceptualModel("m")
        cm.add_class("Thing", attributes=["tid"], key=["tid"])
        connection = connect_memory_from_sql(
            "CREATE TABLE thing (tid TEXT PRIMARY KEY);"
            "CREATE TABLE mystery (blob1 TEXT PRIMARY KEY);"
        )
        try:
            with pytest.raises(IngestError):
                recover_introspected(
                    introspect_sqlite(connection), cm, strict=True
                )
        finally:
            connection.close()


class TestCmResolution:
    def test_dataset_name_resolves_to_pair_models(self):
        source_model, target_model = resolve_cm_argument("DBLP")
        pair = load_dataset("DBLP")
        assert source_model.class_names() == pair.source.model.class_names()
        assert target_model.class_names() == pair.target.model.class_names()

    def test_json_file_shared_by_both_sides(self, tmp_path):
        from repro.cm import ConceptualModel
        from repro.cm.serialize import model_to_dict

        cm = ConceptualModel("m")
        cm.add_class("Thing", attributes=["tid"], key=["tid"])
        path = tmp_path / "cm.json"
        path.write_text(json.dumps(model_to_dict(cm)), encoding="utf-8")
        source_model, target_model = resolve_cm_argument(str(path))
        assert source_model is target_model
        assert source_model.has_class("Thing")

    def test_unknown_argument_names_datasets(self):
        with pytest.raises(IngestError, match="DBLP"):
            resolve_cm_argument("no-such-thing")
