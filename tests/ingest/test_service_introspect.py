"""HTTP-level tests for ``POST /introspect``."""

import pytest

from repro.datasets.instances import generate_instance
from repro.datasets.registry import load_dataset
from repro.exceptions import ServiceCallError
from repro.ingest import materialize_sqlite
from repro.service.client import ServiceClient
from repro.service.server import ReproServer, ServiceConfig


@pytest.fixture(scope="module")
def server():
    with ReproServer(ServiceConfig(workers=2)) as running:
        yield running


@pytest.fixture(scope="module")
def client(server):
    return ServiceClient(server.url)


@pytest.fixture(scope="module")
def dblp_dumps():
    """The DBLP pair as SQL dump text (the only wire-legal shape)."""
    pair = load_dataset("DBLP")
    dumps = {}
    for name, side in (("source", pair.source), ("target", pair.target)):
        instance = generate_instance(side.schema, rows_per_table=3)
        connection = materialize_sqlite(side.schema, instance=instance)
        try:
            dumps[name] = "\n".join(connection.iterdump())
        finally:
            connection.close()
    return pair, dumps


class TestIntrospectEndpoint:
    def test_sync_byte_identical_to_discover(self, client, dblp_dumps):
        pair, dumps = dblp_dumps
        case = pair.cases[0]
        corrs = [
            f"{c.source} <-> {c.target}" for c in case.correspondences
        ]
        introspected = client.introspect(
            dumps["source"],
            dumps["target"],
            "DBLP",
            scenario_id=case.case_id,
            correspondences=corrs,
        )
        assert introspected["status"] == "ok", introspected
        ingest = introspected["ingest"]
        assert ingest["source"]["coverage"] == 1.0
        assert ingest["target"]["coverage"] == 1.0
        discovered = client.discover(
            {
                "dataset": "DBLP",
                "id": case.case_id,
                "correspondences": corrs,
            }
        )
        assert (
            introspected["result"]["mapping"]
            == discovered["result"]["mapping"]
        )

    def test_repeat_request_serves_from_cache(self, client, dblp_dumps):
        pair, dumps = dblp_dumps
        case = pair.cases[1]
        corrs = [
            f"{c.source} <-> {c.target}" for c in case.correspondences
        ]
        kwargs = dict(scenario_id=case.case_id, correspondences=corrs)
        first = client.introspect(
            dumps["source"], dumps["target"], "DBLP", **kwargs
        )
        assert first["status"] == "ok"
        repeat = client.introspect(
            dumps["source"], dumps["target"], "DBLP", **kwargs
        )
        assert repeat["cached"] is True, repeat

    def test_verify_section_with_sampled_rows(self, client, dblp_dumps):
        pair, dumps = dblp_dumps
        case = pair.cases[0]
        corrs = [
            f"{c.source} <-> {c.target}" for c in case.correspondences
        ]
        payload = client.introspect(
            dumps["source"],
            dumps["target"],
            "DBLP",
            scenario_id=f"{case.case_id}-verified",
            correspondences=corrs,
            verify=True,
        )
        assert payload["status"] == "ok"
        verification = payload["verification"]
        assert set(verification) >= {"ok", "satisfied", "violations"}
        assert verification["sampled_rows"]["source"] > 0

    def test_async_mode_polls_to_done(self, client, dblp_dumps):
        pair, dumps = dblp_dumps
        case = pair.cases[2]
        corrs = [
            f"{c.source} <-> {c.target}" for c in case.correspondences
        ]
        accepted = client.introspect(
            dumps["source"],
            dumps["target"],
            "DBLP",
            scenario_id=f"{case.case_id}-async",
            correspondences=corrs,
            mode="async",
        )
        assert "ingest" in accepted
        finished = client.wait_for_job(accepted["job_id"])
        assert finished["state"] == "done"


class TestBackendSelection:
    @pytest.fixture(scope="class")
    def dblp_pg_dumps(self):
        from repro.ingest import pgdump_ddl

        pair = load_dataset("DBLP")
        dumps = {}
        for name, side in (
            ("source", pair.source),
            ("target", pair.target),
        ):
            instance = generate_instance(side.schema, rows_per_table=3)
            dumps[name] = pgdump_ddl(side.schema, instance=instance)
        return pair, dumps

    def test_pgdump_backend_mapping_matches_sqlite(
        self, client, dblp_dumps, dblp_pg_dumps
    ):
        pair, sqlite_dumps = dblp_dumps
        _, pg_dumps = dblp_pg_dumps
        case = pair.cases[0]
        corrs = [
            f"{c.source} <-> {c.target}" for c in case.correspondences
        ]
        via_sqlite = client.introspect(
            sqlite_dumps["source"],
            sqlite_dumps["target"],
            "DBLP",
            scenario_id=f"{case.case_id}-wire-sqlite",
            correspondences=corrs,
        )
        assert via_sqlite["status"] == "ok", via_sqlite
        via_pgdump = client.introspect(
            pg_dumps["source"],
            pg_dumps["target"],
            "DBLP",
            scenario_id=f"{case.case_id}-wire-pgdump",
            correspondences=corrs,
            backend="pgdump",
        )
        assert via_pgdump["status"] == "ok", via_pgdump
        assert (
            via_pgdump["result"]["mapping"]
            == via_sqlite["result"]["mapping"]
        )

    def test_auto_backend_sniffs_dump_text(self, client, dblp_pg_dumps):
        pair, pg_dumps = dblp_pg_dumps
        case = pair.cases[1]
        corrs = [
            f"{c.source} <-> {c.target}" for c in case.correspondences
        ]
        payload = client.introspect(
            pg_dumps["source"],
            pg_dumps["target"],
            "DBLP",
            scenario_id=f"{case.case_id}-wire-auto",
            correspondences=corrs,
            backend="auto",
        )
        assert payload["status"] == "ok", payload

    def test_unknown_backend_400(self, client, dblp_dumps):
        _, dumps = dblp_dumps
        status, body = client.request(
            "POST",
            "/introspect",
            {
                "source_db": {"sql": dumps["source"]},
                "target_db": {"sql": dumps["target"]},
                "cm": "DBLP",
                "backend": "oracle",
            },
        )
        assert status == 400
        assert "backend" in body["error"]["message"]


class TestWireRefusals:
    def _post(self, client, payload):
        return client.request("POST", "/introspect", payload)

    def test_pathlike_database_spec_400(self, client):
        for key in ("path", "file", "filename", "url", "uri", "dsn"):
            status, body = self._post(
                client,
                {
                    "source_db": {key: "/etc/passwd"},
                    "target_db": {"sql": "CREATE TABLE t (a TEXT);"},
                    "cm": "DBLP",
                },
            )
            assert status == 400, (key, body)
            assert "sql" in body["error"]["message"]

    def test_cm_path_refused(self, client):
        status, body = self._post(
            client,
            {
                "source_db": {"sql": "CREATE TABLE t (a TEXT);"},
                "target_db": {"sql": "CREATE TABLE t (a TEXT);"},
                "cm": "/etc/cm.json",
            },
        )
        assert status == 400
        assert "inline" in body["error"]["message"]

    def test_attach_in_dump_refused(self, client):
        status, body = self._post(
            client,
            {
                "source_db": {
                    "sql": "ATTACH DATABASE '/tmp/x.db' AS other;"
                },
                "target_db": {"sql": "CREATE TABLE t (a TEXT);"},
                "cm": "DBLP",
            },
        )
        assert status == 400, body

    def test_verify_with_async_refused(self, client, dblp_dumps):
        _, dumps = dblp_dumps
        status, body = self._post(
            client,
            {
                "source_db": {"sql": dumps["source"]},
                "target_db": {"sql": dumps["target"]},
                "cm": "DBLP",
                "verify": True,
                "mode": "async",
            },
        )
        assert status == 400

    def test_cache_dir_over_wire_refused(self, client, dblp_dumps):
        _, dumps = dblp_dumps
        status, body = self._post(
            client,
            {
                "source_db": {"sql": dumps["source"]},
                "target_db": {"sql": dumps["target"]},
                "cm": "DBLP",
                "options": {"cache_dir": "/tmp/cache"},
            },
        )
        assert status == 400

    def test_ingest_errors_return_400_with_diagnostics(self, client):
        # Empty databases ingest to error diagnostics, not discovery.
        status, body = self._post(
            client,
            {
                "source_db": {"sql": "CREATE TABLE x (a TEXT); DROP TABLE x;"},
                "target_db": {"sql": "CREATE TABLE t (a TEXT PRIMARY KEY);"},
                "cm": "DBLP",
            },
        )
        assert status == 400, body
        assert body["status"] == "invalid"
        codes = {d["code"] for d in body["ingest"]["diagnostics"]}
        assert "database.empty" in codes

    def test_client_raises_with_status(self, client):
        with pytest.raises(ServiceCallError) as caught:
            client.introspect("", "", "DBLP")
        assert caught.value.status == 400
