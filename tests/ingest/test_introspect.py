"""Unit tests for SQLite catalog introspection."""

import sqlite3

import pytest

from repro.exceptions import IngestError
from repro.ingest import connect_memory_from_sql, introspect_sqlite
from repro.ingest.introspect import open_database


def _introspect(sql: str):
    connection = connect_memory_from_sql(sql)
    try:
        return introspect_sqlite(connection)
    finally:
        connection.close()


class TestCatalogReading:
    def test_tables_columns_keys(self):
        result = _introspect(
            "CREATE TABLE person (pname TEXT PRIMARY KEY, age INTEGER);"
            "CREATE TABLE book (bid TEXT PRIMARY KEY);"
        )
        schema = result.schema
        assert schema.table_names() == ("person", "book")
        assert schema.table("person").columns == ("pname", "age")
        assert schema.table("person").primary_key == ("pname",)
        assert result.column_types["person"]["age"] == "INTEGER"

    def test_composite_pk_ordinal_order(self):
        result = _introspect(
            "CREATE TABLE t (b TEXT, a TEXT, PRIMARY KEY (a, b));"
        )
        assert result.schema.table("t").primary_key == ("a", "b")

    def test_foreign_keys_in_declaration_order(self):
        result = _introspect(
            "CREATE TABLE p (x TEXT PRIMARY KEY);"
            "CREATE TABLE q (y TEXT PRIMARY KEY);"
            "CREATE TABLE c (x TEXT REFERENCES p (x),"
            "                y TEXT REFERENCES q (y), PRIMARY KEY (x, y));"
        )
        assert [str(r) for r in result.schema.rics] == [
            "c.x -> p.x",
            "c.y -> q.y",
        ]

    def test_implicit_parent_pk_resolved(self):
        # REFERENCES p (no column list) means p's primary key.
        result = _introspect(
            "CREATE TABLE p (x TEXT PRIMARY KEY);"
            "CREATE TABLE c (r TEXT REFERENCES p, PRIMARY KEY (r));"
        )
        assert [str(r) for r in result.schema.rics] == ["c.r -> p.x"]

    def test_internal_sqlite_tables_skipped(self):
        result = _introspect(
            "CREATE TABLE t (a TEXT PRIMARY KEY);"
            "CREATE TABLE u (b INTEGER PRIMARY KEY AUTOINCREMENT);"
        )
        # AUTOINCREMENT creates sqlite_sequence; it must not surface.
        assert result.schema.table_names() == ("t", "u")

    def test_unique_index_becomes_natural_key_finding(self):
        result = _introspect(
            "CREATE TABLE t (a TEXT PRIMARY KEY, email TEXT);"
            "CREATE UNIQUE INDEX t_email ON t (email);"
        )
        assert result.natural_keys["t"] == (("email",),)
        assert result.findings("pattern.natural-key")


class TestDiagnostics:
    def test_no_primary_key_warning(self):
        result = _introspect("CREATE TABLE log (entry TEXT);")
        codes = {d.code for d in result.warnings}
        assert "table.no-primary-key" in codes

    def test_edge_table_and_pure_join_table(self):
        result = _introspect(
            "CREATE TABLE person (p TEXT PRIMARY KEY);"
            "CREATE TABLE knows (a TEXT REFERENCES person (p),"
            "                    b TEXT REFERENCES person (p),"
            "                    PRIMARY KEY (a, b));"
        )
        assert result.findings("pattern.edge-table")
        assert result.findings("pattern.pure-join-table")

    def test_fk_hint_on_undeclared_id_column(self):
        result = _introspect(
            "CREATE TABLE t (k TEXT PRIMARY KEY, owner_id TEXT);"
        )
        (hint,) = result.findings("pattern.fk-hint")
        assert hint.location == "t.owner_id"

    def test_fk_hint_skips_declared_fks_and_own_pk(self):
        result = _introspect(
            "CREATE TABLE p (pid TEXT PRIMARY KEY);"
            "CREATE TABLE c (cid TEXT PRIMARY KEY,"
            "                pid TEXT REFERENCES p (pid));"
        )
        assert result.findings("pattern.fk-hint") == ()

    def test_soft_delete_finding(self):
        result = _introspect(
            "CREATE TABLE t (k TEXT PRIMARY KEY, deleted_at TEXT);"
        )
        assert result.findings("pattern.soft-delete")

    def test_dangling_fk_dropped_with_diagnostic(self):
        # PRAGMA foreign_keys defaults OFF, so SQLite happily stores a
        # reference to a table that does not exist.
        result = _introspect(
            "CREATE TABLE c (x TEXT PRIMARY KEY REFERENCES ghost (y));"
        )
        assert result.schema.rics == ()
        assert result.findings("constraint.dangling")

    def test_identifier_sanitization_reported_and_mapped(self):
        result = _introspect(
            'CREATE TABLE "line items" ("unit price" TEXT PRIMARY KEY);'
        )
        assert result.schema.table_names() == ("line_items",)
        assert result.schema.table("line_items").columns == ("unit_price",)
        assert result.findings("identifier.renamed")
        assert result.original_tables["line_items"] == "line items"
        assert (
            result.original_columns["line_items"]["unit_price"]
            == "unit price"
        )

    def test_empty_table_list_is_error(self):
        result = _introspect("")
        assert result.errors
        assert result.schema.table_names() == ()


class TestUntrustedSql:
    def test_attach_denied(self):
        with pytest.raises(IngestError, match="not authorized"):
            connect_memory_from_sql(
                "ATTACH DATABASE '/tmp/evil.db' AS evil;"
            )

    def test_malformed_sql_raises_ingest_error(self):
        with pytest.raises(IngestError):
            connect_memory_from_sql("CREATE TABLE (((")

    def test_authorizer_removed_after_load(self):
        connection = connect_memory_from_sql(
            "CREATE TABLE t (a TEXT PRIMARY KEY);"
        )
        try:
            # Post-load reads work normally (authorizer is cleared).
            rows = connection.execute("SELECT * FROM t").fetchall()
            assert rows == []
        finally:
            connection.close()


class TestOpenDatabase:
    def test_missing_file_refused_not_created(self, tmp_path):
        ghost = tmp_path / "nope.db"
        with pytest.raises(IngestError):
            open_database(str(ghost))
        assert not ghost.exists()

    def test_file_opened_read_only(self, tmp_path):
        path = tmp_path / "live.db"
        seed = sqlite3.connect(str(path))
        seed.execute("CREATE TABLE t (a TEXT PRIMARY KEY)")
        seed.commit()
        seed.close()
        connection, owned = open_database(str(path))
        assert owned
        try:
            with pytest.raises(sqlite3.OperationalError):
                connection.execute("INSERT INTO t VALUES ('x')")
        finally:
            connection.close()

    def test_existing_connection_passed_through(self):
        connection = sqlite3.connect(":memory:")
        try:
            same, owned = open_database(connection)
            assert same is connection
            assert not owned
        finally:
            connection.close()
