"""Unit tests for key-based query normalization (egd chase)."""

from repro.queries.conjunctive import Constant, Variable
from repro.queries.normalize import chase_with_keys, key_positions_of_schema
from repro.queries.parser import parse_query
from repro.relational import RelationalSchema, Table

KEYS = {"employee": (0,), "enrol": (0, 1)}


class TestKeyPositions:
    def test_from_schema(self):
        schema = RelationalSchema(
            "s",
            [
                Table("employee", ["eid", "name"], ["eid"]),
                Table("log", ["entry"]),
                Table("enrol", ["sid", "cid", "mark"], ["sid", "cid"]),
            ],
        )
        assert key_positions_of_schema(schema) == {
            "employee": (0,),
            "enrol": (0, 1),
        }


class TestChaseWithKeys:
    def test_same_key_atoms_collapse(self):
        q = parse_query("ans(n, s) :- employee(e, n, x), employee(e, y, s)")
        chased = chase_with_keys(q, {"employee": (0,)})
        assert len(chased.body) == 1
        assert chased.head_terms == (Variable("n"), Variable("s"))

    def test_three_way_collapse(self):
        q = parse_query(
            "ans(a, b, c) :- emp(e, a, x, y), emp(e, u, b, v), emp(e, p, q, c)"
        )
        chased = chase_with_keys(q, {"emp": (0,)})
        assert len(chased.body) == 1
        assert chased.head_terms == (Variable("a"), Variable("b"), Variable("c"))

    def test_different_keys_untouched(self):
        q = parse_query("ans(n, s) :- employee(e1, n), employee(e2, s)")
        chased = chase_with_keys(q, {"employee": (0,)})
        assert len(chased.body) == 2

    def test_unkeyed_table_untouched(self):
        q = parse_query("ans(n, s) :- log(e, n), log(e, s)")
        chased = chase_with_keys(q, {"employee": (0,)})
        assert len(chased.body) == 2

    def test_composite_key(self):
        q = parse_query(
            "ans(m1, m2) :- enrol(s, c, m1), enrol(s, c, m2)"
        )
        chased = chase_with_keys(q, {"enrol": (0, 1)})
        assert len(chased.body) == 1
        # The two marks are forced equal: head repeats one variable.
        assert chased.head_terms[0] == chased.head_terms[1]

    def test_constant_conflict_is_unsatisfiable(self):
        q = parse_query(
            "ans(e) :- employee(e, 'ann'), employee(e, 'bob')"
        )
        assert chase_with_keys(q, {"employee": (0,)}) is None

    def test_constant_variable_unify(self):
        q = parse_query("ans(n) :- employee(e, n), employee(e, 'ann')")
        chased = chase_with_keys(q, {"employee": (0,)})
        assert chased.head_terms == (Constant("ann"),)

    def test_head_variables_preferred(self):
        q = parse_query("ans(v1) :- employee(e, v1), employee(e, zz)")
        chased = chase_with_keys(q, {"employee": (0,)})
        assert chased.head_terms == (Variable("v1"),)
        assert Variable("v1") in chased.body[0].terms

    def test_identical_duplicate_atoms_terminate(self):
        # Regression: identical atoms once caused an infinite chase loop.
        q = parse_query("ans(n) :- employee(e, n), employee(e, n)")
        chased = chase_with_keys(q, {"employee": (0,)})
        assert chased is not None
        assert len(chased.body) == 1
