"""Soundness of the LAV rewriting: every rewriting's expansion is
contained in the original query.

The classical correctness criterion for answering-queries-using-views:
replacing each table atom of a rewriting by its view body (renamed
apart) must yield a query contained in the one being rewritten. We check
it for every table view of the reconstructed datasets, using each view's
own body as the query — the rewriting engine must (a) recover the table
itself and (b) produce only sound rewritings.
"""

import itertools

import pytest

from repro.datasets.registry import load_dataset
from repro.queries.conjunctive import (
    ConjunctiveQuery,
    Variable,
    substitute_atom,
    unify_atoms,
)
from repro.queries.homomorphism import is_contained_in
from repro.queries.rewrite import LAVView, rewrite_query


def expand(rewriting: ConjunctiveQuery, views: dict[str, LAVView]) -> ConjunctiveQuery:
    """Replace every table atom by its (renamed-apart) view body."""
    atoms = []
    for occurrence, atom in enumerate(rewriting.body):
        view = views[atom.bare_predicate]
        renaming = {
            variable: Variable(f"{variable.name}__e{occurrence}")
            for body_atom in view.body
            for variable in body_atom.variables()
        }
        # Head variables of the view become the atom's argument terms;
        # existential view variables stay renamed-apart.
        substitution = dict(renaming)
        for head_variable, term in zip(view.head, atom.terms):
            substitution[head_variable] = term
        for body_atom in view.body:
            atoms.append(substitute_atom(body_atom, substitution))
    return ConjunctiveQuery(rewriting.head_terms, atoms, rewriting.name)


@pytest.mark.parametrize("dataset", ["Hotel", "3Sdb"])
@pytest.mark.parametrize("side", ["source", "target"])
def test_view_bodies_rewrite_soundly(dataset, side):
    pair = load_dataset(dataset)
    semantics = getattr(pair, side)
    views = {view.name: view for view in semantics.views()}
    for view in semantics.views():
        query = ConjunctiveQuery(view.head, view.body, "q")
        rewritings = rewrite_query(query, semantics.views())
        assert rewritings, view.name
        for rewriting in rewritings:
            expansion = expand(rewriting, views)
            assert is_contained_in(expansion, query), (
                f"unsound rewriting for {view.name}: {rewriting}"
            )


@pytest.mark.parametrize("dataset", ["Hotel", "3Sdb"])
def test_view_query_recovers_identity(dataset):
    """Rewriting a view's own body must admit the one-atom table plan."""
    from repro.queries.normalize import key_positions_of_schema

    pair = load_dataset(dataset)
    semantics = pair.source
    keys = key_positions_of_schema(semantics.schema)
    for view in semantics.views():
        query = ConjunctiveQuery(view.head, view.body, "q")
        rewritings = rewrite_query(
            query,
            semantics.views(),
            required_tables={view.name},
            key_positions=keys,
        )
        assert any(
            len(r.body) == 1 and r.body[0].bare_predicate == view.name
            for r in rewritings
        ), view.name
