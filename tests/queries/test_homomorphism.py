"""Unit tests for containment, equivalence, minimization, and pruning."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queries import (
    ConjunctiveQuery,
    Constant,
    Variable,
    are_equivalent,
    containment_mapping,
    db_atom,
    is_contained_in,
    keep_maximal,
    minimize,
)

x, y, z, u, v = (Variable(n) for n in "xyzuv")


def q(head, *atoms):
    return ConjunctiveQuery(head, atoms)


class TestContainment:
    def test_extra_atoms_mean_contained(self):
        specific = q([x], db_atom("r", x, y), db_atom("s", y))
        general = q([x], db_atom("r", x, y))
        assert is_contained_in(specific, general)
        assert not is_contained_in(general, specific)

    def test_renamed_copies_equivalent(self):
        q1 = q([x], db_atom("r", x, y))
        q2 = q([u], db_atom("r", u, v))
        assert are_equivalent(q1, q2)

    def test_head_must_map(self):
        q1 = q([x], db_atom("r", x, y))
        q2 = q([y], db_atom("r", x, y))
        assert not are_equivalent(q1, q2)

    def test_constants_must_match(self):
        with_const = q([x], db_atom("r", x, Constant(1)))
        without = q([x], db_atom("r", x, y))
        assert is_contained_in(with_const, without)
        assert not is_contained_in(without, with_const)

    def test_self_join_containment(self):
        # Classic: r(x,y),r(y,z) maps into r(x,x) by collapsing variables.
        path = q([x], db_atom("r", x, y), db_atom("r", y, z))
        loop = q([x], db_atom("r", x, x))
        assert is_contained_in(loop, path)
        assert not is_contained_in(path, loop)

    def test_containment_mapping_returned(self):
        outer = q([x], db_atom("r", x, y))
        inner = q([u], db_atom("r", u, v), db_atom("s", v))
        mapping = containment_mapping(outer, inner)
        assert mapping[x] == u

    def test_different_head_arity_not_contained(self):
        q1 = q([x], db_atom("r", x, y))
        q2 = q([x, y], db_atom("r", x, y))
        assert containment_mapping(q1, q2) is None


class TestMinimize:
    def test_redundant_atom_removed(self):
        query = q([x], db_atom("r", x, y), db_atom("r", x, z))
        minimal = minimize(query)
        assert len(minimal.body) == 1
        assert are_equivalent(minimal, query)

    def test_non_redundant_preserved(self):
        query = q([x], db_atom("r", x, y), db_atom("s", y))
        assert minimize(query) == query

    def test_head_atoms_never_dropped_to_unsafety(self):
        query = q([x, y], db_atom("r", x, y), db_atom("r", x, z))
        minimal = minimize(query)
        assert set(minimal.head_variables()) <= set(minimal.body_variables())
        assert are_equivalent(minimal, query)


class TestKeepMaximal:
    def test_example_3_4_pruning(self):
        """q'₂ ⊆ q'₃ so q'₂ is eliminated (paper's Example 3.4)."""
        v1, v2, yy = Variable("v1"), Variable("v2"), Variable("y")
        q2 = q(
            [v1, v2],
            db_atom("person", v1),
            db_atom("writes", v1, yy),
            db_atom("book", yy),
            db_atom("soldAt", yy, v2),
            db_atom("bookstore", v2),
        )
        q3 = q(
            [v1, v2],
            db_atom("person", v1),
            db_atom("writes", v1, yy),
            db_atom("soldAt", yy, v2),
            db_atom("bookstore", v2),
        )
        survivors = keep_maximal([q2, q3])
        assert survivors == [q3]

    def test_incomparable_queries_both_kept(self):
        q1 = q([x], db_atom("r", x, y))
        q2 = q([x], db_atom("s", x, y))
        assert len(keep_maximal([q1, q2])) == 2

    def test_equivalent_queries_keep_first(self):
        q1 = q([x], db_atom("r", x, y))
        q2 = q([u], db_atom("r", u, v))
        assert keep_maximal([q1, q2]) == [q1]

    def test_empty_input(self):
        assert keep_maximal([]) == []


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------

predicates = st.sampled_from(["r", "s", "t"])
variables = st.sampled_from([x, y, z, u, v])


@st.composite
def random_query(draw):
    n_atoms = draw(st.integers(min_value=1, max_value=4))
    atoms = [
        db_atom(draw(predicates), draw(variables), draw(variables))
        for _ in range(n_atoms)
    ]
    body_vars = sorted({vv for a in atoms for vv in a.variables()})
    head = [body_vars[0]]
    return ConjunctiveQuery(head, atoms)


@settings(max_examples=60, deadline=None)
@given(query=random_query())
def test_containment_reflexive(query):
    assert is_contained_in(query, query)


@settings(max_examples=60, deadline=None)
@given(query=random_query())
def test_minimize_is_equivalent_and_no_larger(query):
    minimal = minimize(query)
    assert are_equivalent(minimal, query)
    assert len(minimal.body) <= len(query.body)


@settings(max_examples=40, deadline=None)
@given(q1=random_query(), q2=random_query(), q3=random_query())
def test_containment_transitive(q1, q2, q3):
    if is_contained_in(q1, q2) and is_contained_in(q2, q3):
        assert is_contained_in(q1, q3)


@settings(max_examples=40, deadline=None)
@given(queries=st.lists(random_query(), max_size=4))
def test_keep_maximal_survivors_dominate(queries):
    survivors = keep_maximal(queries)
    for query in queries:
        assert any(is_contained_in(query, survivor) for survivor in survivors)
