"""Unit tests for conjunctive-query evaluation over instances."""

import pytest

from repro.exceptions import QueryError
from repro.queries import (
    ConjunctiveQuery,
    Constant,
    SkolemTerm,
    Variable,
    cm_atom,
    db_atom,
    evaluate_bindings,
    evaluate_query,
)
from repro.relational import Instance, RelationalSchema, Table
from repro.relational.algebra import BaseRelation, NaturalJoin, Projection

x, y, z = Variable("x"), Variable("y"), Variable("z")


@pytest.fixture
def instance() -> Instance:
    schema = RelationalSchema("s")
    schema.add_table(Table("writes", ["pname", "bid"]))
    schema.add_table(Table("soldAt", ["bid", "sid"]))
    inst = Instance(schema)
    inst.add_all("writes", [("ann", "b1"), ("bob", "b2"), ("ann", "b2")])
    inst.add_all("soldAt", [("b1", "s1"), ("b2", "s2"), ("b1", "s2")])
    return inst


class TestEvaluation:
    def test_single_atom(self, instance):
        q = ConjunctiveQuery([x], [db_atom("writes", x, y)])
        assert evaluate_query(q, instance) == frozenset({("ann",), ("bob",)})

    def test_join(self, instance):
        q = ConjunctiveQuery(
            [x, z], [db_atom("writes", x, y), db_atom("soldAt", y, z)]
        )
        answers = evaluate_query(q, instance)
        assert ("ann", "s1") in answers
        assert ("ann", "s2") in answers
        assert ("bob", "s2") in answers
        assert len(answers) == 3

    def test_constant_in_body(self, instance):
        q = ConjunctiveQuery(
            [x], [db_atom("writes", x, Constant("b2"))]
        )
        assert evaluate_query(q, instance) == frozenset({("ann",), ("bob",)})

    def test_constant_in_head(self, instance):
        q = ConjunctiveQuery(
            [Constant("tag"), x], [db_atom("writes", x, y)]
        )
        assert ("tag", "ann") in evaluate_query(q, instance)

    def test_repeated_variable_forces_equality(self, instance):
        instance.add("soldAt", ("b9", "b9"))
        q = ConjunctiveQuery([x], [db_atom("soldAt", x, x)])
        assert evaluate_query(q, instance) == frozenset({("b9",)})

    def test_empty_result(self, instance):
        q = ConjunctiveQuery(
            [x], [db_atom("writes", x, Constant("missing"))]
        )
        assert evaluate_query(q, instance) == frozenset()

    def test_cm_atom_rejected(self, instance):
        q = ConjunctiveQuery([x], [cm_atom("Person", x)])
        with pytest.raises(QueryError):
            evaluate_query(q, instance)

    def test_arity_mismatch_rejected(self, instance):
        q = ConjunctiveQuery([x], [db_atom("writes", x)])
        with pytest.raises(QueryError):
            evaluate_query(q, instance)

    def test_skolem_term_rejected(self, instance):
        q = ConjunctiveQuery(
            [x], [db_atom("writes", x, SkolemTerm("f", (x,)))]
        )
        with pytest.raises(QueryError):
            evaluate_query(q, instance)


class TestBindings:
    def test_bindings_cover_existential_variables(self, instance):
        q = ConjunctiveQuery(
            [x], [db_atom("writes", x, y), db_atom("soldAt", y, z)]
        )
        bindings = evaluate_bindings(q, instance)
        assert all({x, y, z} <= set(b) for b in bindings)
        assert len(bindings) == 4  # one per satisfying assignment

    def test_bindings_deterministic(self, instance):
        q = ConjunctiveQuery([x], [db_atom("writes", x, y)])
        assert evaluate_bindings(q, instance) == evaluate_bindings(q, instance)


class TestAgreementWithAlgebra:
    def test_join_query_matches_algebra(self, instance):
        q = ConjunctiveQuery(
            [x, z], [db_atom("writes", x, y), db_atom("soldAt", y, z)]
        )
        algebra = Projection(
            NaturalJoin(BaseRelation("writes"), BaseRelation("soldAt")),
            ["pname", "sid"],
        )
        assert evaluate_query(q, instance) == algebra.evaluate(instance).rows
