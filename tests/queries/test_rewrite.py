"""Unit tests for inverse-rule rewriting, including the paper's Example 3.4."""

import pytest

from repro.exceptions import RewritingError
from repro.queries import (
    ConjunctiveQuery,
    LAVView,
    Variable,
    cm_atom,
    db_atom,
    inverse_rules,
    rewrite_query,
    skolem_function_name,
)
from repro.queries.conjunctive import SkolemTerm

pname, bid, sid = Variable("pname"), Variable("bid"), Variable("sid")
v1, v2, y = Variable("v1"), Variable("v2"), Variable("y")
x = Variable("x")


def bookstore_views() -> list[LAVView]:
    """Key-merged LAV semantics of Example 1.1's source tables."""
    return [
        LAVView("person", [pname], [cm_atom("Person", pname)]),
        LAVView(
            "writes",
            [pname, bid],
            [
                cm_atom("Person", pname),
                cm_atom("Book", bid),
                cm_atom("writes", pname, bid),
            ],
        ),
        LAVView("book", [bid], [cm_atom("Book", bid)]),
        LAVView(
            "soldAt",
            [bid, sid],
            [
                cm_atom("Book", bid),
                cm_atom("Bookstore", sid),
                cm_atom("soldAt", bid, sid),
            ],
        ),
        LAVView("bookstore", [sid], [cm_atom("Bookstore", sid)]),
    ]


class TestLAVView:
    def test_existential_variables(self):
        view = LAVView(
            "pers",
            [pname],
            [cm_atom("Person", x), cm_atom("hasName", x, pname)],
        )
        assert view.existential_variables() == (x,)

    def test_duplicate_head_rejected(self):
        with pytest.raises(RewritingError):
            LAVView("t", [pname, pname], [cm_atom("Person", pname)])

    def test_str(self):
        view = LAVView("person", [pname], [cm_atom("Person", pname)])
        assert "T:person(pname)" in str(view)


class TestInverseRules:
    def test_skolemization_of_existentials(self):
        """The paper's person example: O:Person(f(pname,age)) :- T:person(...)."""
        age = Variable("age")
        view = LAVView(
            "person",
            [pname, age],
            [
                cm_atom("Person", x),
                cm_atom("hasName", x, pname),
                cm_atom("hasAge", x, age),
            ],
        )
        rules = inverse_rules(view)
        assert len(rules) == 3
        person_rule = rules[0]
        skolem = person_rule.head.terms[0]
        assert isinstance(skolem, SkolemTerm)
        assert skolem.function == skolem_function_name("person", x)
        assert skolem.arguments == (pname, age)
        assert person_rule.body.predicate == "T:person"

    def test_merged_views_yield_skolem_free_rules(self):
        rules = inverse_rules(bookstore_views()[1])
        assert all(
            not isinstance(t, SkolemTerm)
            for rule in rules
            for t in rule.head.terms
        )


class TestRewriteExample34:
    def query(self) -> ConjunctiveQuery:
        """The key-merged encoding of Figure 5's CSG (Example 3.3)."""
        return ConjunctiveQuery(
            [v1, v2],
            [
                cm_atom("Person", v1),
                cm_atom("writes", v1, y),
                cm_atom("Book", y),
                cm_atom("soldAt", y, v2),
                cm_atom("Bookstore", v2),
            ],
            name="ans",
        )

    def test_unrestricted_rewriting_contains_q1(self):
        """Without the required-tables filter the maximal rewriting is
        q'₁ = writes ⋈ soldAt (the most general plan)."""
        results = rewrite_query(self.query(), bookstore_views())
        tables = [sorted(a.bare_predicate for a in r.body) for r in results]
        assert ["soldAt", "writes"] in tables

    def test_example_3_4_final_result_is_q3(self):
        results = rewrite_query(
            self.query(),
            bookstore_views(),
            required_tables={"person", "bookstore"},
        )
        assert len(results) == 1
        body_tables = sorted(a.bare_predicate for a in results[0].body)
        assert body_tables == ["bookstore", "person", "soldAt", "writes"]
        # Head preserved: ans(v1, v2).
        assert results[0].head_terms == (v1, v2)

    def test_rewriting_joins_on_shared_variables(self):
        (result,) = rewrite_query(
            self.query(),
            bookstore_views(),
            required_tables={"person", "bookstore"},
        )
        writes_atom = next(
            a for a in result.body if a.bare_predicate == "writes"
        )
        sold_atom = next(a for a in result.body if a.bare_predicate == "soldAt")
        assert writes_atom.terms[1] == sold_atom.terms[0]
        assert writes_atom.terms[0] == v1
        assert sold_atom.terms[1] == v2


class TestRewriteEdgeCases:
    def test_uncovered_predicate_yields_nothing(self):
        query = ConjunctiveQuery([v1], [cm_atom("Alien", v1)])
        assert rewrite_query(query, bookstore_views()) == []

    def test_non_cm_atom_rejected(self):
        query = ConjunctiveQuery([v1], [db_atom("person", v1)])
        with pytest.raises(RewritingError):
            rewrite_query(query, bookstore_views())

    def test_skolem_in_answer_rejected(self):
        """A query asking for an unidentified object has no rewriting."""
        age = Variable("age")
        view = LAVView(
            "person",
            [age],
            [cm_atom("Person", x), cm_atom("hasAge", x, age)],
        )
        query = ConjunctiveQuery([x], [cm_atom("Person", x)])
        assert rewrite_query(query, [view]) == []

    def test_skolem_join_merges_view_occurrences(self):
        """Two atoms Skolem-joined through the same view occurrence merge
        into a single table atom."""
        age = Variable("age")
        view = LAVView(
            "person",
            [age],
            [cm_atom("Person", x), cm_atom("hasAge", x, age)],
        )
        query = ConjunctiveQuery(
            [age], [cm_atom("Person", x), cm_atom("hasAge", x, age)]
        )
        results = rewrite_query(query, [view])
        assert len(results) == 1
        assert len(results[0].body) == 1
        assert results[0].body[0].bare_predicate == "person"

    def test_required_table_not_mentioned_filters_all(self):
        query = ConjunctiveQuery([v1], [cm_atom("Person", v1)])
        results = rewrite_query(
            query, bookstore_views(), required_tables={"bookstore"}
        )
        assert results == []

    def test_limit_caps_expansion(self):
        query = ConjunctiveQuery([v1], [cm_atom("Person", v1)])
        results = rewrite_query(query, bookstore_views(), limit=1)
        assert len(results) == 1
