"""Unit tests for the conjunctive-query text parser."""

import pytest

from repro.exceptions import QueryError
from repro.queries.conjunctive import CM_PREFIX, Constant, Variable
from repro.queries.parser import parse_atom, parse_query


class TestParseAtom:
    def test_simple(self):
        atom = parse_atom("writes(v1, y)")
        assert atom.predicate == "T:writes"
        assert atom.terms == (Variable("v1"), Variable("y"))

    def test_explicit_namespace_preserved(self):
        assert parse_atom("O:Person(x)").predicate == "O:Person"
        assert parse_atom("T:person(x)").predicate == "T:person"

    def test_default_namespace_override(self):
        atom = parse_atom("Person(x)", default_namespace=CM_PREFIX)
        assert atom.predicate == "O:Person"

    def test_constants(self):
        atom = parse_atom("r('ann', 3, 2.5)")
        assert atom.terms == (Constant("ann"), Constant(3), Constant(2.5))

    def test_nullary(self):
        assert parse_atom("p()").arity == 0

    def test_inverse_mark_in_predicate(self):
        assert parse_atom("O:writes⁻(x, y)").predicate == "O:writes⁻"

    def test_garbage_rejected(self):
        with pytest.raises(QueryError):
            parse_atom("nope")
        with pytest.raises(QueryError):
            parse_atom("p(a b)")


class TestParseQuery:
    def test_simple(self):
        q = parse_query("ans(v1, v2) :- writes(v1, y), soldAt(y, v2)")
        assert q.name == "ans"
        assert len(q.body) == 2
        assert q.head_terms == (Variable("v1"), Variable("v2"))

    def test_name_override(self):
        q = parse_query("ans(x) :- r(x)", name="q3")
        assert q.name == "q3"

    def test_boolean_query(self):
        q = parse_query("ans() :- r(x)")
        assert q.head_terms == ()

    def test_constants_in_body(self):
        q = parse_query("ans(x) :- r(x, 'fixed')")
        assert Constant("fixed") in q.body[0].terms

    def test_missing_separator_rejected(self):
        with pytest.raises(QueryError):
            parse_query("ans(x) r(x)")

    def test_unsafe_head_rejected(self):
        with pytest.raises(QueryError):
            parse_query("ans(z) :- r(x)")

    def test_round_trip_str(self):
        q = parse_query("ans(x) :- r(x, y), s(y)")
        assert str(q) == "ans(x) :- T:r(x, y), T:s(y)"
