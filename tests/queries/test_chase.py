"""Unit tests for the symbolic chase with inclusion dependencies."""

import pytest

from repro.exceptions import QueryError
from repro.queries import (
    ChaseEngine,
    InclusionDependency,
    table_seed_atom,
)
from repro.queries.conjunctive import Variable
from repro.relational import ReferentialConstraint, RelationalSchema, Table


def bookstore_schema() -> RelationalSchema:
    schema = RelationalSchema("source")
    schema.add_table(Table("person", ["pname"], ["pname"]))
    schema.add_table(Table("writes", ["pname", "bid"], ["pname", "bid"]))
    schema.add_table(Table("book", ["bid"], ["bid"]))
    schema.add_table(Table("soldAt", ["bid", "sid"], ["bid", "sid"]))
    schema.add_table(Table("bookstore", ["sid"], ["sid"]))
    for text in [
        "writes.pname -> person.pname",
        "writes.bid -> book.bid",
        "soldAt.bid -> book.bid",
        "soldAt.sid -> bookstore.sid",
    ]:
        schema.add_ric(ReferentialConstraint.parse(text))
    return schema


def dependencies(schema):
    return [InclusionDependency.from_ric(r, schema) for r in schema.rics]


class TestInclusionDependency:
    def test_from_ric_positions(self):
        schema = bookstore_schema()
        dep = InclusionDependency.from_ric(schema.rics[0], schema)
        assert dep.child_predicate == "writes"
        assert dep.child_positions == (0,)
        assert dep.parent_predicate == "person"
        assert dep.parent_arity == 1

    def test_position_validation(self):
        with pytest.raises(QueryError):
            InclusionDependency("a", (0,), "b", (5,), parent_arity=2)
        with pytest.raises(QueryError):
            InclusionDependency("a", (0,), "b", (0, 1), parent_arity=2)
        with pytest.raises(QueryError):
            InclusionDependency("a", (), "b", (), parent_arity=1)


class TestSeedAtom:
    def test_variables_named_after_columns(self):
        schema = bookstore_schema()
        atom = table_seed_atom(schema, "writes")
        assert atom.predicate == "writes"
        assert [t.name for t in atom.terms] == [
            "x_writes_pname",
            "x_writes_bid",
        ]


class TestChase:
    def test_example_1_1_logical_relation_s1(self):
        """Chasing writes with r1, r2 yields person ⋈ writes ⋈ book."""
        schema = bookstore_schema()
        engine = ChaseEngine(dependencies(schema))
        atoms = engine.chase([table_seed_atom(schema, "writes")])
        predicates = sorted(a.predicate for a in atoms)
        assert predicates == ["book", "person", "writes"]
        # The join variables are shared.
        by_pred = {a.predicate: a for a in atoms}
        assert by_pred["person"].terms[0] == by_pred["writes"].terms[0]
        assert by_pred["book"].terms[0] == by_pred["writes"].terms[1]

    def test_example_1_1_logical_relation_s2(self):
        schema = bookstore_schema()
        engine = ChaseEngine(dependencies(schema))
        atoms = engine.chase([table_seed_atom(schema, "soldAt")])
        assert sorted(a.predicate for a in atoms) == [
            "book",
            "bookstore",
            "soldAt",
        ]

    def test_leaf_table_chases_to_itself(self):
        schema = bookstore_schema()
        engine = ChaseEngine(dependencies(schema))
        atoms = engine.chase([table_seed_atom(schema, "person")])
        assert len(atoms) == 1

    def test_satisfied_dependency_not_reapplied(self):
        schema = bookstore_schema()
        engine = ChaseEngine(dependencies(schema))
        seed = [
            table_seed_atom(schema, "writes"),
            table_seed_atom(schema, "person", variable_prefix="x_writes"),
        ]
        atoms = engine.chase(seed)
        assert sum(1 for a in atoms if a.predicate == "person") == 1

    def test_transitive_chase(self):
        schema = RelationalSchema("s")
        schema.add_table(Table("a", ["x"], ["x"]))
        schema.add_table(Table("b", ["x"], ["x"]))
        schema.add_table(Table("c", ["x"], ["x"]))
        schema.add_ric(ReferentialConstraint.parse("a.x -> b.x"))
        schema.add_ric(ReferentialConstraint.parse("b.x -> c.x"))
        engine = ChaseEngine(dependencies(schema))
        atoms = engine.chase([table_seed_atom(schema, "a")])
        assert sorted(a.predicate for a in atoms) == ["a", "b", "c"]
        # All three share the same variable.
        assert len({a.terms[0] for a in atoms}) == 1

    def test_cyclic_ric_terminates(self):
        schema = RelationalSchema("s")
        schema.add_table(Table("emp", ["eid", "mgr"], ["eid"]))
        schema.add_ric(ReferentialConstraint.parse("emp.mgr -> emp.eid"))
        engine = ChaseEngine(dependencies(schema), max_depth=3)
        atoms = engine.chase([table_seed_atom(schema, "emp")])
        # Bounded unfolding: seed plus at most max_depth new emp atoms.
        assert 2 <= len(atoms) <= 4

    def test_max_depth_validation(self):
        with pytest.raises(QueryError):
            ChaseEngine([], max_depth=0)

    def test_multi_column_dependency(self):
        schema = RelationalSchema("s")
        schema.add_table(Table("enrol", ["sid", "cid"], ["sid", "cid"]))
        schema.add_table(
            Table("offering", ["student", "course", "term"], ["student", "course"])
        )
        schema.add_ric(
            ReferentialConstraint.parse(
                "enrol.sid, enrol.cid -> offering.student, offering.course"
            )
        )
        engine = ChaseEngine(dependencies(schema))
        atoms = engine.chase([table_seed_atom(schema, "enrol")])
        offering = next(a for a in atoms if a.predicate == "offering")
        enrol = next(a for a in atoms if a.predicate == "enrol")
        assert offering.terms[0] == enrol.terms[0]
        assert offering.terms[1] == enrol.terms[1]
        assert isinstance(offering.terms[2], Variable)
