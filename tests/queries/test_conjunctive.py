"""Unit tests for terms, atoms, unification, and conjunctive queries."""

import pytest

from repro.exceptions import QueryError
from repro.queries import (
    Atom,
    ConjunctiveQuery,
    Constant,
    SkolemTerm,
    Variable,
    VariableFactory,
    cm_atom,
    db_atom,
    substitute_atom,
    substitute_term,
    unify_atoms,
    unify_terms,
)

x, y, z, w = Variable("x"), Variable("y"), Variable("z"), Variable("w")


class TestTerms:
    def test_variable_str(self):
        assert str(x) == "x"

    def test_constant_str(self):
        assert str(Constant("ann")) == "'ann'"

    def test_skolem_str(self):
        term = SkolemTerm("f", (x, Constant(1)))
        assert str(term) == "f(x, 1)"

    def test_atom_str_and_namespaces(self):
        atom = cm_atom("Person", x)
        assert str(atom) == "O:Person(x)"
        assert atom.is_cm_atom and not atom.is_db_atom
        assert atom.bare_predicate == "Person"
        table = db_atom("person", x)
        assert table.is_db_atom
        assert table.bare_predicate == "person"

    def test_empty_predicate_rejected(self):
        with pytest.raises(QueryError):
            Atom("", [x])

    def test_atom_variables_include_skolem_arguments(self):
        atom = Atom("p", [SkolemTerm("f", (x, y)), z])
        assert set(atom.variables()) == {x, y, z}


class TestSubstitution:
    def test_simple(self):
        assert substitute_term(x, {x: y}) == y

    def test_chains_resolve(self):
        assert substitute_term(x, {x: y, y: z}) == z

    def test_skolem_arguments_substituted(self):
        term = SkolemTerm("f", (x,))
        assert substitute_term(term, {x: Constant(1)}) == SkolemTerm(
            "f", (Constant(1),)
        )

    def test_atom_substitution(self):
        atom = Atom("p", [x, y])
        assert substitute_atom(atom, {x: z}) == Atom("p", [z, y])


class TestUnification:
    def test_variable_binds(self):
        assert unify_terms(x, Constant(1)) == {x: Constant(1)}

    def test_symmetric(self):
        assert unify_terms(Constant(1), x) == {x: Constant(1)}

    def test_distinct_constants_fail(self):
        assert unify_terms(Constant(1), Constant(2)) is None

    def test_skolem_structural(self):
        left = SkolemTerm("f", (x,))
        right = SkolemTerm("f", (Constant(1),))
        assert unify_terms(left, right) == {x: Constant(1)}

    def test_skolem_function_mismatch(self):
        assert unify_terms(SkolemTerm("f", (x,)), SkolemTerm("g", (x,))) is None

    def test_occurs_check(self):
        assert unify_terms(x, SkolemTerm("f", (x,))) is None

    def test_atom_unification(self):
        subst = unify_atoms(Atom("p", [x, y]), Atom("p", [Constant(1), z]))
        assert subst == {x: Constant(1), y: z}

    def test_atom_predicate_mismatch(self):
        assert unify_atoms(Atom("p", [x]), Atom("q", [x])) is None

    def test_unification_extends_existing(self):
        subst = unify_terms(x, Constant(1))
        extended = unify_terms(y, x, subst)
        assert substitute_term(y, extended) == Constant(1)

    def test_conflicting_extension_fails(self):
        subst = unify_terms(x, Constant(1))
        assert unify_terms(x, Constant(2), subst) is None

    def test_input_not_mutated(self):
        subst = {x: Constant(1)}
        unify_terms(y, Constant(2), subst)
        assert subst == {x: Constant(1)}


class TestConjunctiveQuery:
    def make_query(self):
        return ConjunctiveQuery(
            [x, z],
            [db_atom("r", x, y), db_atom("s", y, z)],
            name="q",
        )

    def test_head_and_body_variables(self):
        q = self.make_query()
        assert q.head_variables() == (x, z)
        assert set(q.body_variables()) == {x, y, z}
        assert q.existential_variables() == (y,)

    def test_safety_enforced(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery([w], [db_atom("r", x)])

    def test_body_deduplication(self):
        q = ConjunctiveQuery([x], [db_atom("r", x), db_atom("r", x)])
        assert len(q.body) == 1

    def test_equality_ignores_atom_order(self):
        q1 = ConjunctiveQuery([x], [db_atom("r", x), db_atom("s", x)])
        q2 = ConjunctiveQuery([x], [db_atom("s", x), db_atom("r", x)])
        assert q1 == q2
        assert hash(q1) == hash(q2)

    def test_equality_is_not_modulo_renaming(self):
        q1 = ConjunctiveQuery([x], [db_atom("r", x)])
        q2 = ConjunctiveQuery([y], [db_atom("r", y)])
        assert q1 != q2

    def test_substitute(self):
        q = self.make_query().substitute({x: Constant(1)})
        assert q.head_terms[0] == Constant(1)

    def test_rename_apart(self):
        q = self.make_query().rename_apart("_1")
        assert {v.name for v in q.variables()} == {"x_1", "y_1", "z_1"}

    def test_predicates_and_atoms_with(self):
        q = self.make_query()
        assert q.predicates() == {"T:r", "T:s"}
        assert len(q.atoms_with("T:r")) == 1

    def test_has_skolems(self):
        q = ConjunctiveQuery([x], [Atom("p", [x, SkolemTerm("f", (x,))])])
        assert q.has_skolems()
        assert not self.make_query().has_skolems()

    def test_str(self):
        q = ConjunctiveQuery([x], [db_atom("r", x)], name="q1")
        assert str(q) == "q1(x) :- T:r(x)"

    def test_constant_in_head_allowed(self):
        q = ConjunctiveQuery([Constant(1), x], [db_atom("r", x)])
        assert q.head_terms[0] == Constant(1)


class TestVariableFactory:
    def test_fresh_variables_distinct(self):
        fresh = VariableFactory()
        assert fresh() != fresh()

    def test_hint_embedded(self):
        fresh = VariableFactory()
        assert "pk" in fresh("pk").name
