"""Sanity property: mapping a schema onto itself recovers identities.

With identical source and target semantics and identity column
correspondences, the semantic mapper's best candidate for each table
must be the table-to-itself mapping.
"""

import pytest

from repro.correspondences import CorrespondenceSet
from repro.datasets.registry import load_dataset
from repro.discovery import discover_mappings
from repro.queries.homomorphism import are_equivalent


@pytest.mark.parametrize("dataset", ["Hotel", "3Sdb"])
def test_identity_mappings_recovered_per_table(dataset):
    pair = load_dataset(dataset)
    semantics = pair.source
    for table in semantics.schema:
        if not semantics.has_tree(table.name):
            continue
        correspondences = CorrespondenceSet.parse(
            [
                f"{table.name}.{column} <-> {table.name}.{column}"
                for column in table.columns
            ]
        )
        result = discover_mappings(semantics, semantics, correspondences)
        assert result.candidates, table.name
        best = result.best()
        assert are_equivalent(best.source_query, best.target_query), (
            f"{table.name}: identity mapping not symmetric"
        )
        source_tables = {
            atom.bare_predicate for atom in best.source_query.body
        }
        assert table.name in source_tables, table.name


def test_identity_covers_all_correspondences():
    pair = load_dataset("Hotel")
    semantics = pair.source
    table = semantics.schema.table("booking")
    correspondences = CorrespondenceSet.parse(
        [f"booking.{c} <-> booking.{c}" for c in table.columns]
    )
    result = discover_mappings(semantics, semantics, correspondences)
    assert set(result.best().covered) == set(correspondences)
